//! End-to-end behavior of the event-driven RESP front end: partial-frame
//! resume across `WouldBlock`, interleaved pipelined batches on one worker,
//! write-buffer backpressure, the max-clients cap, idle-connection reaping,
//! PSYNC handing the socket off the event loop, and deterministic shutdown.
//!
//! Invariants under test (see TESTING.md §Event-loop front end): commands on
//! one connection are never reordered, a slow reader never stalls its
//! worker's other connections, and shutdown returns promptly with zero
//! inbound connections.

use abase::core::{ReplicationControl, RespServer, TableEngine};
use abase::lavastore::DbConfig;
use abase::proto::RespValue;
use abase::replication::{GroupConfig, ReplicaGroup, SocketFollower, WriteConcern};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn unique_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "abase-evloop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cmd(parts: &[&str]) -> Vec<u8> {
    let mut out = format!("*{}\r\n", parts.len()).into_bytes();
    for p in parts {
        out.extend_from_slice(format!("${}\r\n{p}\r\n", p.len()).as_bytes());
    }
    out
}

fn roundtrip(stream: &mut TcpStream, request: &[u8]) -> RespValue {
    stream.write_all(request).unwrap();
    read_reply(stream)
}

fn read_reply(stream: &mut TcpStream) -> RespValue {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "server closed unexpectedly");
        buf.extend_from_slice(&chunk[..n]);
        if let Some((value, _)) = RespValue::parse(&buf).unwrap() {
            return value;
        }
    }
}

fn read_replies(stream: &mut TcpStream, want: usize) -> Vec<RespValue> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut replies = Vec::new();
    while replies.len() < want {
        let n = stream.read(&mut chunk).unwrap();
        assert!(
            n > 0,
            "server closed with {} of {want} replies",
            replies.len()
        );
        buf.extend_from_slice(&chunk[..n]);
        while let Some((value, used)) = RespValue::parse(&buf).unwrap() {
            replies.push(value);
            buf.drain(..used);
        }
    }
    replies
}

/// Bind a single-worker server so every connection shares one event loop —
/// the strictest setting for the isolation/backpressure invariants.
fn start_single_worker(tag: &str) -> (std::path::PathBuf, std::net::SocketAddr) {
    let dir = unique_dir(tag);
    let engine = Arc::new(TableEngine::open(&dir, DbConfig::small_for_tests()).unwrap());
    let server = RespServer::bind(engine, "127.0.0.1:0")
        .unwrap()
        .io_threads(1);
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run());
    (dir, addr)
}

#[test]
fn partial_frames_resume_across_wouldblock_boundaries() {
    let (_dir, addr) = start_single_worker("partial");
    let mut client = TcpStream::connect(addr).unwrap();
    client.set_nodelay(true).unwrap();
    roundtrip(&mut client, &cmd(&["SET", "key", "value"]));
    // Dribble one GET a few bytes at a time: every pause parks the parser on
    // a partial frame (the worker sees readable, parses nothing, and must
    // keep the connection's buffer intact for the next event).
    let request = cmd(&["GET", "key"]);
    for piece in request.chunks(3) {
        client.write_all(piece).unwrap();
        client.flush().unwrap();
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(read_reply(&mut client), RespValue::bulk("value"));
}

#[test]
fn interleaved_pipelined_batches_stay_ordered_per_connection() {
    let (_dir, addr) = start_single_worker("interleave");
    let mut a = TcpStream::connect(addr).unwrap();
    let mut b = TcpStream::connect(addr).unwrap();
    // Both clients fire a multi-command batch at the same worker; each
    // connection's replies must come back complete and in wire order.
    let mut batch_a = Vec::new();
    let mut batch_b = Vec::new();
    for i in 0..20 {
        batch_a.extend_from_slice(&cmd(&["SET", &format!("a{i}"), &format!("va{i}")]));
        batch_a.extend_from_slice(&cmd(&["GET", &format!("a{i}")]));
        batch_b.extend_from_slice(&cmd(&["SET", &format!("b{i}"), &format!("vb{i}")]));
        batch_b.extend_from_slice(&cmd(&["GET", &format!("b{i}")]));
    }
    a.write_all(&batch_a).unwrap();
    b.write_all(&batch_b).unwrap();
    let replies_a = read_replies(&mut a, 40);
    let replies_b = read_replies(&mut b, 40);
    for i in 0..20 {
        assert_eq!(replies_a[2 * i], RespValue::ok(), "a#{i}");
        assert_eq!(
            replies_a[2 * i + 1],
            RespValue::bulk(format!("va{i}")),
            "a#{i}"
        );
        assert_eq!(replies_b[2 * i], RespValue::ok(), "b#{i}");
        assert_eq!(
            replies_b[2 * i + 1],
            RespValue::bulk(format!("vb{i}")),
            "b#{i}"
        );
    }
}

#[test]
fn slow_reader_backpressure_does_not_stall_the_worker() {
    let (_dir, addr) = start_single_worker("backpressure");
    let mut slow = TcpStream::connect(addr).unwrap();
    let mut brisk = TcpStream::connect(addr).unwrap();
    // ~64 KiB value; 64 pipelined GETs = ~4 MiB of replies, way past the
    // 1 MiB write-buffer high-water mark.
    let value = "x".repeat(64 * 1024);
    roundtrip(&mut slow, &cmd(&["SET", "big", &value]));
    let mut batch = Vec::new();
    for _ in 0..64 {
        batch.extend_from_slice(&cmd(&["GET", "big"]));
    }
    slow.write_all(&batch).unwrap();
    // The slow client reads nothing; its replies pile up server-side until
    // the connection throttles. The other connection on the SAME worker must
    // keep round-tripping promptly.
    std::thread::sleep(Duration::from_millis(100));
    for i in 0..10 {
        let started = Instant::now();
        let reply = roundtrip(&mut brisk, &cmd(&["SET", &format!("k{i}"), "v"]));
        assert_eq!(reply, RespValue::ok());
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "worker stalled behind the slow reader"
        );
    }
    // Once the slow client drains, every queued reply arrives intact and in
    // order (the throttled connection resumed reading the rest of its batch).
    let replies = read_replies(&mut slow, 64);
    for (i, reply) in replies.iter().enumerate() {
        match reply {
            RespValue::Bulk(Some(b)) => assert_eq!(b.len(), value.len(), "reply {i}"),
            other => panic!("reply {i}: expected bulk, got {other:?}"),
        }
    }
}

#[test]
fn max_clients_cap_refuses_with_the_redis_error() {
    let dir = unique_dir("maxclients");
    let engine = Arc::new(TableEngine::open(&dir, DbConfig::small_for_tests()).unwrap());
    let server = RespServer::bind(engine, "127.0.0.1:0")
        .unwrap()
        .io_threads(1)
        .max_clients(2);
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run());
    let mut c1 = TcpStream::connect(addr).unwrap();
    let mut c2 = TcpStream::connect(addr).unwrap();
    assert_eq!(
        roundtrip(&mut c1, &cmd(&["PING"])),
        RespValue::Simple("PONG".into())
    );
    assert_eq!(
        roundtrip(&mut c2, &cmd(&["PING"])),
        RespValue::Simple("PONG".into())
    );
    // Third connection: accepted at the TCP level, refused at the RESP level.
    let mut c3 = TcpStream::connect(addr).unwrap();
    c3.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 256];
    loop {
        match c3.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("no refusal before close: {e}"),
        }
        if buf.ends_with(b"\r\n") {
            break;
        }
    }
    assert_eq!(&buf[..], b"-ERR max number of clients reached\r\n");
    // Closing one admitted client frees a slot.
    drop(c1);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut c4 = TcpStream::connect(addr).unwrap();
        c4.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        match roundtrip(&mut c4, &cmd(&["PING"])) {
            RespValue::Simple(s) if s == "PONG" => break,
            _ if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            other => panic!("slot never freed: {other:?}"),
        }
    }
}

#[test]
fn idle_connections_are_reaped_by_the_timer_wheel() {
    let dir = unique_dir("idlereap");
    let engine = Arc::new(TableEngine::open(&dir, DbConfig::small_for_tests()).unwrap());
    let server = RespServer::bind(engine, "127.0.0.1:0")
        .unwrap()
        .io_threads(1)
        .idle_timeout(Duration::from_millis(200));
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run());
    let mut idle = TcpStream::connect(addr).unwrap();
    assert_eq!(
        roundtrip(&mut idle, &cmd(&["PING"])),
        RespValue::Simple("PONG".into())
    );
    // Stay silent past the timeout: the reaper must close the connection.
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = Instant::now();
    let mut chunk = [0u8; 16];
    match idle.read(&mut chunk) {
        Ok(0) => {}
        Ok(n) => panic!("unexpected {n} bytes from an idle connection"),
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
        Err(e) => panic!("expected eviction, read failed with {e}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "idle connection outlived the reaper"
    );
    // An active connection on the same server survives by staying chatty.
    let mut busy = TcpStream::connect(addr).unwrap();
    for _ in 0..8 {
        assert_eq!(
            roundtrip(&mut busy, &cmd(&["PING"])),
            RespValue::Simple("PONG".into())
        );
        std::thread::sleep(Duration::from_millis(60));
    }
}

#[test]
fn shutdown_with_zero_inbound_connections_returns_promptly() {
    let dir = unique_dir("shutdown");
    let engine = Arc::new(TableEngine::open(&dir, DbConfig::small_for_tests()).unwrap());
    let server = RespServer::bind(engine, "127.0.0.1:0").unwrap();
    let handle = server.shutdown_handle();
    let runner = std::thread::spawn(move || server.run());
    std::thread::sleep(Duration::from_millis(50));
    // No connection ever arrives; the waker, not a connection attempt, must
    // unblock the accept loop and every worker.
    let started = Instant::now();
    handle.shutdown();
    runner.join().unwrap().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "shutdown needed a connection attempt to complete"
    );
}

#[test]
fn shutdown_also_drops_connected_clients() {
    let dir = unique_dir("shutdown-conns");
    let engine = Arc::new(TableEngine::open(&dir, DbConfig::small_for_tests()).unwrap());
    let server = RespServer::bind(engine, "127.0.0.1:0")
        .unwrap()
        .io_threads(2);
    let addr = server.local_addr().unwrap();
    let handle = server.shutdown_handle();
    let runner = std::thread::spawn(move || server.run());
    let mut client = TcpStream::connect(addr).unwrap();
    assert_eq!(
        roundtrip(&mut client, &cmd(&["PING"])),
        RespValue::Simple("PONG".into())
    );
    let started = Instant::now();
    handle.shutdown();
    runner.join().unwrap().unwrap();
    assert!(started.elapsed() < Duration::from_secs(3));
    // The dropped server side surfaces as EOF/reset on the client.
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut chunk = [0u8; 16];
    match client.read(&mut chunk) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("unexpected {n} bytes after shutdown"),
    }
}

#[test]
fn psync_hands_the_socket_off_the_single_worker_event_loop() {
    let dir = unique_dir("psync-handoff");
    let fdir = unique_dir("psync-handoff-follower");
    let group = ReplicaGroup::bootstrap(
        1,
        &dir,
        &[1],
        GroupConfig {
            write_concern: WriteConcern::Quorum,
            db: DbConfig::small_for_tests(),
            wait_timeout: Duration::from_secs(5),
        },
    )
    .unwrap();
    let engine = Arc::new(TableEngine::from_db(group.leader_db().unwrap()));
    let group = Arc::new(group.into_mutex());
    // ONE worker: if PSYNC parked the replica stream on the event loop, the
    // regular client below could never be served concurrently.
    let server = RespServer::bind(engine, "127.0.0.1:0")
        .unwrap()
        .io_threads(1)
        .with_replication(Arc::clone(&group) as Arc<dyn ReplicationControl>);
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run());
    let mut follower = SocketFollower::connect(
        fdir.join("replica"),
        DbConfig::small_for_tests(),
        &addr.to_string(),
        77,
        0,
    )
    .unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let pump = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if follower.pump().is_err() {
                    std::thread::sleep(Duration::from_millis(5));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };
    // While the replica stream lives on its dedicated thread, the single
    // event-loop worker keeps serving clients — including a quorum write
    // that needs the remote follower's ack (offloaded, then reinjected).
    let mut client = TcpStream::connect(addr).unwrap();
    let reply = roundtrip(&mut client, &cmd(&["SET", "k", "v"]));
    assert_eq!(reply, RespValue::ok(), "quorum write through the handoff");
    let reply = roundtrip(&mut client, &cmd(&["WAIT", "1", "5000"]));
    assert_eq!(reply, RespValue::Integer(1));
    // The same connection continues normal serving after its offloads.
    assert_eq!(
        roundtrip(&mut client, &cmd(&["GET", "k"])),
        RespValue::bulk("v")
    );
    assert_eq!(
        roundtrip(&mut client, &cmd(&["PING"])),
        RespValue::Simple("PONG".into())
    );
    stop.store(true, Ordering::Relaxed);
    pump.join().unwrap();
}

#[test]
fn info_reports_connected_clients_and_io_threads() {
    let dir = unique_dir("info-frontend");
    let engine = Arc::new(TableEngine::open(&dir, DbConfig::small_for_tests()).unwrap());
    let server = RespServer::bind(engine, "127.0.0.1:0")
        .unwrap()
        .io_threads(3);
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run());
    let mut client = TcpStream::connect(addr).unwrap();
    let info = match roundtrip(&mut client, &cmd(&["INFO", "server"])) {
        RespValue::Bulk(Some(b)) => String::from_utf8(b.to_vec()).unwrap(),
        other => panic!("expected bulk INFO, got {other:?}"),
    };
    assert!(info.contains("connected_clients:1"), "{info}");
    assert!(info.contains("io_threads:3"), "{info}");
    assert!(info.contains("total_connections_received:"), "{info}");
    assert!(info.contains("evicted_clients:0"), "{info}");
}

#[test]
fn thread_per_conn_baseline_still_serves_pipelined_batches() {
    let dir = unique_dir("baseline");
    let engine = Arc::new(TableEngine::open(&dir, DbConfig::small_for_tests()).unwrap());
    let server = RespServer::bind(engine, "127.0.0.1:0")
        .unwrap()
        .thread_per_conn();
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run());
    let mut client = TcpStream::connect(addr).unwrap();
    let mut batch = Vec::new();
    batch.extend_from_slice(&cmd(&["SET", "k", "v"]));
    batch.extend_from_slice(&cmd(&["GET", "k"]));
    batch.extend_from_slice(&cmd(&["PING"]));
    client.write_all(&batch).unwrap();
    let replies = read_replies(&mut client, 3);
    assert_eq!(replies[0], RespValue::ok());
    assert_eq!(replies[1], RespValue::bulk("v"));
    assert_eq!(replies[2], RespValue::Simple("PONG".into()));
}
