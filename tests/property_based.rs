//! Property-based tests over the core data structures and invariants.
//!
//! Each property runs hundreds of randomized cases via proptest; failures
//! shrink to minimal counterexamples. These cover the invariants the paper's
//! correctness implicitly relies on: cache capacity accounting, WFQ work
//! conservation and fairness, quota-bucket boundedness, storage-engine
//! linearizability against a model, and codec roundtrips.

use proptest::prelude::*;

use abase::cache::{LruCache, SaLruCache};
use abase::lavastore::{Db, DbConfig};
use abase::proto::RespValue;
use abase::quota::TokenBucket;
use abase::util::TimeSeries;
use abase::wfq::{WfqItem, WfqQueue};
use std::collections::HashMap;

// ---------- LRU / SA-LRU ----------

proptest! {
    /// The byte-LRU never exceeds its capacity and its accounting matches the
    /// sum of live entry sizes, under arbitrary insert/get/remove interleaving.
    #[test]
    fn lru_capacity_and_accounting(ops in prop::collection::vec(
        (0u8..3, 0u64..200, 1usize..600), 1..400), capacity in 64usize..4096)
    {
        let mut cache: LruCache<u64, usize> = LruCache::new(capacity);
        let mut live: HashMap<u64, usize> = HashMap::new();
        for (op, key, size) in ops {
            match op {
                0 => {
                    let evicted = cache.insert(key, size, size);
                    if size <= capacity {
                        live.insert(key, size);
                    } else {
                        live.remove(&key);
                    }
                    for (k, _) in evicted {
                        live.remove(&k);
                    }
                }
                1 => { cache.get(&key); }
                _ => {
                    cache.remove(&key);
                    live.remove(&key);
                }
            }
            prop_assert!(cache.used_bytes() <= capacity);
            let expect: usize = live.values().sum();
            prop_assert_eq!(cache.used_bytes(), expect);
            prop_assert_eq!(cache.len(), live.len());
        }
    }

    /// SA-LRU obeys the same capacity bound and finds exactly the keys it
    /// holds regardless of size-class churn.
    #[test]
    fn salru_capacity_invariant(ops in prop::collection::vec(
        (0u64..100, 1usize..100_000), 1..300), capacity in 1024usize..262_144)
    {
        let mut cache: SaLruCache<u64, u64> = SaLruCache::new(capacity);
        for (key, size) in ops {
            cache.insert(key, key, size);
            prop_assert!(cache.used_bytes() <= capacity);
            // Anything reported as contained must be retrievable.
            if cache.contains(&key) {
                prop_assert_eq!(cache.peek(&key), Some(&key));
            }
        }
    }
}

// ---------- WFQ ----------

proptest! {
    /// WFQ conservation: everything pushed pops exactly once, in
    /// non-decreasing virtual-time order.
    #[test]
    fn wfq_conserves_items(items in prop::collection::vec(
        (0u32..6, 0.01f64..50.0, 1u8..=10), 1..200))
    {
        let mut q: WfqQueue<usize> = WfqQueue::new();
        for (i, (tenant, cost, weight)) in items.iter().enumerate() {
            q.push(WfqItem {
                tenant: *tenant,
                cost: *cost,
                weight: f64::from(*weight) / 10.0,
                payload: i,
            });
        }
        let mut seen = vec![false; items.len()];
        let mut last_vt = 0.0f64;
        while let Some(item) = q.pop() {
            prop_assert!(!seen[item.payload], "duplicate pop");
            seen[item.payload] = true;
            prop_assert!(q.virtual_time() >= last_vt);
            last_vt = q.virtual_time();
        }
        prop_assert!(seen.iter().all(|&s| s), "lost items");
    }

    /// Weighted fairness: with two continuously backlogged tenants, service
    /// is split within 25 % of the weight ratio.
    #[test]
    fn wfq_weighted_fairness(w1 in 1u8..=9, n in 50usize..200) {
        let weight1 = f64::from(w1) / 10.0;
        let weight2 = 1.0 - weight1;
        let mut q: WfqQueue<u8> = WfqQueue::new();
        for _ in 0..n {
            q.push(WfqItem { tenant: 1, cost: 1.0, weight: weight1, payload: 0 });
            q.push(WfqItem { tenant: 2, cost: 1.0, weight: weight2, payload: 0 });
        }
        // Serve only the first half of total work: both stay backlogged.
        let serve = n; // of 2n items
        let mut t1 = 0usize;
        for _ in 0..serve {
            if q.pop().expect("backlogged").tenant == 1 {
                t1 += 1;
            }
        }
        let expected = weight1 * serve as f64;
        let tolerance = (serve as f64 * 0.25).max(2.0);
        prop_assert!(
            (t1 as f64 - expected).abs() <= tolerance,
            "tenant1 served {} expected {:.1}±{:.1}", t1, expected, tolerance
        );
    }
}

// ---------- Token bucket ----------

proptest! {
    /// A token bucket never admits more than burst + rate·time tokens over
    /// any run of admissions (no token minting).
    #[test]
    fn token_bucket_never_overspends(
        rate in 1.0f64..1000.0,
        burst in 1.0f64..500.0,
        steps in prop::collection::vec((1u64..200_000, 0.1f64..50.0), 1..200))
    {
        let mut bucket = TokenBucket::new(rate, burst, 0);
        let mut now = 0u64;
        let mut admitted = 0.0f64;
        for (dt, amount) in steps {
            now += dt;
            if bucket.try_consume(now, amount) {
                admitted += amount;
            }
            let elapsed_sec = now as f64 / 1_000_000.0;
            prop_assert!(
                admitted <= burst + rate * elapsed_sec + 1e-6,
                "admitted {} > {}", admitted, burst + rate * elapsed_sec
            );
        }
    }
}

// ---------- RESP codec ----------

fn arb_resp(depth: u32) -> impl Strategy<Value = RespValue> {
    let leaf = prop_oneof![
        "[a-zA-Z0-9 ]{0,20}".prop_map(RespValue::Simple),
        "[a-zA-Z0-9 ]{0,20}".prop_map(RespValue::Error),
        any::<i64>().prop_map(RespValue::Integer),
        prop::collection::vec(any::<u8>(), 0..64).prop_map(|v| RespValue::Bulk(Some(v.into()))),
        Just(RespValue::Bulk(None)),
        Just(RespValue::Array(None)),
    ];
    leaf.prop_recursive(depth, 64, 8, |inner| {
        prop::collection::vec(inner, 0..8).prop_map(RespValue::array)
    })
}

proptest! {
    /// Every RESP value round-trips through encode/parse, consuming exactly
    /// its own bytes.
    #[test]
    fn resp_roundtrip(value in arb_resp(3)) {
        let wire = value.to_bytes();
        let (parsed, consumed) = RespValue::parse(&wire).unwrap().expect("complete frame");
        prop_assert_eq!(parsed, value);
        prop_assert_eq!(consumed, wire.len());
    }

    /// No prefix of a valid frame ever parses as complete or errors.
    #[test]
    fn resp_prefixes_are_incomplete(value in arb_resp(2)) {
        let wire = value.to_bytes();
        for cut in 0..wire.len() {
            match RespValue::parse(&wire[..cut]) {
                Ok(None) => {}
                other => prop_assert!(false, "prefix {} parsed as {:?}", cut, other),
            }
        }
    }
}

// ---------- Storage engine vs model ----------

proptest! {
    /// LavaStore agrees with a HashMap model under random puts, deletes,
    /// flushes, and compactions (sequential consistency of the LSM).
    #[test]
    fn lavastore_matches_model(ops in prop::collection::vec(
        (0u8..4, 0u16..40, 0usize..3), 1..120))
    {
        let dir = std::env::temp_dir().join(format!(
            "abase-prop-{}-{:?}-{}",
            std::process::id(),
            std::thread::current().id(),
            ops.len()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let db = Db::open(&dir, DbConfig::small_for_tests()).unwrap();
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        let values: [&[u8]; 3] = [b"alpha", b"beta-beta", b"gamma-gamma-gamma"];
        for (op, key_id, value_id) in ops {
            let key = format!("key-{key_id:05}").into_bytes();
            match op {
                0 => {
                    db.put(&key, values[value_id], None, 0).unwrap();
                    model.insert(key, values[value_id].to_vec());
                }
                1 => {
                    db.delete(&key, 0).unwrap();
                    model.remove(&key);
                }
                2 => {
                    db.flush().unwrap();
                }
                _ => {
                    db.compact_once(0).unwrap();
                }
            }
        }
        for (key, expect) in &model {
            let got = db.get(key, 0).unwrap().value;
            prop_assert_eq!(got.as_deref(), Some(expect.as_slice()));
        }
        // Deleted/absent keys read as absent.
        for key_id in 0u16..40 {
            let key = format!("key-{key_id:05}").into_bytes();
            if !model.contains_key(&key) {
                prop_assert!(db.get(&key, 0).unwrap().value.is_none());
            }
        }
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------- Time series ----------

proptest! {
    /// Resampling by max never loses the global maximum, and by mean keeps
    /// the overall mean (up to ragged-tail effects bounded by one group).
    #[test]
    fn series_resample_preserves_extremes(
        values in prop::collection::vec(0.0f64..1e6, 1..200),
        factor in 1usize..10)
    {
        let ts = TimeSeries::new(0, 3_600_000_000, values.clone());
        let maxed = ts.resample(factor, abase::util::Aggregation::Max);
        prop_assert_eq!(maxed.max(), ts.max());
        let hod = ts.resample(1, abase::util::Aggregation::Mean);
        prop_assert_eq!(hod.values().len(), values.len());
    }
}

// ---------- Failover promotion ----------

proptest! {
    /// `plan_node_failure` promotion is a pure function of the follower LSNs:
    /// the most-caught-up *promotable* follower wins, ties break
    /// deterministically toward the lowest node id, and a gapped/divergent
    /// follower (`None` from the LSN oracle) is never promoted — even when
    /// its raw LSN would top the group. Re-planning from identical state
    /// yields the identical plan.
    #[test]
    fn promotion_picks_deterministic_ungapped_maximum(
        followers in prop::collection::vec((1u64..6, any::<bool>()), 2..6),
        spare_count in 0usize..3)
    {
        use abase::core::meta::{MetaServer, ReplicaSet};

        // Followers are nodes 1..=k with (lsn, gapped); duplicated LSNs are
        // the interesting (tie) case and the generator produces them often.
        let ids: Vec<u32> = (1..=followers.len() as u32).collect();
        let lsn_of = |node: u32| -> Option<u64> {
            let (lsn, gapped) = followers[(node - 1) as usize];
            (!gapped).then_some(lsn)
        };
        let spares: Vec<u32> = (0..spare_count as u32).map(|i| 100 + i).collect();
        let available: Vec<u32> = ids.iter().copied().chain(spares).collect();
        let plan = |_: ()| {
            let mut meta = MetaServer::new(1_000_000);
            meta.assign_replica_group(
                1,
                77,
                ReplicaSet { leader: 0, followers: ids.clone() },
            );
            meta.plan_node_failure(0, |_, n| lsn_of(n), &available)
        };
        let a = plan(());
        let b = plan(());
        prop_assert_eq!(&a, &b, "identical state must yield identical plans");

        // Expected winner, computed independently: max LSN among ungapped,
        // lowest id on ties.
        let expected = ids
            .iter()
            .filter_map(|&n| lsn_of(n).map(|lsn| (n, lsn)))
            .max_by(|(na, la), (nb, lb)| la.cmp(lb).then(nb.cmp(na)))
            .map(|(n, _)| n);
        match expected {
            None => prop_assert!(
                a.promotions.is_empty(),
                "all followers gapped, yet {:?} was promoted", a.promotions
            ),
            Some(winner) => {
                prop_assert_eq!(a.promotions.len(), 1);
                prop_assert_eq!(a.promotions[0].new_leader, winner);
                let (_, gapped) = followers[(winner - 1) as usize];
                prop_assert!(!gapped, "a gapped replica was promoted");
            }
        }
    }
}
