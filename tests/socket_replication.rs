//! Network-real replication through the RESP server: a leader `RespServer`
//! and a follower that is, in every way but the process boundary, the
//! `abase-server follow` mode — a `SocketFollower` speaking
//! `REPLCONF`/`PSYNC` over a real TCP connection. (The genuinely two-process
//! version of this scenario is `examples/replication_psync.rs`, which CI
//! runs; these tests keep the protocol matrix — restart, retention
//! fall-off, FULLRESYNC recovery — fast and deterministic in one process.)

use abase::core::{ReplicationControl, RespServer, TableEngine};
use abase::lavastore::DbConfig;
use abase::proto::RespValue;
use abase::replication::{
    GroupConfig, LogTransport, ReplicaGroup, SocketFollower, SocketTransport, WriteConcern,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn unique_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "abase-sockrepl-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn roundtrip(stream: &mut TcpStream, request: &[u8]) -> RespValue {
    stream.write_all(request).unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "server closed unexpectedly");
        buf.extend_from_slice(&chunk[..n]);
        if let Some((value, _)) = RespValue::parse(&buf).unwrap() {
            return value;
        }
    }
}

fn drive(follower: &mut SocketFollower, target_lsn: u64, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while follower.last_seq() < target_lsn {
        assert!(
            Instant::now() < deadline,
            "{what}: follower stuck at {} of {target_lsn}",
            follower.last_seq()
        );
        follower.pump().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn follower_restart_resumes_and_retention_falloff_fullresyncs() {
    let leader_dir = unique_dir("leader");
    let follower_dir = unique_dir("follower");
    let group = ReplicaGroup::bootstrap(
        0,
        &leader_dir,
        &[1],
        GroupConfig {
            write_concern: WriteConcern::Quorum,
            db: DbConfig::small_for_tests(),
            wait_timeout: Duration::from_secs(5),
        },
    )
    .unwrap();
    let engine = Arc::new(TableEngine::from_db(group.leader_db().unwrap()));
    let group = Arc::new(group.into_mutex());
    let server = RespServer::bind(engine, "127.0.0.1:0")
        .unwrap()
        .with_replication(Arc::clone(&group) as Arc<dyn ReplicationControl>);
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run());

    // Phase 1 — a fresh follower attaches through the RESP port, pulls the
    // initial checkpoint, and starts acking.
    let replica_dir = follower_dir.join("replica");
    let mut follower = SocketFollower::connect(
        &replica_dir,
        DbConfig::small_for_tests(),
        &addr.to_string(),
        42,
        0,
    )
    .unwrap();
    let mut client = TcpStream::connect(addr).unwrap();
    // Quorum = {leader, follower}: the write only acks once the follower's
    // REPLCONF ACK crossed the socket, so serve it from a pump thread.
    let lsn = {
        let g = group.lock();
        let db = g.leader_db().unwrap();
        for i in 0..10 {
            db.put(format!("a{i}").as_bytes(), b"1", None, 0).unwrap();
        }
        db.last_seq()
    };
    drive(&mut follower, lsn, "initial catch-up");
    assert_eq!(follower.resyncs(), 1, "fresh follower syncs via checkpoint");
    // RESP-layer proof that the ack arithmetic sees the remote: this
    // session never wrote, so WAIT reports the connected follower count
    // immediately (the session-fence bugfix), which is 1.
    let reply = roundtrip(&mut client, b"*3\r\n$4\r\nWAIT\r\n$1\r\n1\r\n$3\r\n100\r\n");
    assert_eq!(reply, RespValue::Integer(1));

    // Phase 2 — follower "process" restarts with its persisted cursor: a
    // positional PSYNC resumes the stream with no resync.
    let position = follower.position().expect("streamed follower has a cursor");
    drop(follower);
    let mut transport = SocketTransport::new(addr.to_string(), 42, 0);
    transport.seek(position.0, position.1);
    let mut follower = SocketFollower::with_transport(
        &replica_dir,
        DbConfig::small_for_tests(),
        Box::new(transport),
    )
    .unwrap();
    let lsn = {
        let g = group.lock();
        let db = g.leader_db().unwrap();
        db.put(b"after-restart", b"2", None, 0).unwrap();
        db.last_seq()
    };
    drive(&mut follower, lsn, "post-restart catch-up");
    assert_eq!(follower.resyncs(), 0, "a valid cursor must not resync");
    assert!(follower
        .db()
        .get(b"after-restart", 0)
        .unwrap()
        .value
        .is_some());

    // Phase 3 — follower goes away while the leader rotates far past its
    // WAL retention; the restarted follower's positional PSYNC is refused
    // with FULLRESYNC and it recovers through the staged checkpoint pull.
    let position = follower.position().unwrap();
    drop(follower);
    let lsn = {
        let g = group.lock();
        let db = g.leader_db().unwrap();
        let backlog = db.config().wal_retention_segments;
        for round in 0..backlog + 3 {
            for i in 0..25 {
                db.put(format!("r{round}-k{i}").as_bytes(), &[9u8; 64], None, 0)
                    .unwrap();
            }
            db.flush().unwrap();
        }
        db.last_seq()
    };
    let mut transport = SocketTransport::new(addr.to_string(), 42, 0);
    transport.seek(position.0, position.1);
    let mut follower = SocketFollower::with_transport(
        &replica_dir,
        DbConfig::small_for_tests(),
        Box::new(transport),
    )
    .unwrap();
    drive(&mut follower, lsn, "FULLRESYNC recovery");
    assert_eq!(
        follower.resyncs(),
        1,
        "falling off retention must recover via FULLRESYNC + checkpoint"
    );
    let last = follower.db().get(b"r0-k0", 0).unwrap();
    assert!(last.value.is_some(), "checkpointed history missing");
    // And the stream keeps flowing incrementally afterwards.
    let lsn = {
        let g = group.lock();
        let db = g.leader_db().unwrap();
        db.put(b"tail", b"3", None, 0).unwrap();
        db.last_seq()
    };
    drive(&mut follower, lsn, "post-FULLRESYNC tail");
    assert_eq!(follower.resyncs(), 1, "tailing must not re-resync");

    std::fs::remove_dir_all(&leader_dir).ok();
    std::fs::remove_dir_all(&follower_dir).ok();
}

/// Regression for the serve-loop drain starvation: the leader's replica
/// connection used to drain inbound acks with a small read *timeout*, which
/// the kernel rounds up to tick granularity — a follower acking every few
/// milliseconds kept every read inside the window, so the ship path starved
/// and every quorum commit rode to its full `wait_timeout`. With the
/// non-blocking drain (plus follower ack throttling), commit latency is the
/// socket round trip, an order of magnitude under the 100 ms budget.
#[test]
fn quorum_commit_latency_is_not_gated_by_the_wait_timeout() {
    let base = unique_dir("latency");
    let group = ReplicaGroup::bootstrap(
        0,
        base.join("leader"),
        &[1],
        GroupConfig {
            write_concern: WriteConcern::Quorum,
            db: DbConfig::default(),
            wait_timeout: Duration::from_millis(100),
        },
    )
    .unwrap();
    let engine = Arc::new(TableEngine::from_db(group.leader_db().unwrap()));
    let group = Arc::new(group.into_mutex());
    let server = RespServer::bind(engine, "127.0.0.1:0")
        .unwrap()
        .with_replication(Arc::clone(&group) as Arc<dyn ReplicationControl>);
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run());
    {
        // Mirror abase-server's housekeeping tick.
        let group = Arc::clone(&group);
        std::thread::spawn(move || loop {
            let _ = group.lock().tick();
            std::thread::sleep(Duration::from_millis(100));
        });
    }
    let mut follower = SocketFollower::connect(
        base.join("follower"),
        DbConfig::default(),
        &addr.to_string(),
        2,
        0,
    )
    .unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let pump = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // The abase-server follower cadence: pump, nap, repeat.
            while !stop.load(Ordering::Relaxed) {
                let _ = follower.pump();
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };
    let mut client = TcpStream::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let r = roundtrip(&mut client, b"*3\r\n$4\r\nWAIT\r\n$1\r\n1\r\n$3\r\n100\r\n");
        if r == RespValue::Integer(1) {
            break;
        }
        assert!(Instant::now() < deadline, "follower never attached");
        std::thread::sleep(Duration::from_millis(50));
    }
    let mut lat = Vec::new();
    let mut fails = 0u32;
    for i in 0..40 {
        let frame = format!("*3\r\n$3\r\nSET\r\n$4\r\nky{i:02}\r\n$1\r\nv\r\n");
        let t0 = Instant::now();
        let r = roundtrip(&mut client, frame.as_bytes());
        lat.push(t0.elapsed().as_millis());
        if r != RespValue::ok() {
            fails += 1;
        }
    }
    lat.sort();
    stop.store(true, Ordering::Relaxed);
    pump.join().unwrap();
    std::fs::remove_dir_all(&base).ok();
    assert_eq!(fails, 0, "quorum writes failed (p50={}ms)", lat[20]);
    assert!(
        lat[20] < 50,
        "commit p50 rides the wait timeout again: {}ms",
        lat[20]
    );
}
