//! RESP-level observability: `INFO` section structure, monotone command
//! counters, `SLOWLOG` capture of a failpoint-delayed write, and Prometheus
//! well-formedness of the `METRICS` exposition.
//!
//! The metrics registry is process-global and these tests run in parallel
//! threads, so every counter assertion is a `>=` delta (concurrent tests can
//! only push counts up, never down) and the failpoint rule in the slowlog
//! test is matched to this test's own data directory.

use abase::core::{ReplicationControl, RespServer, TableEngine};
use abase::lavastore::DbConfig;
use abase::obs::SlowLog;
use abase::proto::RespValue;
use abase::replication::{GroupConfig, ReplicaGroup, WriteConcern};
use abase::util::failpoint::{self, FaultAction};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn unique_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "abase-obs-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_server(tag: &str) -> (std::path::PathBuf, std::net::SocketAddr, Arc<SlowLog>) {
    let dir = unique_dir(tag);
    let engine = Arc::new(TableEngine::open(&dir, DbConfig::small_for_tests()).unwrap());
    let server = RespServer::bind(engine, "127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let slowlog = server.slowlog();
    std::thread::spawn(move || server.run());
    (dir, addr, slowlog)
}

fn roundtrip(stream: &mut TcpStream, request: &[u8]) -> RespValue {
    stream.write_all(request).unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "server closed unexpectedly");
        buf.extend_from_slice(&chunk[..n]);
        if let Some((value, _)) = RespValue::parse(&buf).unwrap() {
            return value;
        }
    }
}

fn cmd(parts: &[&str]) -> Vec<u8> {
    let mut out = format!("*{}\r\n", parts.len()).into_bytes();
    for p in parts {
        out.extend_from_slice(format!("${}\r\n{p}\r\n", p.len()).as_bytes());
    }
    out
}

fn bulk_text(value: RespValue) -> String {
    match value {
        RespValue::Bulk(Some(b)) => String::from_utf8(b.to_vec()).unwrap(),
        other => panic!("expected bulk string, got {other:?}"),
    }
}

#[test]
fn info_reports_every_section_with_expected_fields() {
    let (_dir, addr, _slowlog) = start_server("info");
    let mut client = TcpStream::connect(addr).unwrap();
    assert_eq!(
        roundtrip(&mut client, &cmd(&["SET", "k", "v"])),
        RespValue::ok()
    );
    roundtrip(&mut client, &cmd(&["GET", "k"]));

    let info = bulk_text(roundtrip(&mut client, &cmd(&["INFO"])));
    for section in [
        "# Server",
        "# Replication",
        "# Keyspace",
        "# Stats",
        "# Latency",
    ] {
        assert!(info.contains(section), "INFO missing {section}:\n{info}");
    }
    // Server section: this very connection is counted.
    assert!(info.contains("connected_clients:"), "{info}");
    assert!(info.contains("metrics_enabled:1"), "{info}");
    // Keyspace section reflects the SET.
    assert!(info.contains("puts:1"), "{info}");
    // Stats carries the raw registry dump.
    assert!(info.contains("abase_server_commands_total{SET}:"), "{info}");

    // A single section comes back alone.
    let server_only = bulk_text(roundtrip(&mut client, &cmd(&["INFO", "server"])));
    assert!(server_only.contains("# Server"), "{server_only}");
    assert!(!server_only.contains("# Keyspace"), "{server_only}");

    // An unreplicated node has no replication identity.
    let repl = bulk_text(roundtrip(&mut client, &cmd(&["INFO", "replication"])));
    assert!(repl.contains("role:none"), "{repl}");

    // Unknown sections are empty, not errors (Redis behaviour).
    assert_eq!(
        bulk_text(roundtrip(&mut client, &cmd(&["INFO", "nonsense"]))),
        ""
    );
}

#[test]
fn info_replication_on_a_leader_lists_followers_and_lsn() {
    let dir = unique_dir("info-leader");
    let group = ReplicaGroup::bootstrap(
        0,
        &dir,
        &[1, 2],
        GroupConfig::new(WriteConcern::Quorum, DbConfig::small_for_tests()),
    )
    .unwrap();
    let engine = Arc::new(TableEngine::from_db(group.leader_db().unwrap()));
    let group = Arc::new(group.into_mutex());
    let server = RespServer::bind(engine, "127.0.0.1:0")
        .unwrap()
        .with_replication(Arc::clone(&group) as Arc<dyn ReplicationControl>);
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run());
    let ticker = Arc::clone(&group);
    std::thread::spawn(move || loop {
        let _ = ticker.lock().tick();
        std::thread::sleep(std::time::Duration::from_millis(2));
    });

    let mut client = TcpStream::connect(addr).unwrap();
    assert_eq!(
        roundtrip(&mut client, &cmd(&["SET", "k", "v"])),
        RespValue::ok()
    );
    let repl = bulk_text(roundtrip(&mut client, &cmd(&["INFO", "replication"])));
    assert!(repl.contains("role:leader"), "{repl}");
    assert!(!repl.contains("last_applied_lsn:0\r\n"), "{repl}");
    // The non-leader local replica shows up as a follower line.
    assert!(repl.contains("follower0:id=2,"), "{repl}");
}

#[test]
fn command_counters_and_ru_charges_grow_monotonically() {
    let baseline = abase::obs::snapshot();
    let (_dir, addr, _slowlog) = start_server("counters");
    let mut client = TcpStream::connect(addr).unwrap();
    // A distinct tenant keyed to this test so the RU assertion is exact-able
    // per label (still asserted `>=`: the registry is global).
    assert_eq!(
        roundtrip(&mut client, &cmd(&["AUTH", "4242"])),
        RespValue::ok()
    );
    for i in 0..5 {
        let key = format!("k{i}");
        assert_eq!(
            roundtrip(&mut client, &cmd(&["SET", &key, "value"])),
            RespValue::ok()
        );
    }
    for _ in 0..3 {
        roundtrip(&mut client, &cmd(&["GET", "k0"]));
    }
    // The server replies before it records (metrics land just after the
    // response bytes), so poll briefly rather than racing the last command.
    let wanted: [(&str, f64); 5] = [
        ("abase_server_commands_total{SET}", 5.0),
        ("abase_server_commands_total{GET}", 3.0),
        ("abase_server_command_micros_count{SET}", 5.0),
        // §4.1 RU floor: five 5-byte writes = five 1-RU charges; three reads.
        ("abase_tenant_write_ru_total{4242}", 5.0),
        ("abase_tenant_read_ru_total{4242}", 3.0),
    ];
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let delta = loop {
        let delta = abase::obs::snapshot().delta(&baseline);
        if wanted.iter().all(|&(key, want)| delta.value(key) >= want) {
            break delta;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "counters never reached {wanted:?}; delta: {:?}",
            wanted
                .iter()
                .map(|&(key, _)| (key, delta.value(key)))
                .collect::<Vec<_>>()
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    };
    // Counters never go down: a second delta over a quiet span is >= 0
    // (Snapshot::delta saturates, so this checks recording kept running).
    let later = abase::obs::snapshot().delta(&baseline);
    assert!(
        later.value("abase_server_commands_total{SET}")
            >= delta.value("abase_server_commands_total{SET}")
    );
}

#[test]
fn slowlog_captures_a_failpoint_delayed_write() {
    let (dir, addr, slowlog) = start_server("slow");
    // Everything above 5 ms is slow; the delayed SET takes >= 20 ms.
    slowlog.set_threshold_micros(5_000);
    let mut client = TcpStream::connect(addr).unwrap();
    // Warm up the connection/store outside the fault window.
    assert_eq!(
        roundtrip(&mut client, &cmd(&["SET", "fast", "v"])),
        RespValue::ok()
    );
    let _guard = failpoint::ScopedInjector::enable();
    // Matcher pins the rule to THIS test's WAL (the context is the file
    // path) so parallel tests writing their own stores cannot consume it.
    let dir_tag = dir.display().to_string();
    failpoint::install("wal.append", Some(&dir_tag), FaultAction::DelayMs(20), 0, 1);
    assert_eq!(
        roundtrip(&mut client, &cmd(&["SET", "slowkey", "v"])),
        RespValue::ok()
    );
    assert_eq!(failpoint::fired("wal.append"), 1, "delay rule never fired");

    let RespValue::Integer(len) = roundtrip(&mut client, &cmd(&["SLOWLOG", "LEN"])) else {
        panic!("SLOWLOG LEN should return an integer");
    };
    assert!(len >= 1, "the delayed SET should have been captured");
    let got = roundtrip(&mut client, &cmd(&["SLOWLOG", "GET"]));
    let RespValue::Array(Some(entries)) = got else {
        panic!("SLOWLOG GET should return an array");
    };
    // Newest-first: find the delayed SET (a loaded machine may have tipped
    // other commands over the threshold too).
    let fields = entries
        .iter()
        .find_map(|e| match e {
            RespValue::Array(Some(fields)) if format!("{:?}", fields[3]).contains("slowkey") => {
                Some(fields)
            }
            _ => None,
        })
        .expect("no slowlog entry for the delayed SET");
    // [id, unix_secs, duration_micros, argv, stages]
    let RespValue::Integer(duration) = fields[2] else {
        panic!("duration field");
    };
    assert!(duration >= 20_000, "delayed SET took {duration}us");
    let argv = format!("{:?}", fields[3]);
    assert!(argv.contains("SET") && argv.contains("slowkey"), "{argv}");
    // The per-stage breakdown blames the engine stage (where the WAL append
    // sat in the injected delay), not parse/respond.
    let stages = format!("{:?}", fields[4]);
    assert!(stages.contains("engine="), "{stages}");

    // While the injector is live, the registry attributes the fired fault.
    let snap = abase::obs::snapshot();
    assert!(snap.value("failpoint_fired_total{wal.append}") >= 1.0);

    assert_eq!(
        roundtrip(&mut client, &cmd(&["SLOWLOG", "RESET"])),
        RespValue::ok()
    );
    assert_eq!(
        roundtrip(&mut client, &cmd(&["SLOWLOG", "LEN"])),
        RespValue::Integer(0)
    );
}

#[test]
fn metrics_exposition_is_well_formed_prometheus_text() {
    let (_dir, addr, _slowlog) = start_server("expo");
    let mut client = TcpStream::connect(addr).unwrap();
    assert_eq!(
        roundtrip(&mut client, &cmd(&["SET", "k", "v"])),
        RespValue::ok()
    );
    roundtrip(&mut client, &cmd(&["GET", "k"]));

    let text = bulk_text(roundtrip(&mut client, &cmd(&["METRICS"])));
    abase::obs::validate(&text).expect("METRICS output failed exposition validation");
    for family in [
        "# TYPE abase_server_commands_total counter",
        "# TYPE abase_server_connections gauge",
        "# TYPE abase_server_command_micros histogram",
        "# TYPE abase_lava_wal_append_micros histogram",
    ] {
        assert!(text.contains(family), "missing `{family}` in:\n{text}");
    }
    // Served commands are visible as labelled samples.
    assert!(
        text.contains("abase_server_commands_total{command=\"SET\"}"),
        "{text}"
    );
}
