//! Block-cache correctness: a cached engine must be observationally
//! identical to an uncached one, under eviction pressure, reopen churn, and
//! concurrent readers.
//!
//! The invariants under test:
//!
//! - **Cache-off equivalence.** A `Db` with a deliberately tiny block cache
//!   (every read contends with eviction) returns byte-identical results to a
//!   cache-disabled twin driven with the same interleaving of puts, deletes,
//!   flushes, compactions, and reopens.
//! - **File-id aliasing guard.** Reopening the cached store (same directory,
//!   same manifest ids) must not let a new SST reader observe a stale
//!   cached block from a previous incarnation — reader cache keys are
//!   process-unique, never the manifest's file numbers.
//! - **No torn blocks.** Concurrent readers through one shared cache always
//!   see whole, self-consistent values.

use proptest::prelude::*;

use abase::lavastore::{Db, DbConfig};
use std::collections::HashMap;
use std::sync::Arc;

fn tiny_cache_config(cache_bytes: usize) -> DbConfig {
    DbConfig {
        block_cache_bytes: cache_bytes,
        ..DbConfig::small_for_tests()
    }
}

proptest! {
    /// Cached (with a capacity small enough that every case evicts) and
    /// uncached stores agree with each other and a HashMap model across
    /// random puts, deletes, flushes, compactions, point reads, and reopens
    /// of the cached store (the reopen recycles manifest file ids — the
    /// aliasing trap a process-unique cache key must sidestep).
    #[test]
    fn cached_store_matches_uncached(ops in prop::collection::vec(
        (0u8..6, 0u16..48, 0usize..3), 1..110))
    {
        let stamp = format!(
            "abase-bcache-prop-{}-{:?}-{}",
            std::process::id(),
            std::thread::current().id(),
            ops.len()
        );
        let cached_dir = std::env::temp_dir().join(format!("{stamp}-on"));
        let plain_dir = std::env::temp_dir().join(format!("{stamp}-off"));
        std::fs::remove_dir_all(&cached_dir).ok();
        std::fs::remove_dir_all(&plain_dir).ok();
        // 2 KiB across shards vs 512-byte blocks: a handful of blocks fit,
        // so flush/compaction churn constantly evicts and re-admits.
        let mut cached = Db::open(&cached_dir, tiny_cache_config(2 << 10)).unwrap();
        let plain = Db::open(&plain_dir, tiny_cache_config(0)).unwrap();
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        let values: [&[u8]; 3] = [b"alpha", b"beta-beta", b"gamma-gamma-gamma"];
        for (op, key_id, value_id) in ops {
            let key = format!("key-{key_id:05}").into_bytes();
            match op {
                0 => {
                    cached.put(&key, values[value_id], None, 0).unwrap();
                    plain.put(&key, values[value_id], None, 0).unwrap();
                    model.insert(key, values[value_id].to_vec());
                }
                1 => {
                    cached.delete(&key, 0).unwrap();
                    plain.delete(&key, 0).unwrap();
                    model.remove(&key);
                }
                2 => {
                    cached.flush().unwrap();
                    plain.flush().unwrap();
                }
                3 => {
                    cached.compact_once(0).unwrap();
                    plain.compact_once(0).unwrap();
                }
                4 => {
                    // Reopen the cached store: fresh readers over the same
                    // manifest ids must never resolve to stale blocks.
                    drop(cached);
                    cached = Db::open(&cached_dir, tiny_cache_config(2 << 10)).unwrap();
                }
                _ => {
                    let want = model.get(&key).map(|v| v.as_slice());
                    let got_cached = cached.get(&key, 0).unwrap();
                    let got_plain = plain.get(&key, 0).unwrap();
                    prop_assert_eq!(got_cached.value.as_deref(), want);
                    prop_assert_eq!(got_plain.value.as_deref(), want);
                    // A hit and a miss pay the same logical io price.
                    prop_assert_eq!(got_cached.io_ops, got_plain.io_ops);
                }
            }
        }
        for (key, expect) in &model {
            let got = cached.get(key, 0).unwrap().value;
            prop_assert_eq!(got.as_deref(), Some(expect.as_slice()));
        }
        for key_id in 0u16..48 {
            let key = format!("key-{key_id:05}").into_bytes();
            if !model.contains_key(&key) {
                prop_assert!(cached.get(&key, 0).unwrap().value.is_none());
            }
        }
        drop(cached);
        drop(plain);
        std::fs::remove_dir_all(&cached_dir).ok();
        std::fs::remove_dir_all(&plain_dir).ok();
    }
}

/// Eight reader threads hammer one store through a shared, eviction-heavy
/// block cache. Every value encodes its own key, so a torn or misdirected
/// block read is caught by content, and the cache must actually serve hits.
#[test]
fn concurrent_readers_see_whole_blocks_and_hits() {
    let dir = std::env::temp_dir().join(format!("abase-bcache-conc-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let db = Arc::new(Db::open(&dir, tiny_cache_config(8 << 10)).unwrap());
    let n_keys = 400u32;
    for id in 0..n_keys {
        let key = format!("ckey-{id:06}");
        let value = format!("payload-for-{id:06}-{}", "v".repeat(40));
        db.put(key.as_bytes(), value.as_bytes(), None, 0).unwrap();
    }
    db.flush().unwrap();
    db.compact_to_quiescence(0).unwrap();

    std::thread::scope(|scope| {
        for t in 0..8u32 {
            let db = Arc::clone(&db);
            scope.spawn(move || {
                for round in 0..4u32 {
                    for id in 0..n_keys {
                        // Thread-skewed order so readers collide on shards.
                        let id = (id + t * 37 + round * 101) % n_keys;
                        let key = format!("ckey-{id:06}");
                        let want = format!("payload-for-{id:06}-{}", "v".repeat(40));
                        let got = db.get(key.as_bytes(), 0).unwrap();
                        assert_eq!(
                            got.value.as_deref(),
                            Some(want.as_bytes()),
                            "torn or misdirected read for {key}"
                        );
                    }
                }
            });
        }
    });

    let cache = db.block_cache().expect("cache is enabled");
    let stats = cache.stats();
    assert!(stats.hits > 0, "shared cache never served a hit: {stats:?}");
    assert!(
        cache.resident_bytes() <= cache.capacity_bytes(),
        "resident {} exceeds capacity {}",
        cache.resident_bytes(),
        cache.capacity_bytes()
    );
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}
