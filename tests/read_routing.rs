//! Consistency-aware read routing across failover (the PR's acceptance
//! scenarios): `Eventual` reads spread over follower replicas and drain to
//! survivors with zero errors when a serving follower is killed; after a
//! leader kill and promotion, `ReadYourWrites` sessions never observe a
//! rollback of their last acked write; and follower reads land in the same
//! per-replica split RU accounting the rescheduler's loss function reads.

use abase::core::cluster::{ReplicatedCluster, ReplicatedClusterConfig};
use abase::lavastore::DbConfig;
use abase::replication::{ReadConsistency, WriteConcern};
use abase::scheduler::{LoadVector, NodeState, PoolState, ReplicaLoad};
use abase::util::TestDir;
use std::collections::{HashMap, HashSet};

fn cluster(tag: &str, nodes: u32) -> (TestDir, ReplicatedCluster) {
    let dir = TestDir::new(tag);
    let cluster = ReplicatedCluster::new(
        dir.path(),
        nodes,
        ReplicatedClusterConfig {
            replication_factor: 3,
            write_concern: WriteConcern::Quorum,
            db: DbConfig::small_for_tests(),
            recovery_bandwidth: None,
            ..Default::default()
        },
    );
    (dir, cluster)
}

#[test]
fn eventual_reads_drain_to_survivors_after_follower_kill() {
    let (_d, mut c) = cluster("reroute-follower-kill", 4);
    c.create_partition(1, 0).unwrap();
    for i in 0..30 {
        c.write(0, format!("k{i}").as_bytes(), b"v", 0).unwrap();
    }
    c.tick().unwrap(); // converge every follower
                       // Warm phase: eventual reads spread across both followers.
    let mut served_before: HashSet<u32> = HashSet::new();
    for i in 0..20 {
        let key = format!("k{}", i % 30);
        let r = c
            .read_routed(0, key.as_bytes(), ReadConsistency::Eventual, 0)
            .unwrap();
        assert!(!r.is_leader);
        served_before.insert(r.node);
    }
    assert_eq!(
        served_before.len(),
        2,
        "reads did not spread: {served_before:?}"
    );
    // Kill one follower that was serving reads.
    let victim = *served_before.iter().min().unwrap();
    let leader_before = c.meta().route(0).unwrap();
    assert_ne!(victim, leader_before);
    c.kill_node(victim).unwrap();
    // Every subsequent read succeeds and never lands on the dead node.
    let mut served_after: HashSet<u32> = HashSet::new();
    for i in 0..30 {
        let key = format!("k{}", i % 30);
        let r = c
            .read_routed(0, key.as_bytes(), ReadConsistency::Eventual, 0)
            .unwrap_or_else(|e| panic!("read {i} errored after follower kill: {e}"));
        assert!(r.result.value.is_some());
        assert_ne!(r.node, victim, "read routed to the dead follower");
        served_after.insert(r.node);
    }
    // The group was refilled by reconstruction, so reads spread again —
    // including onto the adopted replacement replica.
    assert!(
        !served_after.contains(&victim),
        "dead node still serving: {served_after:?}"
    );
    assert!(!served_after.is_empty());
    // Leadership never moved (only a follower died).
    assert_eq!(c.meta().route(0), Some(leader_before));
}

#[test]
fn ryw_sessions_survive_leader_kill_and_promotion() {
    let (_d, mut c) = cluster("reroute-leader-kill", 5);
    c.create_partition(1, 0).unwrap();
    // Several "sessions", each remembering the LSN of its last acked write.
    let mut sessions: HashMap<u32, (String, u64, u64)> = HashMap::new();
    let mut op = 0u64;
    for s in 0..6u32 {
        for _ in 0..5 {
            op += 1;
            let key = format!("s{s}-key");
            let lsn = c
                .write(0, key.as_bytes(), format!("op{op:010}").as_bytes(), 0)
                .unwrap();
            sessions.insert(s, (key, lsn, op));
        }
    }
    let leader = c.meta().route(0).unwrap();
    c.kill_node(leader).unwrap();
    // After promotion, every session's fenced read observes a value at or
    // after its last acked write — never a rollback.
    for (s, (key, lsn, last_op)) in &sessions {
        let r = c
            .read_routed(0, key.as_bytes(), ReadConsistency::ReadYourWrites(*lsn), 0)
            .unwrap_or_else(|e| panic!("session {s} fenced read failed after failover: {e}"));
        let value = r
            .result
            .value
            .expect("fenced read lost the session's write");
        let found: u64 = std::str::from_utf8(&value)
            .unwrap()
            .strip_prefix("op")
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            found >= *last_op,
            "session {s} observed a rollback: op {found} < acked op {last_op}"
        );
        assert_ne!(r.node, leader, "read served by the dead leader");
    }
    // Sessions keep writing through the new leader and fencing still holds.
    for s in 0..6u32 {
        op += 1;
        let key = format!("s{s}-key");
        let lsn = c
            .write(0, key.as_bytes(), format!("op{op:010}").as_bytes(), 0)
            .unwrap();
        let r = c
            .read_routed(0, key.as_bytes(), ReadConsistency::ReadYourWrites(lsn), 0)
            .unwrap();
        assert_eq!(
            r.result.value.as_deref(),
            Some(format!("op{op:010}").as_bytes()),
            "post-failover fenced read missed the write"
        );
    }
}

#[test]
fn follower_read_ru_feeds_the_reschedulers_loss_function() {
    let (_d, mut c) = cluster("reroute-accounting", 4);
    c.create_partition(1, 0).unwrap();
    for i in 0..10 {
        c.write(0, format!("k{i}").as_bytes(), &[7u8; 256], 0)
            .unwrap();
    }
    c.tick().unwrap();
    for i in 0..40 {
        let key = format!("k{}", i % 10);
        c.read_routed(0, key.as_bytes(), ReadConsistency::Eventual, 0)
            .unwrap();
    }
    // Build the scheduler's pool view straight from the cluster's split
    // ledgers: one NodeState per node, one ReplicaLoad per hosted replica.
    let members = c.meta().replica_set(0).unwrap().members();
    let mut pool_nodes = Vec::new();
    let mut replica_id = 0u64;
    for &node_id in &members {
        let node = c.node(node_id).unwrap();
        let mut state = NodeState::new(node_id, 10_000.0, 1e9);
        for (partition, split) in node.replica_ru_splits() {
            state.add_replica(ReplicaLoad::split(
                replica_id,
                1,
                partition,
                LoadVector::flat(split.read_ru),
                LoadVector::flat(split.write_ru),
                1.0,
            ));
            replica_id += 1;
        }
        pool_nodes.push(state);
    }
    let leader = c.meta().route(0).unwrap();
    let pool = PoolState::new(pool_nodes);
    // Followers carry read RU the leader never saw; every member carries the
    // write RU. The loss function therefore sees follower reads: a follower
    // node's RU load is nonzero even though it took no client writes.
    for state in &pool.nodes {
        assert!(
            state.ru_load() > 0.0,
            "node {} invisible to Algorithm 2",
            state.id
        );
        if state.id != leader {
            assert!(
                state.read_ru_vector().peak() > 0.0,
                "follower {} reads missing from the load view",
                state.id
            );
        }
    }
    let leader_state = pool.nodes.iter().find(|n| n.id == leader).unwrap();
    assert_eq!(
        leader_state.read_ru_vector().peak(),
        0.0,
        "eventual reads leaked to the leader despite healthy followers"
    );
    // And the optimal-point arithmetic consumes the combined vectors.
    let (r, s) = pool.optimal_load();
    assert!(r > 0.0 && s >= 0.0);
}
