//! End-to-end replication-plane test (the PR's acceptance scenario):
//! a 3-replica group takes quorum writes, loses its leader, promotes the
//! most-caught-up follower with zero acked-write loss, and a failed node's
//! replicas are reconstructed in parallel ≈N× faster than through a single
//! source — matching the §3.3 `RecoveryModel` within tolerance.

use abase::core::cluster::{ReplicatedCluster, ReplicatedClusterConfig};
use abase::core::meta::RecoveryModel;
use abase::lavastore::{Db, DbConfig};
use abase::replication::{
    reconstruct_parallel, reconstruct_single_source, ReadConsistency, ReconstructionTask,
    WriteConcern,
};
use abase::util::TestDir;
use std::path::Path;
use std::sync::Arc;

#[test]
fn quorum_writes_survive_leader_failure() {
    let dir = TestDir::new("failover");
    let mut cluster = ReplicatedCluster::new(
        dir.path(),
        4,
        ReplicatedClusterConfig {
            replication_factor: 3,
            write_concern: WriteConcern::Quorum,
            db: DbConfig::small_for_tests(),
            recovery_bandwidth: None,
            ..Default::default()
        },
    );
    cluster.create_partition(1, 100).unwrap();

    // Quorum writes: every returned LSN is acked by ≥2 of 3 replicas.
    let mut acked = Vec::new();
    for i in 0..200 {
        let key = format!("key-{i:05}");
        let lsn = cluster.write(100, key.as_bytes(), b"payload", 0).unwrap();
        acked.push((key, lsn));
    }
    let group = cluster.group(100).unwrap();
    let old_leader = group.leader().unwrap();
    let last_lsn = acked.last().unwrap().1;
    assert!(group.acked_count(last_lsn) >= 2, "quorum not honored");

    // Identify the most-caught-up follower before the crash.
    let followers: Vec<u32> = group
        .members()
        .into_iter()
        .filter(|&m| m != old_leader)
        .collect();
    let best_lsn = followers
        .iter()
        .map(|&f| group.acked_lsn(f).unwrap())
        .max()
        .unwrap();

    // Kill the leader's node: the MetaServer promotes, reconstructs, reroutes.
    let outcome = cluster.kill_node(old_leader).unwrap();
    let promotion = outcome
        .plan
        .promotions
        .iter()
        .find(|p| p.partition == 100)
        .expect("partition 100 must be promoted");
    assert_ne!(promotion.new_leader, old_leader);
    assert!(
        cluster
            .group(100)
            .unwrap()
            .acked_lsn(promotion.new_leader)
            .unwrap()
            >= best_lsn,
        "promotion must pick a most-caught-up follower"
    );
    assert_eq!(cluster.meta().route(100), Some(promotion.new_leader));

    // Zero acked-write loss: every quorum-acked key reads back at Leader
    // consistency from the new leader.
    for (key, _lsn) in &acked {
        let r = cluster
            .read(100, key.as_bytes(), ReadConsistency::Leader, 0)
            .unwrap();
        assert!(r.value.is_some(), "acked write lost after failover: {key}");
    }

    // The group is back at full strength and keeps serving writes at quorum.
    let set = cluster.meta().replica_set(100).unwrap();
    assert_eq!(set.members().len(), 3);
    assert!(!set.contains(old_leader));
    let lsn = cluster.write(100, b"post-failover", b"v", 0).unwrap();
    assert!(cluster.group(100).unwrap().acked_count(lsn) >= 2);
    let r = cluster
        .read(
            100,
            b"post-failover",
            ReadConsistency::ReadYourWrites(lsn),
            0,
        )
        .unwrap();
    assert_eq!(r.value.as_deref(), Some(&b"v"[..]));
}

fn seeded_source(dir: &Path, keys: usize) -> Arc<Db> {
    let db = Db::open(dir, DbConfig::default()).unwrap();
    for i in 0..keys {
        db.put(format!("key-{i:05}").as_bytes(), &[5u8; 256], None, 0)
            .unwrap();
    }
    db.flush().unwrap();
    Arc::new(db)
}

#[test]
fn parallel_reconstruction_matches_recovery_model() {
    let dir = TestDir::new("recovery-model");
    std::fs::create_dir_all(dir.path()).unwrap();
    const SURVIVORS: usize = 3;
    const DISK_BW: f64 = 3e6;
    let sources: Vec<Arc<Db>> = (0..SURVIVORS)
        .map(|i| seeded_source(&dir.join(format!("src-{i}")), 500))
        .collect();
    let tasks = |tag: &str| -> Vec<ReconstructionTask> {
        sources
            .iter()
            .enumerate()
            .map(|(i, src)| ReconstructionTask {
                partition: i as u64,
                source: Arc::clone(src),
                source_node: i as u32,
                dest_dir: dir.join(format!("rebuilt-{tag}-{i}")),
            })
            .collect()
    };

    let single = reconstruct_single_source(tasks("single"), Some(DISK_BW)).unwrap();
    let parallel = reconstruct_parallel(tasks("par"), Some(DISK_BW)).unwrap();
    assert_eq!(single.bytes_copied, parallel.bytes_copied);
    assert_eq!(parallel.distinct_sources, SURVIVORS);

    // The paper's model predicts an N× speedup; timing noise (thread spawn,
    // filesystem) erodes it, so accept anything within ~40 % of the model.
    let model = RecoveryModel {
        failed_node_bytes: single.bytes_copied as f64,
        per_node_bandwidth: DISK_BW,
        surviving_nodes: SURVIVORS as u32,
    };
    let model_speedup = model.single_node_recovery_secs() / model.parallel_recovery_secs();
    assert!((model_speedup - SURVIVORS as f64).abs() < 1e-9);
    let measured_speedup = single.elapsed.as_secs_f64() / parallel.elapsed.as_secs_f64();
    assert!(
        measured_speedup > model_speedup * 0.6,
        "parallel reconstruction too slow: measured {measured_speedup:.2}× vs model {model_speedup:.2}×"
    );
    assert!(
        measured_speedup < model_speedup * 1.4,
        "parallel reconstruction implausibly fast: measured {measured_speedup:.2}× vs model {model_speedup:.2}×"
    );

    // The wall-clock times themselves should track the model's closed form.
    let rel_err = (single.elapsed.as_secs_f64() - model.single_node_recovery_secs()).abs()
        / model.single_node_recovery_secs();
    assert!(
        rel_err < 0.5,
        "single-source time {:.3}s deviates from model {:.3}s",
        single.elapsed.as_secs_f64(),
        model.single_node_recovery_secs()
    );

    // Rebuilt replicas are complete databases.
    for (i, source) in sources.iter().enumerate() {
        let db = Db::open(dir.join(format!("rebuilt-par-{i}")), DbConfig::default()).unwrap();
        assert_eq!(db.last_seq(), source.last_seq());
        assert!(db.get(b"key-00499", 0).unwrap().value.is_some());
    }
}

#[test]
fn async_cluster_converges_on_tick_and_fences_reads() {
    let dir = TestDir::new("async-fence");
    let mut cluster = ReplicatedCluster::new(
        dir.path(),
        3,
        ReplicatedClusterConfig {
            replication_factor: 3,
            write_concern: WriteConcern::Async,
            db: DbConfig::small_for_tests(),
            recovery_bandwidth: None,
            ..Default::default()
        },
    );
    cluster.create_partition(7, 1).unwrap();
    let lsn = cluster.write(1, b"k", b"v", 0).unwrap();
    // Fenced read routes around stale followers (only the leader qualifies).
    let r = cluster
        .read(1, b"k", ReadConsistency::ReadYourWrites(lsn), 0)
        .unwrap();
    assert_eq!(r.value.as_deref(), Some(&b"v"[..]));
    // After the replication tick every replica serves the write.
    cluster.tick().unwrap();
    let group = cluster.group_mut(1).unwrap();
    assert_eq!(group.acked_count(lsn), 3);
    for _ in 0..3 {
        let r = group.read(b"k", ReadConsistency::Eventual, 0).unwrap();
        assert_eq!(r.value.as_deref(), Some(&b"v"[..]));
    }
}
