//! Cross-crate integration tests: the full request path and control loops.

use abase::core::cluster::{IsolationExperiment, TenantSpec};
use abase::core::engine::TableEngine;
use abase::core::node::{DataNodeConfig, DataNodeSim};
use abase::core::proxy::ProxyPlaneConfig;
use abase::lavastore::DbConfig;
use abase::proto::{Command, RespValue};
use abase::scheduler::{AutoscaleConfig, Autoscaler, ScalingDecision};
use abase::util::clock::days;
use abase::util::TestDir;
use abase::util::TimeSeries;
use abase::workload::{KeyspaceConfig, TrafficShape};

/// RESP bytes in → engine → RESP bytes out, across tenants and a restart.
#[test]
fn resp_wire_to_storage_and_back() {
    let dir = TestDir::new("wire");
    {
        let engine = TableEngine::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        // A client sends raw RESP for: SET k v EX 100 / GET k.
        let wire = b"*5\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n$2\r\nEX\r\n$3\r\n100\r\n".to_vec();
        let (value, _) = RespValue::parse(&wire).unwrap().unwrap();
        let cmd = Command::from_resp(&value).unwrap();
        let out = engine.execute(9, &cmd, 0).unwrap();
        assert_eq!(out.reply.to_bytes(), b"+OK\r\n");
        let get = Command::from_resp(
            &RespValue::parse(b"*2\r\n$3\r\nGET\r\n$1\r\nk\r\n")
                .unwrap()
                .unwrap()
                .0,
        )
        .unwrap();
        let out = engine.execute(9, &get, 50_000_000).unwrap();
        assert_eq!(out.reply.to_bytes(), b"$1\r\nv\r\n");
        // Another tenant sees nothing.
        let out = engine.execute(10, &get, 0).unwrap();
        assert_eq!(out.reply, RespValue::Bulk(None));
    }
    // Restart: WAL replay keeps the data (within its TTL).
    let engine = TableEngine::open(dir.path(), DbConfig::small_for_tests()).unwrap();
    let get = Command::Get { key: "k".into() };
    assert_eq!(
        engine.execute(9, &get, 50_000_000).unwrap().reply,
        RespValue::bulk("v")
    );
    // And TTL expiry still applies after recovery.
    assert_eq!(
        engine.execute(9, &get, 101_000_000).unwrap().reply,
        RespValue::Bulk(None)
    );
}

fn spec(id: u32, qps: f64) -> TenantSpec {
    TenantSpec {
        id,
        tenant_quota_ru: 1_500.0,
        partition: u64::from(id) * 10,
        partition_quota_ru: 750.0,
        shape: TrafficShape::Steady(qps),
        keyspace: KeyspaceConfig {
            n_keys: 10_000,
            zipf_s: 1.0,
            read_ratio: 0.9,
            key_prefix: format!("t{id}"),
            ..Default::default()
        },
        proxy: ProxyPlaneConfig {
            n_proxies: 4,
            n_groups: 2,
            ..Default::default()
        },
    }
}

/// The full proxy→quota→WFQ→cache pipeline conserves requests: offered =
/// success + errors (nothing silently dropped once queues drain).
#[test]
fn pipeline_conserves_requests() {
    let node = DataNodeSim::new(1, DataNodeConfig::default());
    let mut exp = IsolationExperiment::new(node, vec![spec(1, 300.0), spec(2, 500.0)], 3);
    exp.set_minute_secs(5);
    let points = exp.run_minutes(6);
    for tenant in [1u32, 2] {
        let offered: f64 = if tenant == 1 { 300.0 } else { 500.0 };
        // Skip the first minute (queue fill) and last (queue drain).
        for p in points.iter().filter(|p| p.tenant == tenant && p.minute > 0) {
            let seen = p.success_qps + p.error_qps;
            assert!(
                (seen - offered).abs() < offered * 0.1,
                "tenant {tenant} minute {}: offered {offered} saw {seen}",
                p.minute
            );
        }
    }
}

/// Cache warm-up raises the combined hit ratio, which in turn lowers the
/// latency profile (the cache-aware pipeline working end to end).
#[test]
fn warmup_raises_hit_ratio_and_lowers_latency() {
    let node = DataNodeSim::new(1, DataNodeConfig::default());
    let mut exp = IsolationExperiment::new(node, vec![spec(1, 500.0)], 5);
    exp.set_minute_secs(10);
    let points = exp.run_minutes(5);
    let first = &points[0];
    let last = &points[4];
    assert!(
        last.cache_hit_ratio > first.cache_hit_ratio + 0.1,
        "hit ratio did not climb: {} -> {}",
        first.cache_hit_ratio,
        last.cache_hit_ratio
    );
    assert!(last.p99_latency_ms <= first.p99_latency_ms + 0.5);
}

/// Forecast → Algorithm 1 → partition split: a tenant growing past the split
/// bound UP doubles its partitions.
#[test]
fn growth_triggers_scale_up_and_split() {
    const HOUR: u64 = 3_600_000_000;
    let mut autoscaler = Autoscaler::new(AutoscaleConfig {
        partition_quota_upper: 400.0,
        ..Default::default()
    });
    // 30 days of growth toward 2.5k RU/s.
    let usage: Vec<f64> = (0..720).map(|t| 800.0 + 2.2 * t as f64).collect();
    let series = TimeSeries::new(0, HOUR, usage);
    let (decision, output) = autoscaler.forecast_and_decide(1, days(30), &series, None, 2_600.0, 4);
    assert!(output.peak > 2_300.0, "peak={}", output.peak);
    match decision {
        ScalingDecision::ScaleUp {
            new_partitions,
            split,
            new_partition_quota,
            ..
        } => {
            assert!(split, "expected a partition split");
            assert_eq!(new_partitions, 8);
            assert!(new_partition_quota <= 400.0 * 1.5);
        }
        other => panic!("expected ScaleUp, got {other:?}"),
    }
}

/// Proxy-cache reads bypass the node entirely: with a scorching keyspace the
/// node sees a small fraction of offered traffic.
#[test]
fn proxy_cache_absorbs_hot_traffic() {
    let node = DataNodeSim::new(
        1,
        DataNodeConfig {
            cpu_ru_per_sec: 500.0, // tiny node: would melt without the proxy cache
            ..Default::default()
        },
    );
    let mut hot = spec(1, 2_000.0);
    hot.keyspace.n_keys = 50;
    hot.keyspace.zipf_s = 1.2;
    hot.keyspace.read_ratio = 1.0;
    let mut exp = IsolationExperiment::new(node, vec![hot], 8);
    exp.set_minute_secs(5);
    let points = exp.run_minutes(4);
    let last = points.last().unwrap();
    assert!(
        last.proxy_hit_ratio > 0.9,
        "proxy hit ratio {}",
        last.proxy_hit_ratio
    );
    assert!(
        last.success_qps > 1_800.0,
        "hot tenant throttled despite cache: {} qps",
        last.success_qps
    );
}
