//! Pinned chaos regression seeds.
//!
//! Every seed in `PINNED_SEEDS` replays one deterministic fault-injection
//! episode (see `abase-chaos`): the full plan — node kills, binlog gaps, torn
//! WAL tails, failed flushes, mid-resync leader deaths — is a pure function
//! of the seed, so a seed that ever caught a bug stays a one-line regression
//! test here. When the chaos CI job reports `CHAOS_SEED=<n>`, reproduce with
//! `cargo run -p abase-chaos -- --episodes 1 --seed <n>` and append `<n>` to
//! the list once fixed.
//!
//! The episodes share the process-global fail-point registry, so they run
//! inside a single test function, strictly sequentially.

use abase_chaos::{ChaosConfig, ChaosRunner, FaultPlan};

/// Seeds with known-interesting fault schedules. The list was drawn from
/// sweeps where each seed caught at least one deliberately injected
/// regression (acking writes without replication → seeds 9, 21, 31; reverting
/// the commit retry/`WAIT`-timeout to a single pump pass → seeds 13, 48, 49)
/// or exercises a distinct fault mix (torn tails + kills: 2; mid-resync
/// leader death: 7). Seed 7020 caught the migration double-serve invariant
/// misfiring on a kill-with-no-spare (dead member awaiting adoption lingers
/// in the group while the meta set drops it); its plan mixes completed live
/// migrations with node kills and stays pinned for that interleaving.
const PINNED_SEEDS: &[u64] = &[2, 7, 9, 13, 21, 31, 48, 49, 7020];

/// Socket-transport pinned seeds (frame chaos over a real TCP replica
/// pair). Seed 400 caught the reorder-wedge: a reorder-held frame was never
/// flushed once the stream went idle, starving a parked `WAIT` forever.
/// Seeds 404 and 407 caught the drop-wedge: a dropped frame leaves a hole
/// the follower can only notice when more traffic flows, so an idle stream
/// never recovered — fixed by the leader's `PING <lsn>` keepalive, which
/// lets a trailing follower detect the loss and full-resync.
const PINNED_SOCKET_SEEDS: &[u64] = &[400, 404, 407];

#[test]
fn pinned_regression_seeds_stay_green() {
    let runner = ChaosRunner::new(ChaosConfig::default());
    let mut failures = Vec::new();
    let mut acked = 0u64;
    let mut kills = 0u64;
    let mut follower_reads = 0u64;
    let mut stale_reads = 0u64;
    let mut migrations_started = 0u64;
    let mut migrations_completed = 0u64;
    let mut migrations_aborted = 0u64;
    for &seed in PINNED_SEEDS {
        let report = runner.run_episode(seed);
        acked += report.writes_acked;
        kills += report.kills;
        follower_reads += report.follower_reads;
        stale_reads += report.stale_reads;
        migrations_started += report.migrations_started;
        migrations_completed += report.migrations_completed;
        migrations_aborted += report.migrations_aborted;
        for violation in &report.violations {
            eprintln!("CHAOS_SEED={seed}: {violation}");
        }
        if !report.ok() {
            failures.push(seed);
        }
    }
    assert!(
        failures.is_empty(),
        "pinned chaos seeds regressed: {failures:?} (replay with \
         `cargo run -p abase-chaos -- --episodes 1 --seed <n>`)"
    );
    // The pinned list must actually exercise the machinery, not vacuously
    // pass on an idle cluster.
    assert!(
        acked > 1_000,
        "pinned episodes acked too few writes: {acked}"
    );
    assert!(kills >= 8, "pinned episodes killed too few nodes: {kills}");
    // Routed reads must really exercise followers — and under async
    // shipping plus injected stalls, some legal staleness must have been
    // observed (each stale read passed the lag-attribution check).
    assert!(
        follower_reads > 100,
        "routed reads barely reached followers: {follower_reads}"
    );
    assert!(
        stale_reads > 0,
        "no staleness observed across pinned fault episodes — the \
         stale-read attribution check is vacuous"
    );
    // The migration plane must be genuinely exercised: some moves complete
    // their cut-over under fire, and some are aborted by targeted faults
    // (killed endpoints, torn checkpoint copies) — each path covered by the
    // never-loses-acked-writes / never-double-serves invariants above.
    assert!(
        migrations_started >= 5,
        "pinned episodes started too few migrations: {migrations_started}"
    );
    assert!(
        migrations_completed >= 2,
        "no pinned episode completed a live cut-over: {migrations_completed}"
    );
    assert!(
        migrations_aborted >= 2,
        "no pinned episode aborted a faulted migration: {migrations_aborted}"
    );
    // Socket-transport episodes share the same global fail-point registry,
    // so they run here, after the cluster episodes, still sequentially.
    let mut socket_failures = Vec::new();
    let mut socket_faults = 0u64;
    let mut socket_resyncs = 0u64;
    for &seed in PINNED_SOCKET_SEEDS {
        let report = abase_chaos::run_socket_episode(seed);
        socket_faults += report.faults_armed;
        socket_resyncs += report.resyncs;
        for violation in &report.violations {
            eprintln!("CHAOS_SEED={seed} (socket): {violation}");
        }
        if !report.ok() {
            socket_failures.push(seed);
        }
    }
    assert!(
        socket_failures.is_empty(),
        "pinned socket chaos seeds regressed: {socket_failures:?} (replay \
         with `cargo run -p abase-chaos -- --episodes 0 --socket-episodes 1 \
         --seed <n>`)"
    );
    // Non-vacuity: the pinned trio must really bend the frame stream and
    // force checkpoint recoveries.
    assert!(
        socket_faults >= 6,
        "pinned socket episodes armed too few frame faults: {socket_faults}"
    );
    assert!(
        socket_resyncs >= 2,
        "pinned socket episodes never recovered via FULLRESYNC: {socket_resyncs}"
    );
}

#[test]
fn fault_plans_replay_identically() {
    // Seed → plan is the whole replayability story; pin it.
    let config = ChaosConfig::default();
    for &seed in PINNED_SEEDS {
        assert_eq!(
            FaultPlan::generate(seed, &config),
            FaultPlan::generate(seed, &config),
            "plan for seed {seed} is not deterministic"
        );
        assert!(!FaultPlan::generate(seed, &config).events.is_empty());
    }
}
