//! Live partition migration under load (the PR's acceptance scenarios):
//! scheduler-planned moves execute as real data movement through the shared
//! staged placement-change path — checkpoint copy throttled by the §3.3
//! recovery-bandwidth model, binlog catch-up, epoch-guarded cut-over — with
//! zero acked-write loss, RYW fences holding across the cut-over, and the
//! measured copy time matching the `RecoveryModel`/`Throttle` prediction.

use abase::core::cluster::{ReplicatedCluster, ReplicatedClusterConfig};
use abase::core::migration::MigrationError;
use abase::lavastore::DbConfig;
use abase::replication::{GroupConfig, ReadConsistency, ReplicaGroup, WriteConcern};
use abase::scheduler::{Rescheduler, ReschedulerConfig};
use abase::util::TestDir;

fn cluster_with(tag: &str, nodes: u32, bandwidth: Option<f64>) -> (TestDir, ReplicatedCluster) {
    let dir = TestDir::new(tag);
    let cluster = ReplicatedCluster::new(
        dir.path(),
        nodes,
        ReplicatedClusterConfig {
            replication_factor: 3,
            write_concern: WriteConcern::Quorum,
            db: DbConfig::small_for_tests(),
            recovery_bandwidth: bandwidth,
            ..Default::default()
        },
    );
    (dir, cluster)
}

/// Both replica-placement changes — a follower's gap resync and a
/// migration's destination staging — run through the same ticket API:
/// identical copy primitive, identical epoch guard, interchangeable installs.
#[test]
fn migration_staging_and_failover_resync_share_one_api() {
    let dir = TestDir::new("shared-staging");
    let mut g = ReplicaGroup::bootstrap(
        1,
        dir.path(),
        &[10, 20, 30],
        GroupConfig::new(WriteConcern::Async, DbConfig::small_for_tests()),
    )
    .unwrap();
    for i in 0..30 {
        g.put(format!("k{i}").as_bytes(), &[7u8; 128], None, 0)
            .unwrap();
    }
    g.tick().unwrap();
    // Resync path: refresh existing follower 20 from a staged checkpoint.
    let resync = g.begin_resync(20).unwrap();
    let resync_info = resync.copy_throttled(None).unwrap();
    // Join path: stage brand-new member 40 from the same machinery.
    let join = g.begin_join(40, dir.path()).unwrap();
    let join_info = join.copy_throttled(None).unwrap();
    // The same leader checkpoint feeds both targets.
    assert_eq!(resync_info.last_seq, join_info.last_seq);
    g.complete_resync(resync, resync_info).unwrap();
    g.complete_join(join, join_info).unwrap();
    assert_eq!(g.members(), vec![10, 20, 30, 40]);
    // Both installed replicas serve the full history and tail the leader.
    let lsn = g.put(b"post", b"v", None, 0).unwrap();
    g.tick().unwrap();
    for id in [20u32, 40] {
        assert_eq!(g.acked_lsn(id).unwrap(), lsn, "replica {id} not tailing");
        let db = g.db(id).unwrap();
        assert!(db.get(b"k0", 0).unwrap().value.is_some());
        assert!(db.get(b"post", 0).unwrap().value.is_some());
    }
    // And both ticket kinds die under the same epoch guard: any membership
    // change supersedes copies still in flight, whichever path issued them.
    let stale_resync = g.begin_resync(20).unwrap();
    let stale_join = g.begin_join(50, dir.path()).unwrap();
    let ri = stale_resync.copy().unwrap();
    let ji = stale_join.copy().unwrap();
    g.remove_member(40).unwrap(); // epoch bump
    assert!(matches!(
        g.complete_resync(stale_resync, ri),
        Err(abase::replication::Error::ResyncSuperseded)
    ));
    assert!(matches!(
        g.complete_join(stale_join, ji),
        Err(abase::replication::Error::ResyncSuperseded)
    ));
}

/// Concurrent quorum writes during copy + catch-up + cut-over: zero acked
/// writes lost, and every session's RYW fence holds across the cut-over,
/// wherever the router sends the read.
#[test]
fn quorum_writes_survive_a_live_migration_with_ryw_fences() {
    let (_d, mut c) = cluster_with("migrate-under-load", 4, None);
    c.create_partition(1, 0).unwrap();
    let mut acked: Vec<(String, u64)> = Vec::new();
    for i in 0..40 {
        let key = format!("pre-{i}");
        let lsn = c.write(0, key.as_bytes(), &[9u8; 256], 0).unwrap();
        acked.push((key, lsn));
    }
    let set = c.meta().replica_set(0).unwrap().clone();
    let from = set.followers[0];
    let to = (0..4u32).find(|n| !set.contains(*n)).unwrap();
    c.enqueue_migration(0, from, to).unwrap();
    // Writes keep landing while the move stages, catches up, and cuts over.
    let mut ticks = 0;
    while !c.migrations().idle() {
        ticks += 1;
        assert!(ticks < 50, "migration did not converge");
        for w in 0..5 {
            let key = format!("during-{ticks}-{w}");
            let lsn = c.write(0, key.as_bytes(), &[3u8; 128], 0).unwrap();
            acked.push((key.clone(), lsn));
            // The freshest session fence must hold mid-migration too.
            let r = c
                .read_routed(0, key.as_bytes(), ReadConsistency::ReadYourWrites(lsn), 0)
                .unwrap();
            assert!(
                r.result.value.is_some(),
                "fenced read lost {key} mid-migration"
            );
        }
        c.tick().unwrap();
    }
    assert_eq!(c.migrations().completed().len(), 1);
    assert!(c.migrations().aborted().is_empty());
    // Post-cut-over writes continue, and every acked write — pre-move and
    // mid-move — is still fenced-readable and leader-readable.
    for i in 0..5 {
        let key = format!("post-{i}");
        let lsn = c.write(0, key.as_bytes(), &[1u8; 64], 0).unwrap();
        acked.push((key, lsn));
    }
    for (key, lsn) in &acked {
        let leader = c
            .read(0, key.as_bytes(), ReadConsistency::Leader, 0)
            .unwrap();
        assert!(leader.value.is_some(), "acked write lost: {key}");
        let fenced = c
            .read_routed(0, key.as_bytes(), ReadConsistency::ReadYourWrites(*lsn), 0)
            .unwrap();
        assert!(
            fenced.result.value.is_some(),
            "RYW fence broken across cut-over: {key}"
        );
        assert_ne!(fenced.node, from, "departed replica served a fenced read");
    }
    // The departed replica is gone from every layer.
    assert!(!c.meta().replica_set(0).unwrap().contains(from));
    assert!(!c.meta().read_candidates(0, None).contains(&from));
    assert!(!c.group(0).unwrap().members().contains(&from));
    assert!(c.node(from).unwrap().replica_role(0).is_none());
}

/// The staged copy's measured wall-clock matches the §3.3
/// `RecoveryModel`/`Throttle` prediction: `bytes / per_disk_bandwidth`.
#[test]
fn migration_copy_time_matches_the_bandwidth_model() {
    let bw = 1.5e6;
    let (_d, mut c) = cluster_with("migrate-bandwidth", 4, Some(bw));
    c.create_partition(1, 0).unwrap();
    for i in 0..400 {
        c.write(0, format!("k{i:05}").as_bytes(), &[5u8; 512], 0)
            .unwrap();
    }
    c.tick().unwrap();
    let set = c.meta().replica_set(0).unwrap().clone();
    let to = (0..4u32).find(|n| !set.contains(*n)).unwrap();
    c.enqueue_migration(0, set.followers[0], to).unwrap();
    let mut ticks = 0;
    while !c.migrations().idle() {
        ticks += 1;
        assert!(ticks < 50, "migration did not converge");
        c.tick().unwrap();
    }
    let report = &c.migrations().completed()[0];
    assert!(report.bytes_copied > 100_000, "copy too small to measure");
    let predicted_secs = report.bytes_copied as f64 / bw;
    // The throttle sleeps at least bytes/bw in total; real I/O adds a little
    // on top, and sleep granularity bounds the overshoot.
    assert!(
        report.copy_secs >= predicted_secs * 0.85,
        "copy finished faster than the §3.3 disk model allows: measured \
         {:.3}s, model {predicted_secs:.3}s",
        report.copy_secs
    );
    assert!(
        report.copy_secs <= predicted_secs * 2.0 + 0.25,
        "copy far slower than the model predicts: measured {:.3}s, model \
         {predicted_secs:.3}s",
        report.copy_secs
    );
}

/// Satellite regression: a slow (in-flight) migration blocks a second move
/// involving the same node until *its own* completion — the back-pressure
/// the old per-round `finish_migrations` sweep fictionalized.
#[test]
fn in_flight_migration_blocks_a_second_move_from_the_same_node() {
    // 5 nodes × 2 partitions × 3 replicas: some node hosts both partitions,
    // so two moves can contend for it.
    let (_d, mut c) = cluster_with("migrate-backpressure", 5, None);
    c.create_partition(1, 0).unwrap();
    c.create_partition(1, 1).unwrap();
    for p in 0..2u64 {
        for i in 0..20 {
            c.write(p, format!("p{p}-k{i}").as_bytes(), &[7u8; 128], 0)
                .unwrap();
        }
    }
    let shared = c
        .meta()
        .replica_set(0)
        .unwrap()
        .members()
        .into_iter()
        .find(|&n| c.meta().replica_set(1).unwrap().contains(n))
        .expect("partitions share a node on a 5-node cluster");
    let spare0 = (0..5u32)
        .find(|n| !c.meta().replica_set(0).unwrap().contains(*n))
        .unwrap();
    let spare1 = (0..5u32)
        .find(|n| !c.meta().replica_set(1).unwrap().contains(*n) && *n != spare0)
        .unwrap();
    c.enqueue_migration(0, shared, spare0).unwrap();
    c.enqueue_migration(1, shared, spare1).unwrap();
    // Tick 1: the first move stages and holds both its nodes; the second
    // stays queued behind the shared source.
    c.tick().unwrap();
    assert!(c.is_node_migrating(shared));
    assert!(c.is_node_migrating(spare0));
    assert_eq!(c.migrations().in_flight().len(), 1);
    assert_eq!(c.migrations().queued().len(), 1);
    assert_eq!(c.migrations().in_flight()[0].req.partition, 0);
    // Only after the first move completes does the second start.
    let mut first_done_tick = None;
    let mut second_started_tick = None;
    for tick in 2..50 {
        c.tick().unwrap();
        if first_done_tick.is_none() && !c.migrations().completed().is_empty() {
            first_done_tick = Some(tick);
        }
        if second_started_tick.is_none()
            && c.migrations()
                .in_flight()
                .iter()
                .any(|m| m.req.partition == 1)
        {
            second_started_tick = Some(tick);
            assert!(
                first_done_tick.is_some(),
                "second move from node {shared} started before the first completed"
            );
        }
        if c.migrations().idle() {
            break;
        }
    }
    assert_eq!(c.migrations().completed().len(), 2, "both moves complete");
    assert!(!c.is_node_migrating(shared));
    // Duplicate-pending and bad-placement requests are refused outright.
    assert!(matches!(
        c.enqueue_migration(0, spare0, spare0),
        Err(MigrationError::DestAlreadyMember(_))
    ));
    assert!(matches!(
        c.enqueue_migration(9, 0, 1),
        Err(MigrationError::UnknownPartition(9))
    ));
}

/// Acceptance: an Algorithm-2 plan — produced by the real `Rescheduler` over
/// a pool view built from the cluster's split RU ledgers — executes as real
/// data movement and reduces the loss function it was planned against.
#[test]
fn scheduler_planned_migration_moves_real_bytes() {
    let nodes = 5u32;
    let (_d, mut c) = cluster_with("migrate-planned", nodes, None);
    for p in 0..5u64 {
        c.create_partition(1, p).unwrap();
    }
    // Heat exactly the partitions node 0 does NOT host: node 0 stays cold,
    // at least one other node co-hosts two hot replicas — a feasible,
    // positive-gain Algorithm-2 move must exist.
    let hot: Vec<u64> = (0..5u64)
        .filter(|&p| !c.meta().replica_set(p).unwrap().contains(0))
        .collect();
    assert_eq!(hot.len(), 2, "each node misses exactly two partitions");
    for &p in &hot {
        for i in 0..60 {
            c.write(p, format!("p{p}-k{i:04}").as_bytes(), &[8u8; 256], 0)
                .unwrap();
        }
    }
    c.tick().unwrap();
    // One pool-view builder serves the scheduler, this test, and the
    // ablation bench: the cluster's own `scheduler_pool_view`.
    let std_before = c.scheduler_pool_view(1.25).ru_util_std();
    let plan = Rescheduler::new(ReschedulerConfig {
        theta: 0.02,
        min_gain: 1e-9,
    })
    .reschedule_round(&mut c.scheduler_pool_view(1.25));
    assert!(
        !plan.is_empty(),
        "Algorithm 2 found no move on a skewed pool"
    );
    let req = ReplicatedCluster::migration_request_from_plan(&plan[0]);
    assert!(hot.contains(&req.partition), "plan moved a cold replica");
    c.enqueue_migration(req.partition, req.from, req.to)
        .unwrap();
    let mut ticks = 0;
    while !c.migrations().idle() {
        ticks += 1;
        assert!(ticks < 50, "migration did not converge");
        c.tick().unwrap();
    }
    assert_eq!(c.migrations().completed().len(), 1);
    // Real bytes at the destination: the full hot keyspace is servable from
    // the destination's own storage.
    let db = c.group(req.partition).unwrap().db(req.to).unwrap();
    for i in 0..60 {
        assert!(
            db.get(format!("p{}-k{i:04}", req.partition).as_bytes(), 0)
                .unwrap()
                .value
                .is_some(),
            "moved replica is missing p{}-k{i:04}",
            req.partition
        );
    }
    // And the loss function the plan optimized actually improved — with the
    // moved replica's RU ledger travelling to the destination, so the gain
    // is genuine balancing, not deleted load.
    let std_after = c.scheduler_pool_view(1.25).ru_util_std();
    assert!(
        std_after < std_before,
        "executed plan did not reduce the loss: {std_before} -> {std_after}"
    );
}
