//! Rescheduling: watch Algorithm 2 balance a lopsided resource pool.
//!
//! Builds a 20-node pool where two nodes carry almost everything — one
//! CPU-bound, one disk-bound — and runs rescheduling rounds until the pool is
//! balanced, printing a utilization heat-strip each round.
//!
//! Run with: `cargo run --release --example rescheduling`

use abase::scheduler::{LoadVector, NodeState, PoolState, ReplicaLoad, Rescheduler};

fn heat(util: f64) -> char {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    LEVELS[((util / 1.2 * 7.0).round() as usize).min(7)]
}

fn strip(pool: &PoolState, which: fn(&NodeState) -> f64) -> String {
    pool.nodes.iter().map(|n| heat(which(n))).collect()
}

fn main() {
    let mut pool = PoolState::new(
        (0..20)
            .map(|i| NodeState::new(i, 1_000.0, 10_000.0))
            .collect(),
    );
    // Node 0: CPU-hungry tenants (search/e-commerce shapes from Table 1 —
    // read-dominant, so most of the RU total is read share).
    for id in 0..30u64 {
        pool.nodes[0].add_replica(ReplicaLoad::from_total(
            id,
            1,
            id,
            LoadVector::flat(35.0),
            0.9,
            40.0,
        ));
    }
    // Node 1: storage-hungry tenants (direct-message shape, write-heavy).
    for id in 100..130u64 {
        pool.nodes[1].add_replica(ReplicaLoad::from_total(
            id,
            2,
            id,
            LoadVector::flat(2.0),
            0.3,
            320.0,
        ));
    }
    // A sprinkle of medium tenants elsewhere.
    for id in 200..260u64 {
        let node = 2 + (id as usize % 18);
        pool.nodes[node].add_replica(ReplicaLoad::from_total(
            id,
            3 + (id % 5) as u32,
            id,
            LoadVector::flat(6.0),
            0.7,
            60.0,
        ));
    }

    let rescheduler = Rescheduler::default();
    println!("round | RU util per node        | storage util per node   | RU std");
    let mut inflight = Vec::new();
    for round in 0..60 {
        if round % 5 == 0 {
            println!(
                "{round:>5} | {} | {} | {:.4}",
                strip(&pool, NodeState::ru_util),
                strip(&pool, NodeState::storage_util),
                pool.ru_util_std()
            );
        }
        // Offline regime: every move started last round has completed — each
        // one is finished individually, matching the live engine's
        // per-migration completion callbacks.
        for m in std::mem::take(&mut inflight) {
            let m: abase::scheduler::Migration = m;
            pool.complete_migration(m.from_node, m.to_node);
        }
        let moves = rescheduler.reschedule_round(&mut pool);
        if moves.is_empty() && round > 0 {
            println!("converged after {round} rounds");
            break;
        }
        inflight = moves;
    }
    let (r, s) = pool.optimal_load();
    println!(
        "\noptimal load point R={r:.3} S={s:.3}; final stds: RU {:.4}, storage {:.4}",
        pool.ru_util_std(),
        pool.storage_util_std()
    );
    println!("Both dimensions balance simultaneously — the multi-resource part of §5.3.");
}
