//! Replication walkthrough: leader/follower groups, consistency levels, and
//! MetaServer-driven failover with parallel reconstruction (paper §3.2–§3.3).
//!
//! A four-node cluster hosts three partitions at replication factor 3. The
//! example writes at `Quorum`, shows LSN-fenced reads, kills the busiest
//! node, and walks through what the MetaServer did: who got promoted, where
//! each lost replica was re-seeded from, and how the parallel copy compares
//! to the closed-form §3.3 recovery model.
//!
//! Run with: `cargo run --example replication_failover`

use abase::core::cluster::{ReplicatedCluster, ReplicatedClusterConfig};
use abase::core::meta::RecoveryModel;
use abase::lavastore::DbConfig;
use abase::replication::{ReadConsistency, WriteConcern};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("abase-repl-example-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // --- A cluster of 4 DataNodes, every partition on 3 of them. ---
    let mut cluster = ReplicatedCluster::new(
        &dir,
        4,
        ReplicatedClusterConfig {
            replication_factor: 3,
            write_concern: WriteConcern::Quorum,
            db: DbConfig::default(),
            // Model 8 MB/s per disk so the reconstruction timing is visible.
            recovery_bandwidth: Some(8e6),
            ..Default::default()
        },
    );
    for partition in 0..3u64 {
        cluster.create_partition(1, partition)?;
        let group = cluster.group(partition).unwrap();
        println!(
            "partition {partition}: leader node {:?}, members {:?}",
            group.leader().unwrap(),
            group.members()
        );
    }

    // --- Quorum writes: acked once a majority holds them. ---
    let mut last_lsn = 0;
    for partition in 0..3u64 {
        for i in 0..500 {
            let key = format!("p{partition}-key-{i:04}");
            last_lsn = cluster.write(partition, key.as_bytes(), &[42u8; 512], 0)?;
        }
        let group = cluster.group(partition).unwrap();
        println!(
            "partition {partition}: wrote 500 keys, lsn {last_lsn}, acked by {} of 3 replicas",
            group.acked_count(last_lsn)
        );
    }

    // --- Read consistency levels. ---
    // Leader: always current. ReadYourWrites(lsn): any replica at/past the
    // LSN (load spreads once followers catch up). Eventual: anyone alive.
    let r = cluster.read(0, b"p0-key-0000", ReadConsistency::Leader, 0)?;
    println!(
        "leader read: {} bytes",
        r.value.map(|v| v.len()).unwrap_or(0)
    );
    let r = cluster.read(
        0,
        b"p0-key-0499",
        ReadConsistency::ReadYourWrites(last_lsn),
        0,
    )?;
    println!(
        "fenced read at lsn {last_lsn}: {} bytes (never stale)",
        r.value.map(|v| v.len()).unwrap_or(0)
    );

    // --- Kill the node that leads partition 0. ---
    let victim = cluster.meta().route(0).unwrap();
    println!("\nkilling node {victim} …");
    let outcome = cluster.kill_node(victim)?;
    for p in &outcome.plan.promotions {
        println!(
            "  promoted node {} to lead partition {} (most-caught-up follower)",
            p.new_leader, p.partition
        );
    }
    for r in &outcome.plan.reconstructions {
        println!(
            "  re-seeded partition {} replica onto node {} from node {}",
            r.partition, r.dest, r.source
        );
    }
    if let Some(rec) = &outcome.reconstruction {
        let model = RecoveryModel {
            failed_node_bytes: rec.bytes_copied as f64,
            per_node_bandwidth: 8e6,
            surviving_nodes: rec.distinct_sources as u32,
        };
        println!(
            "  parallel reconstruction: {} replicas, {:.1} MB in {:.2}s from {} source disks",
            rec.replicas,
            rec.bytes_copied as f64 / 1e6,
            rec.elapsed.as_secs_f64(),
            rec.distinct_sources,
        );
        println!(
            "  §3.3 model: single-source {:.2}s vs parallel {:.2}s ({}× speedup)",
            model.single_node_recovery_secs(),
            model.parallel_recovery_secs(),
            rec.distinct_sources,
        );
    }

    // --- No acked write was lost; the cluster keeps serving. ---
    let mut survivors = 0;
    for i in 0..500 {
        let key = format!("p0-key-{i:04}");
        if cluster
            .read(0, key.as_bytes(), ReadConsistency::Leader, 0)?
            .value
            .is_some()
        {
            survivors += 1;
        }
    }
    println!("\nafter failover: {survivors}/500 quorum-acked keys still readable");
    let lsn = cluster.write(0, b"back-in-business", b"yes", 0)?;
    println!(
        "new write at lsn {lsn} acked by {} replicas",
        cluster.group(0).unwrap().acked_count(lsn)
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
