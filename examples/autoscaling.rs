//! Predictive autoscaling: a growing tenant never hits its quota.
//!
//! Replays 8 weeks of a tenant whose traffic grows ~6 %/week with daily
//! cycles and noise. Each week the Algorithm-1 autoscaler forecasts the next
//! 7 days from the trailing 30 days and adjusts the quota; the run reports
//! whether usage ever breached the quota (throttling) and how much quota
//! headroom was carried (waste).
//!
//! Run with: `cargo run --release --example autoscaling`

use abase::scheduler::{AutoscaleConfig, Autoscaler, ScalingDecision};
use abase::util::clock::days;
use abase::util::TimeSeries;
use abase::workload::series::HOUR;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut autoscaler = Autoscaler::new(AutoscaleConfig::default());
    let mut usage_level = 400.0f64;
    let mut quota = 1_000.0f64;
    let mut history: Vec<f64> = Vec::new();
    let mut throttled_hours = 0u32;
    let mut headroom_sum = 0.0f64;
    let mut samples = 0u32;

    println!("week | peak usage | quota  | forecast peak | decision");
    for week in 0..8u64 {
        let mut week_peak = 0.0f64;
        for h in 0..24 * 7 {
            let diurnal = 1.0 + 0.25 * (h as f64 / 24.0 * std::f64::consts::TAU).sin();
            let noise = 1.0 + 0.05 * rng.gen_range(-1.0..1.0);
            let value = usage_level * diurnal * noise;
            week_peak = week_peak.max(value);
            if value > quota {
                throttled_hours += 1;
            }
            headroom_sum += (quota - value).max(0.0) / quota;
            samples += 1;
            history.push(value);
        }
        if history.len() > 720 {
            let cut = history.len() - 720;
            history.drain(..cut);
        }
        let series = TimeSeries::new(0, HOUR, history.clone());
        let (decision, output) =
            autoscaler.forecast_and_decide(1, days(week * 7), &series, None, quota, 8);
        let label = match &decision {
            ScalingDecision::Hold => "hold".to_string(),
            ScalingDecision::ScaleUp {
                new_tenant_quota,
                split,
                new_partitions,
                ..
            } => {
                let s = if *split {
                    format!(" + split to {new_partitions} partitions")
                } else {
                    String::new()
                };
                let msg = format!("scale up -> {new_tenant_quota:.0}{s}");
                quota = *new_tenant_quota;
                msg
            }
            ScalingDecision::ScaleDown {
                new_tenant_quota, ..
            } => {
                let msg = format!("scale down -> {new_tenant_quota:.0}");
                quota = *new_tenant_quota;
                msg
            }
        };
        println!(
            "{week:>4} | {week_peak:>10.0} | {quota:>6.0} | {:>13.0} | {label}",
            output.peak
        );
        usage_level *= 1.06; // the tenant keeps growing
    }
    println!(
        "\nthrottled hours: {throttled_hours} (target 0); mean quota headroom {:.0}%",
        headroom_sum / samples as f64 * 100.0
    );
    println!("Algorithm 1 keeps the quota riding ~1/0.65 above the forecast peak, so");
    println!("growth never throttles while idle headroom stays bounded.");
}
