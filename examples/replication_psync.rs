//! Two OS processes forming a replica group over a real socket.
//!
//! ```text
//! cargo run --release --example replication_psync
//! ```
//!
//! The driver (no arguments) re-spawns this same binary twice:
//!
//! * `leader <dir>` — a RESP server leading a replica group, accepting
//!   `REPLCONF`/`PSYNC` follower connections on its port.
//! * `follower <dir> <leader-addr>` — a read-only RESP server whose store is
//!   kept in sync by pulling a checkpoint (`PSYNC ? -1` → `FULLRESYNC`) and
//!   then tailing the leader's WAL over the socket, acking `REPLCONF ACK`.
//!
//! The scenario then runs over raw RESP:
//!
//! 1. wait until the follower has attached (its connection satisfies
//!    `WAIT 1`),
//! 2. quorum-write through the leader — `+OK` means the follower's ack
//!    crossed the socket before the client saw the reply,
//! 3. read the same keys from the follower process,
//! 4. `kill -9` the leader; the follower keeps serving every acked write,
//!    and refuses writes with `-READONLY`.
//!
//! This is the §3.3 deployment shape: replicas on different machines, the
//! log shipped over the network, zero acked writes lost on leader death.

use abase::core::{ReplInfo, ReplicationControl, RespServer, TableEngine};
use abase::lavastore::DbConfig;
use abase::proto::RespValue;
use abase::replication::{FollowerPump, GroupConfig, ReplicaGroup, SocketFollower, WriteConcern};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("leader") => run_leader(&args[1]),
        Some("follower") => run_follower(&args[1], &args[2]),
        _ => run_driver(),
    }
}

// ---------------------------------------------------------------------------
// Child roles
// ---------------------------------------------------------------------------

fn run_leader(dir: &str) -> Result<(), Box<dyn std::error::Error>> {
    let group = ReplicaGroup::bootstrap(
        0,
        dir,
        &[1],
        GroupConfig::new(WriteConcern::Quorum, DbConfig::small_for_tests()),
    )?;
    let engine = Arc::new(TableEngine::from_db(group.leader_db()?));
    let group = Arc::new(group.into_mutex());
    let server = RespServer::bind(engine, "127.0.0.1:0")?
        .with_replication(group as Arc<dyn ReplicationControl>);
    println!("ADDR {}", server.local_addr()?);
    std::io::stdout().flush()?;
    server.run()?;
    Ok(())
}

fn run_follower(dir: &str, leader: &str) -> Result<(), Box<dyn std::error::Error>> {
    let mut follower = SocketFollower::connect(dir, DbConfig::small_for_tests(), leader, 2, 0)?;
    let engine = Arc::new(TableEngine::from_db(follower.db()));
    // Same wiring as `abase-server follow`: the pump thread owns the link,
    // so shared cells feed `INFO replication` (applied LSN, link status).
    let applied_lsn = Arc::new(AtomicU64::new(follower.last_seq()));
    let link_up = Arc::new(AtomicBool::new(true));
    let server = {
        let applied_lsn = Arc::clone(&applied_lsn);
        let link_up = Arc::clone(&link_up);
        let leader = leader.to_string();
        RespServer::bind(Arc::clone(&engine), "127.0.0.1:0")?
            .read_only()
            .with_repl_info(Arc::new(move || ReplInfo {
                role: "follower",
                last_lsn: applied_lsn.load(Ordering::Relaxed),
                leader_addr: Some(leader.clone()),
                link_status: if link_up.load(Ordering::Relaxed) {
                    "up"
                } else {
                    "down"
                },
                followers: Vec::new(),
            }))
    };
    println!("ADDR {}", server.local_addr()?);
    std::io::stdout().flush()?;
    std::thread::spawn(move || loop {
        match follower.pump() {
            Ok(FollowerPump::Resynced) => engine.swap_db(follower.db()),
            Ok(_) => {}
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
        applied_lsn.store(follower.last_seq(), Ordering::Relaxed);
        // The transport knows whether the socket is alive; pump results
        // don't (a dead link polls as "no records", same as an idle leader).
        link_up.store(follower.link_up(), Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(1));
    });
    server.run()?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

struct Resp(TcpStream);

impl Resp {
    fn connect(addr: &str) -> std::io::Result<Self> {
        Ok(Self(TcpStream::connect(addr)?))
    }

    fn cmd(&mut self, parts: &[&str]) -> Result<RespValue, Box<dyn std::error::Error>> {
        let mut out = format!("*{}\r\n", parts.len()).into_bytes();
        for p in parts {
            out.extend_from_slice(format!("${}\r\n{p}\r\n", p.len()).as_bytes());
        }
        self.0.write_all(&out)?;
        let mut buffer = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            if let Some((value, _)) = RespValue::parse(&buffer)? {
                return Ok(value);
            }
            let n = self.0.read(&mut chunk)?;
            if n == 0 {
                return Err("server closed the connection".into());
            }
            buffer.extend_from_slice(&chunk[..n]);
        }
    }
}

/// `INFO replication` as text.
fn info_text(client: &mut Resp) -> Result<String, Box<dyn std::error::Error>> {
    match client.cmd(&["INFO", "replication"])? {
        RespValue::Bulk(Some(b)) => Ok(String::from_utf8(b.to_vec())?),
        other => Err(format!("INFO returned {other:?}").into()),
    }
}

/// The value of a `key:value` INFO line.
fn info_field(info: &str, key: &str) -> Option<String> {
    info.lines()
        .find_map(|l| l.strip_prefix(&format!("{key}:")))
        .map(|v| v.trim_end().to_string())
}

fn spawn_role(role: &[&str]) -> Result<(Child, String), Box<dyn std::error::Error>> {
    let mut child = Command::new(std::env::current_exe()?)
        .args(role)
        .stdout(Stdio::piped())
        .spawn()?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines.next().ok_or("child exited before printing ADDR")??;
        if let Some(addr) = line.strip_prefix("ADDR ") {
            break addr.to_string();
        }
    };
    // Keep draining the child's stdout so it never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
    Ok((child, addr))
}

fn run_driver() -> Result<(), Box<dyn std::error::Error>> {
    let base = std::env::temp_dir().join(format!("abase-psync-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    std::fs::create_dir_all(&base)?;
    let leader_dir = base.join("leader");
    let follower_dir = base.join("follower");

    println!("== spawning the leader process");
    let (mut leader, leader_addr) = spawn_role(&["leader", leader_dir.to_str().unwrap()])?;
    println!("   leader RESP at {leader_addr}");

    println!("== spawning the follower process (PSYNC over the socket)");
    let (mut follower, follower_addr) =
        spawn_role(&["follower", follower_dir.to_str().unwrap(), &leader_addr])?;
    println!("   follower RESP at {follower_addr}");

    let mut client = Resp::connect(&leader_addr)?;
    // Until the follower's PSYNC lands, WAIT reports 0 connected followers.
    print!("== waiting for the follower to attach ");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let RespValue::Integer(n) = client.cmd(&["WAIT", "1", "100"])? {
            if n >= 1 {
                break;
            }
        }
        print!(".");
        std::io::stdout().flush()?;
        if Instant::now() > deadline {
            return Err("follower never attached".into());
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    println!(" attached");

    println!("== quorum writes through the leader (+OK ⇒ the follower's REPLCONF ACK crossed the socket)");
    for i in 0..50 {
        let reply = client.cmd(&["SET", &format!("user:{i}"), &format!("profile-{i}")])?;
        assert_eq!(reply, RespValue::ok(), "quorum write {i} failed: {reply:?}");
    }
    let acked = client.cmd(&["WAIT", "1", "2000"])?;
    assert_eq!(
        acked,
        RespValue::Integer(1),
        "WAIT did not see the follower"
    );
    println!("   50 writes quorum-acked, WAIT 1 -> 1");

    println!("== INFO replication on both processes");
    let leader_info = info_text(&mut client)?;
    assert_eq!(info_field(&leader_info, "role").as_deref(), Some("leader"));
    let leader_lsn: u64 = info_field(&leader_info, "last_applied_lsn")
        .ok_or("leader INFO lacks last_applied_lsn")?
        .parse()?;
    assert!(
        leader_lsn >= 50,
        "leader LSN {leader_lsn} below the 50 writes"
    );
    assert!(
        leader_info.contains("follower0:id=2,"),
        "leader INFO does not list the remote follower:\n{leader_info}"
    );
    println!("   leader: role=leader last_applied_lsn={leader_lsn}, lists follower id=2");

    let mut freader = Resp::connect(&follower_addr)?;
    let follower_info = info_text(&mut freader)?;
    assert_eq!(
        info_field(&follower_info, "role").as_deref(),
        Some("follower"),
        "follower INFO:\n{follower_info}"
    );
    assert_eq!(
        info_field(&follower_info, "leader_addr").as_deref(),
        Some(leader_addr.as_str())
    );
    assert_eq!(
        info_field(&follower_info, "link_status").as_deref(),
        Some("up")
    );
    let follower_lsn: u64 = info_field(&follower_info, "last_applied_lsn")
        .ok_or("follower INFO lacks last_applied_lsn")?
        .parse()?;
    assert!(follower_lsn > 0, "follower applied nothing");
    println!(
        "   follower: role=follower leader_addr={leader_addr} link=up last_applied_lsn={follower_lsn}"
    );

    println!("== reading the replicated keys from the follower process");
    for i in [0usize, 17, 49] {
        let reply = freader.cmd(&["GET", &format!("user:{i}")])?;
        assert_eq!(
            reply,
            RespValue::bulk(format!("profile-{i}")),
            "follower missing user:{i}"
        );
    }
    println!("   follower serves the quorum-acked writes");

    println!("== killing the leader process (SIGKILL)");
    leader.kill()?;
    leader.wait()?;
    // Every acked write survives on the follower, which keeps serving reads.
    for i in [0usize, 25, 49] {
        let reply = freader.cmd(&["GET", &format!("user:{i}")])?;
        assert_eq!(
            reply,
            RespValue::bulk(format!("profile-{i}")),
            "acked write user:{i} lost after leader death"
        );
    }
    println!("   follower still serves every acked write");
    // The pump notices the dead socket; INFO flips the link to `down`.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let info = info_text(&mut freader)?;
        if info_field(&info, "link_status").as_deref() == Some("down") {
            println!("   follower INFO reports link_status:down after leader death");
            break;
        }
        if Instant::now() > deadline {
            return Err(format!("link never reported down:\n{info}").into());
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let reply = freader.cmd(&["SET", "rogue", "write"])?;
    match reply {
        RespValue::Error(e) if e.starts_with("READONLY") => {
            println!("   follower refuses writes: {e}")
        }
        other => return Err(format!("expected READONLY, got {other:?}").into()),
    }

    follower.kill()?;
    follower.wait()?;
    std::fs::remove_dir_all(&base).ok();
    println!("== OK: two processes, one replica group, zero acked writes lost");
    Ok(())
}
