//! Hot-key survival: the dual-layer cache under a flash-crowd event.
//!
//! A social-media tenant's normal zipf traffic suddenly concentrates on a
//! handful of viral keys (the paper's "last mile" problem, §2.2/§4.4). The
//! proxy plane's AU-LRU + limited fan-out absorbs the hot keys before they
//! reach the data node, and active refresh keeps serving them across TTL
//! boundaries without a miss spike.
//!
//! Run with: `cargo run --release --example hotkey_cache`

use abase::cache::aulru::AuLruConfig;
use abase::core::proxy::{ProxyDecision, ProxyPlane, ProxyPlaneConfig};
use abase::util::clock::secs;
use abase::workload::{KeyspaceConfig, RequestGen};

fn main() {
    let mut plane = ProxyPlane::new(
        7,
        ProxyPlaneConfig {
            n_proxies: 16,
            n_groups: 4, // hot keys spread over N/n = 4 proxies each
            tenant_quota_ru: 1e9,
            cache: AuLruConfig {
                capacity_bytes: 8 << 20,
                ttl: secs(30),
                refresh_window: secs(3),
                hot_threshold: 8,
            },
            cache_enabled: true,
            quota_enabled: false,
        },
        0,
        7,
    );
    let mut gen = RequestGen::new(
        KeyspaceConfig {
            n_keys: 200_000,
            zipf_s: 0.9,
            read_ratio: 1.0,
            ..Default::default()
        },
        7,
    );

    let mut clock = 0u64;
    let phase = |label: &str,
                 plane: &mut ProxyPlane,
                 gen: &mut RequestGen,
                 seconds: u64,
                 qps: u64,
                 clock: &mut u64| {
        let (mut hits, mut forwards) = (0u64, 0u64);
        for _ in 0..seconds {
            for i in 0..qps {
                let now = *clock + i * (1_000_000 / qps);
                let spec = gen.next_request();
                match plane.submit(spec.key_rank as u64, false, now) {
                    ProxyDecision::CacheHit { .. } => hits += 1,
                    ProxyDecision::Forward { proxy } => {
                        forwards += 1;
                        plane.on_read_complete(
                            proxy,
                            spec.key_rank as u64,
                            spec.value_bytes,
                            false,
                            now,
                        );
                    }
                    ProxyDecision::Rejected { .. } => unreachable!(),
                }
            }
            // The proxy's refresh loop runs every second.
            let refreshes = plane.refresh_candidates(*clock);
            for (proxy, key) in refreshes {
                plane.complete_refresh(proxy, key, 1024, *clock);
            }
            *clock += 1_000_000;
        }
        let total = hits + forwards;
        let loads = plane.per_proxy_lookups();
        let busiest = *loads.iter().max().unwrap_or(&0);
        println!(
            "{label:<28} proxy hit {:>5.1}%  backend load {:>7}/s  busiest-proxy share {:>5.1}%",
            hits as f64 / total as f64 * 100.0,
            forwards / seconds,
            busiest as f64 / loads.iter().sum::<u64>().max(1) as f64 * 100.0
        );
    };

    println!("phase                        cache effectiveness");
    phase(
        "normal zipf traffic",
        &mut plane,
        &mut gen,
        20,
        20_000,
        &mut clock,
    );

    // Flash crowd: three viral keys take over 60 % of traffic.
    gen.set_skew(1.8);
    phase(
        "viral event (skew 1.8)",
        &mut plane,
        &mut gen,
        20,
        80_000,
        &mut clock,
    );

    // Long tail of the event: traffic still hot, TTLs start lapsing; active
    // refresh keeps the hit ratio from sawtoothing.
    phase(
        "sustained hot keys + TTLs",
        &mut plane,
        &mut gen,
        40,
        80_000,
        &mut clock,
    );

    let stats = plane.cache_stats();
    println!(
        "\ntotals: {} lookups, {} refreshes emitted, hit ratio {:.1}%",
        stats.lookups(),
        plane_refreshes(&plane),
        stats.hit_ratio() * 100.0
    );
    println!("The data node never sees the viral keys after the first fetch per proxy group.");
}

fn plane_refreshes(_plane: &ProxyPlane) -> &'static str {
    // Aggregate refresh counters are per-proxy internals; the cache_stats
    // insertion count includes them, so report qualitatively here.
    "active"
}
