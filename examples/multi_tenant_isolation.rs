//! Multi-tenant isolation: a noisy neighbour meets the full ABase stack.
//!
//! Three tenants share one DataNode. Tenant 3 bursts to 20× its normal
//! traffic mid-run; the hierarchical quotas (proxy + partition) and the
//! dual-layer WFQ keep tenants 1 and 2 at full throughput and flat latency.
//!
//! Run with: `cargo run --release --example multi_tenant_isolation`

use abase::core::cluster::{IsolationExperiment, TenantSpec};
use abase::core::node::{DataNodeConfig, DataNodeSim};
use abase::core::proxy::ProxyPlaneConfig;
use abase::workload::{KeyspaceConfig, TrafficShape};

fn tenant(id: u32, qps: f64, quota: f64) -> TenantSpec {
    TenantSpec {
        id,
        tenant_quota_ru: quota,
        partition: u64::from(id) * 100,
        partition_quota_ru: quota / 2.0,
        shape: TrafficShape::Steady(qps),
        keyspace: KeyspaceConfig {
            n_keys: 30_000,
            zipf_s: 0.95,
            read_ratio: 0.85,
            key_prefix: format!("t{id}"),
            ..Default::default()
        },
        proxy: ProxyPlaneConfig {
            n_proxies: 4,
            n_groups: 2,
            ..Default::default()
        },
    }
}

fn main() {
    let node = DataNodeSim::new(
        1,
        DataNodeConfig {
            cpu_ru_per_sec: 4_000.0,
            ..Default::default()
        },
    );
    let mut exp = IsolationExperiment::new(
        node,
        vec![
            tenant(1, 400.0, 1_200.0),
            tenant(2, 300.0, 1_200.0),
            tenant(3, 200.0, 800.0),
        ],
        42,
    );
    exp.set_minute_secs(5);

    println!("minute | t1 ok/err | t2 ok/err | t3 ok/err | worst p99 (ms)");
    let report = |points: &[abase::core::cluster::MinutePoint]| {
        let mut minutes: Vec<u64> = points.iter().map(|p| p.minute).collect();
        minutes.sort_unstable();
        minutes.dedup();
        for minute in minutes {
            let get = |t: u32| {
                points
                    .iter()
                    .find(|p| p.minute == minute && p.tenant == t)
                    .cloned()
                    .expect("point")
            };
            let (a, b, c) = (get(1), get(2), get(3));
            let worst = a.p99_latency_ms.max(b.p99_latency_ms).max(c.p99_latency_ms);
            println!(
                "{minute:>6} | {:>5.0}/{:<4.0}| {:>5.0}/{:<4.0}| {:>5.0}/{:<4.0}| {worst:.1}",
                a.success_qps, a.error_qps, b.success_qps, b.error_qps, c.success_qps, c.error_qps
            );
        }
    };

    println!("--- calm period ---");
    let pts = exp.run_minutes(3);
    report(&pts);

    println!("--- tenant 3 bursts to 4000 qps (20x, far over quota) ---");
    exp.set_shape(3, TrafficShape::Steady(4_000.0));
    let pts = exp.run_minutes(4);
    report(&pts);

    println!("--- burst ends ---");
    exp.set_shape(3, TrafficShape::Steady(200.0));
    let pts = exp.run_minutes(3);
    report(&pts);

    println!();
    println!("Expected shape: t1/t2 throughput and latency unchanged throughout;");
    println!("t3's excess rejected at its proxy quota (err column) without collateral damage.");
}
