//! Quickstart: a multi-tenant key-value store over the real storage engine.
//!
//! Demonstrates the paper's data model (§3.1) end to end: Redis-protocol
//! commands, tenant namespacing, TTLs against virtual time, hash tables, and
//! the LSM engine's flush/compaction lifecycle underneath.
//!
//! Run with: `cargo run --example quickstart`

use abase::core::engine::TableEngine;
use abase::lavastore::DbConfig;
use abase::proto::{Command, RespValue};
use abase::util::clock::secs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("abase-quickstart-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = DbConfig {
        memtable_bytes: 256 << 10, // small memtable so the example exercises compaction
        ..DbConfig::default()
    };
    let engine = TableEngine::open(&dir, config)?;
    println!("opened ABase table engine at {}", dir.display());

    // --- Two tenants write the same key: namespaces keep them apart. ---
    fn set(key: &str, value: &str) -> Command {
        Command::Set {
            key: bytes::Bytes::copy_from_slice(key.as_bytes()),
            value: bytes::Bytes::copy_from_slice(value.as_bytes()),
            ttl_secs: None,
        }
    }
    engine.execute(1, &set("profile:42", "tenant-one's data"), 0)?;
    engine.execute(2, &set("profile:42", "tenant-two's data"), 0)?;
    for tenant in [1u32, 2] {
        let out = engine.execute(
            tenant,
            &Command::Get {
                key: "profile:42".into(),
            },
            0,
        )?;
        println!("tenant {tenant} reads profile:42 -> {:?}", out.reply);
    }

    // --- TTLs: the advertisement workload's 3-hour expiry (Table 1). ---
    engine.execute(
        1,
        &Command::Set {
            key: "ad-join:event".into(),
            value: "impression-payload".into(),
            ttl_secs: Some(3 * 3600),
        },
        0,
    )?;
    let before = engine.execute(
        1,
        &Command::Get {
            key: "ad-join:event".into(),
        },
        secs(3 * 3600 - 1),
    )?;
    let after = engine.execute(
        1,
        &Command::Get {
            key: "ad-join:event".into(),
        },
        secs(3 * 3600 + 1),
    )?;
    println!(
        "ad payload 1s before TTL: {}, 1s after: {}",
        if matches!(before.reply, RespValue::Bulk(Some(_))) {
            "present"
        } else {
            "gone"
        },
        if matches!(after.reply, RespValue::Bulk(Some(_))) {
            "present"
        } else {
            "gone"
        },
    );

    // --- Hash commands: the complex reads of §4.1. ---
    engine.execute(
        1,
        &Command::HSet {
            key: "video:1001".into(),
            pairs: vec![
                ("title".into(), "cat jumps".into()),
                ("likes".into(), "1024".into()),
                ("author".into(), "u/whiskers".into()),
            ],
        },
        0,
    )?;
    let hlen = engine.execute(
        1,
        &Command::HLen {
            key: "video:1001".into(),
        },
        0,
    )?;
    let all = engine.execute(
        1,
        &Command::HGetAll {
            key: "video:1001".into(),
        },
        0,
    )?;
    println!(
        "video:1001 has {:?} fields; HGETALL returned {} bytes",
        hlen.reply, all.bytes_returned
    );

    // --- Push the engine through flush + compaction and read back. ---
    for i in 0..20_000u32 {
        engine.execute(1, &set(&format!("bulk:{i:06}"), &format!("value-{i}")), 0)?;
    }
    engine.db().flush()?;
    let compactions = engine.db().compact_to_quiescence(0)?;
    let check = engine.execute(
        1,
        &Command::Get {
            key: "bulk:013337".into(),
        },
        0,
    )?;
    println!(
        "after {} compaction rounds: bulk:013337 -> {:?} (cost {} block I/Os)",
        compactions, check.reply, check.io_ops
    );
    let stats = engine.db().stats();
    println!(
        "engine stats: {} puts, {} gets, {} flushes, {} compactions, {} SST bytes written",
        stats.puts, stats.gets, stats.flushes, stats.compactions, stats.sst_bytes_written
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
