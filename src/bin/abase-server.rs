//! Standalone ABase node: a RESP2 server over the LSM engine.
//!
//! Usage: `cargo run --release --bin abase-server -- [addr] [data-dir]`
//! (defaults: 127.0.0.1:7379, ./abase-data). Connect with any Redis client;
//! `AUTH <tenant-id>` selects the tenant namespace.

use abase::core::{RespServer, TableEngine};
use abase::lavastore::DbConfig;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:7379".to_string());
    let dir = args.next().unwrap_or_else(|| "./abase-data".to_string());
    let engine = Arc::new(TableEngine::open(&dir, DbConfig::default())?);
    let server = RespServer::bind(Arc::clone(&engine), &addr)?;
    println!(
        "abase-server listening on {} (data in {dir})",
        server.local_addr()?
    );
    // Drive virtual time from the wall clock (microseconds since start), and
    // flush the WAL to the OS on the same cadence: appends sit in a buffered
    // writer, so without this a SIGKILL could lose an unbounded number of
    // acknowledged writes. This bounds the loss window to one tick (fsync
    // per append is the `sync_wal` config for machines that need zero loss).
    let clock = server.clock();
    let started = std::time::Instant::now();
    std::thread::spawn(move || loop {
        clock.store(started.elapsed().as_micros() as u64, Ordering::Relaxed);
        let _ = engine.db().flush_wal();
        std::thread::sleep(std::time::Duration::from_millis(100));
    });
    server.run()?;
    Ok(())
}
