//! Standalone ABase node: a RESP2 server over the LSM engine.
//!
//! Usage: `cargo run --release --bin abase-server -- [addr] [data-dir] [mode]`
//! (defaults: 127.0.0.1:7379, ./abase-data, plain). Connect with any Redis
//! client; `AUTH <tenant-id>` selects the tenant namespace.
//!
//! The third argument selects the node's replication role:
//!
//! * *(absent)* or `1` — plain unreplicated node.
//! * `<n>` (n > 1) — front a **local** WAL-shipping replica group of `n`
//!   replicas: writes commit under the group's write concern, `WAIT` fences
//!   on follower acks, `CONSISTENCY eventual|readyourwrites` routes GETs to
//!   follower replicas.
//! * `leader` — lead a **cross-process** replica group: a single local
//!   replica that accepts `REPLCONF`/`PSYNC` follower connections on the
//!   RESP port. Quorum spans this process and every registered follower.
//! * `follow <leader-addr> [replica-id]` — run as a socket follower of the
//!   leader at `leader-addr`: pull a checkpoint (`PSYNC`), tail its WAL over
//!   the socket, ack via `REPLCONF ACK`, and serve **read-only** RESP
//!   traffic from the replicated store. The optional positional
//!   `replica-id` (default 2) names this follower in the leader's
//!   accounting.
//!
//! Two terminals make a replica group:
//!
//! ```text
//! abase-server 127.0.0.1:7379 ./leader-data leader
//! abase-server 127.0.0.1:7380 ./follower-data follow 127.0.0.1:7379
//! ```

use abase::core::{ReplInfo, ReplicationControl, RespServer, TableEngine};
use abase::lavastore::DbConfig;
use abase::replication::{FollowerPump, GroupConfig, ReplicaGroup, SocketFollower, WriteConcern};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The event-loop front end is fd-bound, not thread-bound: lift
    // RLIMIT_NOFILE toward the hard cap up front so a 50k-connection tier
    // doesn't die on EMFILE (see TESTING.md on raising the hard cap itself).
    if let Ok(limit) = abase::util::poller::raise_nofile_limit(1 << 20) {
        if limit < 65_536 {
            eprintln!("abase-server: RLIMIT_NOFILE capped at {limit}; large connection tiers need a raised hard cap");
        }
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = args
        .first()
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7379".to_string());
    let dir = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "./abase-data".to_string());
    let mode = args.get(2).map(String::as_str).unwrap_or("1");
    match mode {
        "follow" => {
            let leader = args
                .get(3)
                .cloned()
                .ok_or("follow mode needs the leader address: ... follow <addr>")?;
            let replica_id: u32 = args.get(4).map(|r| r.parse()).transpose()?.unwrap_or(2);
            run_follower(&addr, &dir, &leader, replica_id)
        }
        "leader" => run_replicated(&addr, &dir, 1, true),
        n => {
            let replicas: u32 = n.parse()?;
            if replicas > 1 {
                run_replicated(&addr, &dir, replicas, false)
            } else {
                run_plain(&addr, &dir)
            }
        }
    }
}

/// Apply `ABASE_SLOWLOG_MICROS` (capture threshold in µs; `0` logs every
/// command, negative disables) to a freshly bound server's SLOWLOG.
fn apply_slowlog_env(server: &RespServer) {
    if let Some(micros) = std::env::var("ABASE_SLOWLOG_MICROS")
        .ok()
        .and_then(|v| v.parse::<i64>().ok())
    {
        server.slowlog().set_threshold_micros(micros);
    }
}

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Engine configuration from the environment: `ABASE_BLOCK_CACHE_BYTES`
/// sizes the shared data-block cache (0 disables it; default ~64 MiB).
fn db_config_from_env() -> DbConfig {
    let mut config = DbConfig::default();
    if let Some(bytes) = env_parse::<usize>("ABASE_BLOCK_CACHE_BYTES") {
        config.block_cache_bytes = bytes;
    }
    config
}

/// Front-end tuning from the environment: `ABASE_IO_THREADS` (event-loop
/// worker count), `ABASE_MAX_CLIENTS` (connection cap), and
/// `ABASE_IDLE_TIMEOUT_SECS` (idle-connection reaper; 0 disables).
fn apply_front_end_env(mut server: RespServer) -> RespServer {
    if let Some(workers) = env_parse::<usize>("ABASE_IO_THREADS") {
        server = server.io_threads(workers);
    }
    if let Some(cap) = env_parse::<usize>("ABASE_MAX_CLIENTS") {
        server = server.max_clients(cap);
    }
    if let Some(secs) = env_parse::<u64>("ABASE_IDLE_TIMEOUT_SECS") {
        if secs > 0 {
            server = server.idle_timeout(std::time::Duration::from_secs(secs));
        }
    }
    server
}

fn run_plain(addr: &str, dir: &str) -> Result<(), Box<dyn std::error::Error>> {
    let engine = Arc::new(TableEngine::open(dir, db_config_from_env())?);
    let server = apply_front_end_env(RespServer::bind(Arc::clone(&engine), addr)?);
    apply_slowlog_env(&server);
    println!(
        "abase-server listening on {} (data in {dir}, unreplicated)",
        server.local_addr()?
    );
    spawn_clock(server.clock(), move || {
        let _ = engine.db().flush_wal();
    });
    server.run()?;
    Ok(())
}

/// A replica-group leader: `local_replicas` in-process members, plus — when
/// `accept_remote` — `PSYNC` followers from other processes.
fn run_replicated(
    addr: &str,
    dir: &str,
    local_replicas: u32,
    accept_remote: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    let ids: Vec<u32> = (1..=local_replicas).collect();
    let group = ReplicaGroup::bootstrap(
        0,
        dir,
        &ids,
        GroupConfig::new(WriteConcern::Quorum, db_config_from_env()),
    )?;
    let engine = Arc::new(TableEngine::from_db(group.leader_db()?));
    let group = Arc::new(group.into_mutex());
    let server = apply_front_end_env(
        RespServer::bind(Arc::clone(&engine), addr)?
            .with_replication(Arc::clone(&group) as Arc<dyn ReplicationControl>),
    );
    apply_slowlog_env(&server);
    println!(
        "abase-server listening on {} (data in {dir}, {} local replica(s){})",
        server.local_addr()?,
        local_replicas,
        if accept_remote {
            ", accepting PSYNC followers"
        } else {
            ""
        }
    );
    // Drive virtual time from the wall clock (microseconds since start), and
    // flush the WAL to the OS on the same cadence: appends sit in a buffered
    // writer, so without this a SIGKILL could lose an unbounded number of
    // acknowledged writes. This bounds the loss window to one tick (fsync
    // per append is the `sync_wal` config for machines that need zero loss).
    // The same cadence pumps local followers, so `CONSISTENCY eventual`
    // reads converge without a client-issued WAIT; remote followers are
    // pumped by their own connection threads.
    spawn_clock(server.clock(), move || {
        let _ = engine.db().flush_wal();
        let _ = group.lock().tick();
    });
    server.run()?;
    Ok(())
}

/// A socket follower: read-only RESP server over a store kept in sync by
/// pumping the leader's PSYNC stream.
fn run_follower(
    addr: &str,
    dir: &str,
    leader: &str,
    replica_id: u32,
) -> Result<(), Box<dyn std::error::Error>> {
    let listening_port: u16 = addr
        .rsplit(':')
        .next()
        .and_then(|p| p.parse().ok())
        .unwrap_or(0);
    let mut follower = SocketFollower::connect(
        dir,
        db_config_from_env(),
        leader,
        replica_id,
        listening_port,
    )?;
    let engine = Arc::new(TableEngine::from_db(follower.db()));
    // The pump loop owns the link the server cannot see; these shared cells
    // feed `INFO replication` on the follower (role, applied LSN, link
    // status) so it is no longer blind about its own replication state.
    let applied_lsn = Arc::new(AtomicU64::new(follower.last_seq()));
    let link_up = Arc::new(AtomicBool::new(true));
    let server = {
        let applied_lsn = Arc::clone(&applied_lsn);
        let link_up = Arc::clone(&link_up);
        let leader = leader.to_string();
        apply_front_end_env(RespServer::bind(Arc::clone(&engine), addr)?)
            .read_only()
            .with_repl_info(Arc::new(move || ReplInfo {
                role: "follower",
                last_lsn: applied_lsn.load(Ordering::Relaxed),
                leader_addr: Some(leader.clone()),
                link_status: if link_up.load(Ordering::Relaxed) {
                    "up"
                } else {
                    "down"
                },
                followers: Vec::new(),
            }))
    };
    apply_slowlog_env(&server);
    println!(
        "abase-server listening on {} (data in {dir}, following {leader} as replica {replica_id}, read-only)",
        server.local_addr()?
    );
    spawn_clock(server.clock(), || {});
    // The pump runs on its own fast cadence — commit latency on the leader
    // is bounded by how quickly this loop acks, not by the 100 ms clock.
    std::thread::spawn(move || loop {
        match follower.pump() {
            // A full resync replaced the store wholesale: the serving engine
            // switches to the fresh handle.
            Ok(FollowerPump::Resynced) => engine.swap_db(follower.db()),
            Ok(_) => {}
            Err(e) => {
                eprintln!("follower pump: {e}");
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
        applied_lsn.store(follower.last_seq(), Ordering::Relaxed);
        // The transport tracks socket liveness; pump results can't (a dead
        // link polls as "no records", indistinguishable from an idle
        // leader), so link_status comes from the transport.
        link_up.store(follower.link_up(), Ordering::Relaxed);
        std::thread::sleep(std::time::Duration::from_millis(2));
    });
    server.run()?;
    Ok(())
}

/// The 100 ms housekeeping tick every mode shares: advance the virtual
/// clock, then run the mode's own upkeep (WAL flush, group tick, or
/// follower pump).
fn spawn_clock(
    clock: Arc<std::sync::atomic::AtomicU64>,
    mut upkeep: impl FnMut() + Send + 'static,
) {
    let started = std::time::Instant::now();
    std::thread::spawn(move || loop {
        clock.store(started.elapsed().as_micros() as u64, Ordering::Relaxed);
        upkeep();
        std::thread::sleep(std::time::Duration::from_millis(100));
    });
}
