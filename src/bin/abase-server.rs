//! Standalone ABase node: a RESP2 server over the LSM engine.
//!
//! Usage: `cargo run --release --bin abase-server -- [addr] [data-dir] [replicas]`
//! (defaults: 127.0.0.1:7379, ./abase-data, 1). Connect with any Redis
//! client; `AUTH <tenant-id>` selects the tenant namespace.
//!
//! With `replicas > 1` the node fronts a local WAL-shipping replica group:
//! writes commit under the group's write concern, `WAIT` fences on follower
//! acks, and `CONSISTENCY eventual|readyourwrites` routes the connection's
//! GETs to follower replicas (LSN-fenced for `readyourwrites`).

use abase::core::{ReplicationControl, RespServer, TableEngine};
use abase::lavastore::DbConfig;
use abase::replication::{GroupConfig, ReplicaGroup, WriteConcern};
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:7379".to_string());
    let dir = args.next().unwrap_or_else(|| "./abase-data".to_string());
    let replicas: u32 = args.next().map(|r| r.parse()).transpose()?.unwrap_or(1);
    let (engine, group) = if replicas > 1 {
        let ids: Vec<u32> = (1..=replicas).collect();
        let group = ReplicaGroup::bootstrap(
            0,
            &dir,
            &ids,
            GroupConfig::new(WriteConcern::Quorum, DbConfig::default()),
        )?;
        let engine = Arc::new(TableEngine::from_db(group.leader_db()?));
        (engine, Some(Arc::new(Mutex::new(group))))
    } else {
        (
            Arc::new(TableEngine::open(&dir, DbConfig::default())?),
            None,
        )
    };
    let mut server = RespServer::bind(Arc::clone(&engine), &addr)?;
    if let Some(group) = &group {
        server = server.with_replication(Arc::clone(group) as Arc<dyn ReplicationControl>);
    }
    println!(
        "abase-server listening on {} (data in {dir}, {replicas} replica(s))",
        server.local_addr()?
    );
    // Drive virtual time from the wall clock (microseconds since start), and
    // flush the WAL to the OS on the same cadence: appends sit in a buffered
    // writer, so without this a SIGKILL could lose an unbounded number of
    // acknowledged writes. This bounds the loss window to one tick (fsync
    // per append is the `sync_wal` config for machines that need zero loss).
    // With a replica group attached the same cadence pumps the followers, so
    // `CONSISTENCY eventual` reads converge without a client-issued WAIT.
    let clock = server.clock();
    let started = std::time::Instant::now();
    std::thread::spawn(move || loop {
        clock.store(started.elapsed().as_micros() as u64, Ordering::Relaxed);
        let _ = engine.db().flush_wal();
        if let Some(group) = &group {
            let _ = group.lock().tick();
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    });
    server.run()?;
    Ok(())
}
