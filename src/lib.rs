//! # ABase
//!
//! A from-scratch Rust reproduction of **"ABase: the Multi-Tenant NoSQL
//! Serverless Database for Diverse and Dynamic Workloads in Large-scale Cloud
//! Environments"** (SIGMOD-Companion 2025, ByteDance).
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `abase-core` | tenants, DataNodes, proxy plane, meta server, cluster simulator |
//! | [`lavastore`] | `abase-lavastore` | the LSM storage engine substrate |
//! | [`replication`] | `abase-replication` | WAL-shipping replica groups: write concerns, read consistency levels, failover, parallel reconstruction |
//! | [`cache`] | `abase-cache` | LRU, SA-LRU (node), AU-LRU (proxy) |
//! | [`wfq`] | `abase-wfq` | dual-layer weighted fair queueing |
//! | [`quota`] | `abase-quota` | cache-aware RUs, token buckets, admission |
//! | [`forecast`] | `abase-forecast` | the §5.2 ensemble workload forecaster |
//! | [`scheduler`] | `abase-scheduler` | Algorithm-1 autoscaler, Algorithm-2 rescheduler |
//! | [`proto`] | `abase-proto` | RESP2 protocol + command model |
//! | [`workload`] | `abase-workload` | Table-1 profiles, Zipf streams, scenario generators |
//! | [`util`] | `abase-util` | virtual clock, statistics, time series |
//!
//! ## Quickstart
//!
//! ```
//! use abase::core::engine::TableEngine;
//! use abase::lavastore::DbConfig;
//! use abase::proto::Command;
//!
//! let dir = std::env::temp_dir().join(format!("abase-doc-{}", std::process::id()));
//! let engine = TableEngine::open(&dir, DbConfig::small_for_tests()).unwrap();
//! let set = Command::Set { key: "greeting".into(), value: "hello".into(), ttl_secs: None };
//! engine.execute(1, &set, 0).unwrap();
//! let get = Command::Get { key: "greeting".into() };
//! let out = engine.execute(1, &get, 0).unwrap();
//! assert_eq!(out.reply, abase::proto::RespValue::bulk("hello"));
//! drop(engine);
//! std::fs::remove_dir_all(&dir).ok();
//! ```

#![deny(missing_docs)]

pub use abase_cache as cache;
pub use abase_core as core;
pub use abase_forecast as forecast;
pub use abase_lavastore as lavastore;
pub use abase_obs as obs;
pub use abase_proto as proto;
pub use abase_quota as quota;
pub use abase_replication as replication;
pub use abase_scheduler as scheduler;
pub use abase_util as util;
pub use abase_wfq as wfq;
pub use abase_workload as workload;
