//! Offline stand-in for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! The build environment has no crates.io access, so this shim keeps the
//! workspace's `benches/` compiling and running with the same source: it
//! implements `Criterion`, `benchmark_group`, `Bencher::{iter, iter_batched}`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros. Instead
//! of criterion's statistical machinery it runs a short calibrated loop and
//! prints mean ns/iter — enough to compare hot paths run-over-run.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized (accepted for API compatibility; the shim
/// treats all variants the same).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup payloads.
    SmallInput,
    /// Large per-iteration setup payloads.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Measurement settings shared by a run.
#[derive(Debug, Clone)]
struct Settings {
    /// Target measurement duration per benchmark.
    measure_for: Duration,
    /// Hard cap on measured iterations.
    max_iters: u64,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            measure_for: Duration::from_millis(200),
            max_iters: 1_000_000,
        }
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            settings: &self.settings,
            group: name.to_string(),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.settings, name, &mut f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    settings: &'a Settings,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility (the shim's loop is already short).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.group);
        run_one(self.settings, &full, &mut f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(settings: &Settings, name: &str, f: &mut F) {
    let mut bencher = Bencher {
        settings: settings.clone(),
        report: None,
    };
    f(&mut bencher);
    match bencher.report {
        Some((iters, elapsed)) => {
            let ns = elapsed.as_nanos() as f64 / iters.max(1) as f64;
            println!("  {name:<40} {ns:>12.1} ns/iter ({iters} iters)");
        }
        None => println!("  {name:<40} (no measurement)"),
    }
}

/// Passed to each benchmark closure; runs and times the measured routine.
pub struct Bencher {
    settings: Settings,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    /// Measure `routine` in a calibrated loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up briefly, then size the measured loop from the warm-up rate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(20) && warm_iters < 10_000 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let target = (self.settings.measure_for.as_secs_f64() / per_iter.max(1e-9)) as u64;
        let iters = target.clamp(1, self.settings.max_iters);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.report = Some((iters, start.elapsed()));
    }

    /// Measure `routine` over inputs produced by `setup` (setup time excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.settings.measure_for && iters < 1_000 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.report = Some((iters, total));
    }
}

/// Define a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (e.g. --bench,
            // --test); none change behaviour here, but --list must reply.
            if std::env::args().any(|a| a == "--list") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_and_batched() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        g.finish();
    }
}
