//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment has no crates.io access, so this shim implements the
//! strategy/macro subset the workspace's property tests use: range and tuple
//! strategies, `prop::collection::vec`, character-class string strategies,
//! `any`, `Just`, `prop_map`, `prop_recursive`, `prop_oneof!`, and the
//! `proptest!` / `prop_assert!` macros. Each property runs a fixed number of
//! randomized cases (default 64, `PROPTEST_CASES` overrides); failing inputs
//! are printed but **not shrunk** — swap in the real crate for shrinking.

#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// The RNG driving case generation.
pub type TestRng = StdRng;

/// Number of cases per property (override with `PROPTEST_CASES`).
pub fn num_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A fresh deterministic-by-default runner RNG. Set `PROPTEST_SEED` to pin.
pub fn test_rng() -> TestRng {
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xAB453);
    StdRng::seed_from_u64(seed)
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `f` receives the strategy built so far and
    /// returns a branch strategy over it; up to `depth` nested levels.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let branch = f(cur.clone()).boxed();
            let base = leaf.clone();
            cur = BoxedStrategy::new(move |rng| {
                if rng.gen_bool(0.5) {
                    base.sample(rng)
                } else {
                    branch.sample(rng)
                }
            });
        }
        cur
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let this = self;
        BoxedStrategy::new(move |rng| this.sample(rng))
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<T> {
    sampler: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            sampler: Arc::clone(&self.sampler),
        }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wrap a sampling function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        Self {
            sampler: Arc::new(f),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sampler)(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-domain strategy for primitive types (shim's `any::<T>()`).
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Marker strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types `any::<T>()` can generate.
pub trait ArbitraryValue {
    /// Draw a value from the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>() * 2e6 - 1e6
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// String strategy from a simplified character-class pattern like
/// `"[a-zA-Z0-9 ]{0,20}"`. Unsupported patterns fall back to short
/// alphanumeric strings.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_class_pattern(self).unwrap_or_else(|| {
            (
                ('a'..='z').chain('A'..='Z').chain('0'..='9').collect(),
                0,
                20,
            )
        });
        let len = rng.gen_range(min..max + 1);
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

/// Parse `[class]{min,max}` into (alphabet, min, max).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let quant = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match quant.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = quant.trim().parse().ok()?;
            (n, n)
        }
    };
    let mut chars = Vec::new();
    let mut it = class.chars().peekable();
    while let Some(c) = it.next() {
        if it.peek() == Some(&'-') {
            let mut look = it.clone();
            look.next(); // consume '-'
            if let Some(&hi) = look.peek() {
                it = look;
                it.next();
                for v in c as u32..=hi as u32 {
                    if let Some(ch) = char::from_u32(v) {
                        chars.push(ch);
                    }
                }
                continue;
            }
        }
        chars.push(c);
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, min, max))
}

/// Namespaced strategies, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for vectors whose length is drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, Strategy,
    };
}

/// Choose uniformly among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options = vec![$($crate::Strategy::boxed($strategy)),+];
        $crate::BoxedStrategy::new(move |rng| {
            use rand::Rng;
            let idx = rng.gen_range(0..options.len());
            $crate::Strategy::sample(&options[idx], rng)
        })
    }};
}

/// Assertion inside a property (no shrinking; behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests: each function runs `num_cases()` randomized cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_rng();
                for _case in 0..$crate::num_cases() {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    $body
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn class_pattern_parsing() {
        let (chars, min, max) = super::parse_class_pattern("[a-c9 ]{0,20}").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c', '9', ' ']);
        assert_eq!((min, max), (0, 20));
    }

    proptest! {
        #[test]
        fn ranges_and_tuples(pair in (0u8..3, 1usize..10), v in prop::collection::vec(0u32..5, 1..4)) {
            prop_assert!(pair.0 < 3);
            prop_assert!((1..10).contains(&pair.1));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn strings_respect_class(s in "[ab]{1,3}") {
            prop_assert!((1..=3).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u8), (5u8..7).prop_map(|x| x)]) {
            prop_assert!(v == 1 || v == 5 || v == 6);
        }
    }
}
