//! Offline stand-in for the [`parking_lot`](https://docs.rs/parking_lot)
//! crate, backed by `std::sync` primitives.
//!
//! The build environment has no crates.io access, so this shim provides the
//! lock API subset the workspace uses: `Mutex::lock`, `RwLock::read`/`write`
//! returning guards directly (no `Result`), and `Condvar`. Poisoning is
//! swallowed (a poisoned std lock yields its inner guard), matching
//! parking_lot's no-poisoning semantics.

#![deny(missing_docs)]
// The workspace-wide clippy config bans std::sync lock types everywhere
// else; this shim is their one allowed home.
#![allow(clippy::disallowed_types)]

use std::sync;
use std::time::Duration;

/// Guard types re-exported so signatures can name them.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Block until notified, reacquiring the guard.
    pub fn wait<'a, T>(&self, guard: &mut MutexGuard<'a, T>) {
        // Safety dance: std's API consumes the guard; emulate parking_lot's
        // in-place wait by taking and restoring it.
        take_mut(guard, |g| self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until notified or `timeout` elapses; returns true on timeout.
    pub fn wait_for<'a, T>(&self, guard: &mut MutexGuard<'a, T>, timeout: Duration) -> bool {
        let mut timed_out = false;
        take_mut(guard, |g| {
            let (g, r) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = r.timed_out();
            g
        });
        timed_out
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Replace `*slot` through a consuming closure (aborts on panic mid-swap).
fn take_mut<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    // SAFETY: `slot` is exclusively borrowed, so nothing can observe the
    // moment the value is moved out. Every exit path restores a valid value
    // before returning: `f` panicking aborts the process instead of
    // unwinding past the hole.
    unsafe {
        let old = std::ptr::read(slot);
        let new = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(old)))
            .unwrap_or_else(|_| std::process::abort());
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut guard = m.lock();
            while !*guard {
                cv.wait(&mut guard);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
