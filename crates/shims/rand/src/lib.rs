//! Offline stand-in for the [`rand`](https://docs.rs/rand) crate (0.8 API).
//!
//! The build environment has no crates.io access, so this shim provides the
//! API subset the workspace uses: `Rng::{gen, gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64`, and `rngs::StdRng`. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic, fast, and easily
//! good enough for workload simulation (not cryptographic).

#![deny(missing_docs)]

use std::ops::Range;

/// Types samplable uniformly from the generator's full output domain
/// (the shim's equivalent of `Standard: Distribution<T>`).
pub trait StandardSample {
    /// Draw one value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for std::ops::RangeInclusive<f32> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty range");
        lo + f32::sample_standard(rng) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Lemire-style widening multiply avoids modulo bias for the
                // span sizes simulations use.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The random-number-generator trait (the `rand::Rng` subset used here).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draw a value of type `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        f64::sample_standard(self) < p
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256++ (Blackman & Vigna), seeded via
    /// SplitMix64. Deterministic for a given seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot emit
            // four zeros in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

/// A generator seeded from the OS (here: process id + time), for callers that
/// use `thread_rng`-style ambient randomness.
pub fn thread_rng() -> StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    StdRng::seed_from_u64(nanos ^ (std::process::id() as u64) << 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 20];
        for _ in 0..10_000 {
            let v = rng.gen_range(0..20);
            assert!((0..20).contains(&v));
            seen[v as usize] = true;
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "some bucket never sampled");
    }

    #[test]
    fn gen_bool_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (20_000..30_000).contains(&hits),
            "p=0.25 gave {hits}/100000"
        );
    }

    #[test]
    fn mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
