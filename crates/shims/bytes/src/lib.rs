//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of the `bytes` API it actually uses: [`Bytes`], a
//! cheaply-cloneable immutable byte string. Swap this path dependency for the
//! real crate when a registry is available — the API subset is call-compatible.

#![deny(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable, immutable slice of bytes (reference-counted).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty byte string.
    pub fn new() -> Self {
        Self {
            data: Arc::from(&[][..]),
        }
    }

    /// Copy `src` into a fresh `Bytes`.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Self {
            data: Arc::from(src),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// A new `Bytes` holding `self[begin..end]` (copying; the real crate
    /// shares the buffer, which callers cannot observe through this API).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Self::copy_from_slice(&self.data[start..end])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == &other.data[..]
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}
impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        &self.data[..] == other.as_bytes()
    }
}
impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        &self.data[..] == other.as_bytes()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}
impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}
impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Self::copy_from_slice(s.as_bytes())
    }
}
impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::copy_from_slice(s)
    }
}
impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Self {
        Self::copy_from_slice(s)
    }
}
impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Self { data: Arc::from(v) }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from("hello");
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(a, b);
        assert_eq!(a, &b"hello"[..]);
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn deref_and_indexing() {
        let a = Bytes::from("prefix:tail");
        assert_eq!(&a[7..], b"tail");
        assert_eq!(a.slice(7..), Bytes::from("tail"));
    }

    #[test]
    #[allow(clippy::cmp_owned)]
    fn ordering() {
        assert!(Bytes::from("a") < Bytes::from("b"));
        assert!(Bytes::from("ab") > Bytes::from("a"));
    }

    #[test]
    fn cheap_clone_shares_storage() {
        let a = Bytes::from(vec![0u8; 1024]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
    }
}
