//! Ranked lock wrappers: a runtime lock-ordering (deadlock) checker.
//!
//! Every long-lived lock in the workspace is wrapped in a [`RankedMutex`] or
//! [`RankedRwLock`] carrying a declared [`Rank`]. Ranks form a total order
//! over the *acquisition* order the codebase promises: a thread may only
//! acquire a lock whose rank is **strictly greater** than the highest rank it
//! already holds (reads may also re-acquire at the *same* rank, so e.g.
//! `Db::scan_prefix` can hold every stripe's read lock at once). Any
//! acquisition that violates the declared partial order panics immediately
//! with the full held-lock stack and the acquiring call site — turning the
//! entire test suite plus the chaos harness into a deadlock detector that
//! fires on the *first* inversion, not on the unlucky interleaving.
//!
//! The checker runs under `cfg(debug_assertions)` (every `cargo test`) or the
//! `lock-order-check` feature (release CI); otherwise acquisition is a plain
//! lock with zero bookkeeping.
//!
//! # The rank table
//!
//! Declared in [`rank`], lowest (outermost) first. A lock's rank documents
//! where it sits in the layered acquisition order that previously lived only
//! in comments:
//!
//! | rank | lock | layer |
//! |------|------|-------|
//! | 100  | [`rank::EVENT_WAKERS`] | event-loop shutdown waker registry |
//! | 110  | [`rank::EVENT_INJECT`] | event-loop per-worker connection mailbox |
//! | 200  | [`rank::REPLICA_GROUP`] | `ReplicaGroup` (held across follower pumps into dbs) |
//! | 250  | [`rank::ENGINE_DB`] | `TableEngine`'s swappable `Arc<Db>` handle |
//! | 300  | [`rank::LAVASTORE_STRIPE`] | per-stripe memtable + LSM view |
//! | 310  | [`rank::LAVASTORE_SHARED`] | cross-stripe manifest / WAL bookkeeping |
//! | 320  | [`rank::WAL_STATE`] | group-commit WAL buffer + LSN allocator |
//! | 330  | [`rank::APPLY_PENDING`] | out-of-order apply-tracker park heap |
//! | 400  | [`rank::CACHE_SHARD`] | block-cache SA-LRU shard |
//! | 500  | [`rank::OBS_FAMILY`] | labelled-metric member interning |
//! | 510  | [`rank::OBS_REGISTRY`] | global metric registration map |
//! | 520  | [`rank::OBS_SLOWLOG`] | slowlog ring |
//! | 600  | [`rank::FAILPOINT_RULES`] | fail-point rule table |
//! | 610  | [`rank::FAILPOINT_FIRED`] | fail-point fired counters |
//!
//! Innermost (highest) ranks belong to locks that may be taken from *any*
//! layer — metrics registration and fail-point checks happen while stripe,
//! shared, and WAL locks are held, so they must outrank all of them.

use parking_lot as pl;
use std::cell::RefCell;
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Whether acquisitions are checked in this build. `debug_assertions` covers
/// every `cargo test`; the `lock-order-check` feature arms release builds
/// (the CI `lock-order` job and chaos sweeps).
pub const CHECK_ENABLED: bool = cfg!(any(debug_assertions, feature = "lock-order-check"));

/// A lock's position in the global acquisition order. Lower ranks are
/// outermost: a thread holding rank *r* may only block on ranks `> r`
/// (or re-acquire `== r` for shared reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Rank {
    value: u16,
    name: &'static str,
}

impl Rank {
    /// Declare a rank. Prefer the constants in [`rank`]; new subsystems add
    /// a constant there (and a row to the table above) rather than inventing
    /// ad-hoc values at call sites.
    pub const fn new(value: u16, name: &'static str) -> Self {
        Self { value, name }
    }

    /// Numeric position in the order.
    pub const fn value(self) -> u16 {
        self.value
    }

    /// Human-readable lock-class name, used in violation reports.
    pub const fn name(self) -> &'static str {
        self.name
    }
}

/// The workspace rank table (see the module docs for the layer map).
pub mod rank {
    use super::Rank;

    /// Event-loop shutdown waker registry (`Shutdown::wakers`).
    pub const EVENT_WAKERS: Rank = Rank::new(100, "event_loop.wakers");
    /// Event-loop per-worker cross-thread connection mailbox.
    pub const EVENT_INJECT: Rank = Rank::new(110, "event_loop.inject");
    /// `ReplicaGroup`: held while pumping followers into their stores, so it
    /// must sit outside every storage-engine lock.
    pub const REPLICA_GROUP: Rank = Rank::new(200, "replication.group");
    /// `TableEngine`'s swappable `Arc<Db>` handle.
    pub const ENGINE_DB: Rank = Rank::new(250, "core.engine_db");
    /// One lavastore stripe (memtable + levels + readers).
    pub const LAVASTORE_STRIPE: Rank = Rank::new(300, "lavastore.stripe");
    /// Lavastore cross-stripe manifest / rotated-segment bookkeeping
    /// (acquired while a stripe lock is held on the flush path).
    pub const LAVASTORE_SHARED: Rank = Rank::new(310, "lavastore.shared");
    /// Group-commit WAL state (acquired under `shared` on rotate/cursor).
    pub const WAL_STATE: Rank = Rank::new(320, "lavastore.wal");
    /// `ApplyTracker`'s out-of-order park heap.
    pub const APPLY_PENDING: Rank = Rank::new(330, "lavastore.apply_pending");
    /// A block-cache SA-LRU shard (acquired under stripe locks on reads).
    pub const CACHE_SHARD: Rank = Rank::new(400, "cache.shard");
    /// Labelled-metric family member interning.
    pub const OBS_FAMILY: Rank = Rank::new(500, "obs.family");
    /// The global metric registration map (first touch of a lazy metric can
    /// happen under any storage lock, so this outranks all of them).
    pub const OBS_REGISTRY: Rank = Rank::new(510, "obs.registry");
    /// The slowlog ring.
    pub const OBS_SLOWLOG: Rank = Rank::new(520, "obs.slowlog");
    /// Fail-point rule table (consulted under the WAL lock, among others).
    pub const FAILPOINT_RULES: Rank = Rank::new(600, "failpoint.rules");
    /// Fail-point fired counters.
    pub const FAILPOINT_FIRED: Rank = Rank::new(610, "failpoint.fired");
}

/// How an acquisition interacts with same-rank holders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Mutex lock or RwLock write: must be strictly above everything held.
    Exclusive,
    /// RwLock read: may also sit *at* the top-held rank when that holder is
    /// itself a read (index-ordered multi-stripe read sweeps).
    Shared,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Exclusive => "exclusive",
            Mode::Shared => "read",
        }
    }
}

/// One entry on a thread's held-lock stack.
#[derive(Debug, Clone, Copy)]
struct Held {
    rank: Rank,
    mode: Mode,
    acquired_at: &'static Location<'static>,
    id: u64,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
}

static NEXT_ACQ_ID: AtomicU64 = AtomicU64::new(1);

/// Names of the lock classes the current thread holds, outermost first.
/// Empty when checking is disabled. Intended for tests and diagnostics.
pub fn held_lock_names() -> Vec<&'static str> {
    if !CHECK_ENABLED {
        return Vec::new();
    }
    HELD.with(|held| held.borrow().iter().map(|h| h.rank.name).collect())
}

fn format_held(held: &[Held]) -> String {
    if held.is_empty() {
        return "  (nothing held)".to_string();
    }
    held.iter()
        .map(|h| {
            format!(
                "  {} (rank {}, {}) acquired at {}",
                h.rank.name,
                h.rank.value,
                h.mode.label(),
                h.acquired_at
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Record (and order-check) an acquisition. Returns a token to pass to
/// [`release`], or `None` when checking is disabled or `enforce` is false
/// failed silently — `try_*` acquisitions are recorded but never rejected
/// (a non-blocking probe cannot participate in a deadlock cycle).
#[track_caller]
fn acquire(rank: Rank, mode: Mode, enforce: bool) -> Option<u64> {
    if !CHECK_ENABLED {
        return None;
    }
    let caller = Location::caller();
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(top) = held.last() {
            let ok = rank.value > top.rank.value
                || (rank.value == top.rank.value
                    && mode == Mode::Shared
                    && top.mode == Mode::Shared);
            if !ok && enforce {
                let stacks = format_held(&held);
                // The held stack must unwind before the panic propagates, or
                // every guard drop during unwinding would hit a stale stack.
                drop(held);
                panic!(
                    "lock-order violation: acquiring {} (rank {}, {}) at {} \
                     while holding (outermost first):\n{}\n\
                     acquisition stack:\n{}",
                    rank.name,
                    rank.value,
                    mode.label(),
                    caller,
                    stacks,
                    std::backtrace::Backtrace::force_capture()
                );
            }
        }
        let id = NEXT_ACQ_ID.fetch_add(1, Ordering::Relaxed);
        held.push(Held {
            rank,
            mode,
            acquired_at: caller,
            id,
        });
        Some(id)
    })
}

/// Pop an acquisition off the held stack. Guards may drop out of creation
/// order, so the entry is located by token, scanning from the innermost end.
fn release(token: Option<u64>) {
    let Some(id) = token else { return };
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|h| h.id == id) {
            held.remove(pos);
        }
    });
}

// ---------------------------------------------------------------------------
// RankedMutex
// ---------------------------------------------------------------------------

/// A mutex with a declared position in the global lock order.
#[derive(Debug)]
pub struct RankedMutex<T: ?Sized> {
    rank: Rank,
    inner: pl::Mutex<T>,
}

impl<T> RankedMutex<T> {
    /// Create a mutex at `rank` (use a constant from [`rank`]).
    pub const fn new(rank: Rank, value: T) -> Self {
        Self {
            rank,
            inner: pl::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RankedMutex<T> {
    /// The declared rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Acquire, blocking. Panics (when checking is armed) if the calling
    /// thread already holds a lock at this rank or above.
    #[track_caller]
    pub fn lock(&self) -> RankedMutexGuard<'_, T> {
        let token = acquire(self.rank, Mode::Exclusive, true);
        RankedMutexGuard {
            guard: self.inner.lock(),
            token,
        }
    }

    /// Non-blocking acquire. Recorded on the held stack but never rejected:
    /// a `try_lock` cannot block, so it cannot close a deadlock cycle.
    #[track_caller]
    pub fn try_lock(&self) -> Option<RankedMutexGuard<'_, T>> {
        let guard = self.inner.try_lock()?;
        let token = acquire(self.rank, Mode::Exclusive, false);
        Some(RankedMutexGuard { guard, token })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

/// Guard for [`RankedMutex`]; releases the lock-order entry on drop.
pub struct RankedMutexGuard<'a, T: ?Sized> {
    guard: pl::MutexGuard<'a, T>,
    token: Option<u64>,
}

impl<T: ?Sized> std::ops::Deref for RankedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for RankedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized> Drop for RankedMutexGuard<'_, T> {
    fn drop(&mut self) {
        release(self.token);
    }
}

// ---------------------------------------------------------------------------
// RankedRwLock
// ---------------------------------------------------------------------------

/// A reader-writer lock with a declared position in the global lock order.
/// Read acquisitions at the rank of an already-held *read* are permitted
/// (index-ordered multi-stripe sweeps); writes are always strictly ordered.
#[derive(Debug)]
pub struct RankedRwLock<T: ?Sized> {
    rank: Rank,
    inner: pl::RwLock<T>,
}

impl<T> RankedRwLock<T> {
    /// Create a reader-writer lock at `rank`.
    pub const fn new(rank: Rank, value: T) -> Self {
        Self {
            rank,
            inner: pl::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RankedRwLock<T> {
    /// The declared rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Acquire a shared read guard, blocking.
    #[track_caller]
    pub fn read(&self) -> RankedRwLockReadGuard<'_, T> {
        let token = acquire(self.rank, Mode::Shared, true);
        RankedRwLockReadGuard {
            guard: self.inner.read(),
            token,
        }
    }

    /// Acquire an exclusive write guard, blocking.
    #[track_caller]
    pub fn write(&self) -> RankedRwLockWriteGuard<'_, T> {
        let token = acquire(self.rank, Mode::Exclusive, true);
        RankedRwLockWriteGuard {
            guard: self.inner.write(),
            token,
        }
    }

    /// Non-blocking read (recorded, never rejected — see
    /// [`RankedMutex::try_lock`]).
    #[track_caller]
    pub fn try_read(&self) -> Option<RankedRwLockReadGuard<'_, T>> {
        let guard = self.inner.try_read()?;
        let token = acquire(self.rank, Mode::Shared, false);
        Some(RankedRwLockReadGuard { guard, token })
    }

    /// Non-blocking write (recorded, never rejected).
    #[track_caller]
    pub fn try_write(&self) -> Option<RankedRwLockWriteGuard<'_, T>> {
        let guard = self.inner.try_write()?;
        let token = acquire(self.rank, Mode::Exclusive, false);
        Some(RankedRwLockWriteGuard { guard, token })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

/// Shared guard for [`RankedRwLock`].
pub struct RankedRwLockReadGuard<'a, T: ?Sized> {
    guard: pl::RwLockReadGuard<'a, T>,
    token: Option<u64>,
}

impl<T: ?Sized> std::ops::Deref for RankedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Drop for RankedRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        release(self.token);
    }
}

/// Exclusive guard for [`RankedRwLock`].
pub struct RankedRwLockWriteGuard<'a, T: ?Sized> {
    guard: pl::RwLockWriteGuard<'a, T>,
    token: Option<u64>,
}

impl<T: ?Sized> std::ops::Deref for RankedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for RankedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized> Drop for RankedRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        release(self.token);
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// A condition variable compatible with [`RankedMutex`]. The waiter keeps its
/// rank-stack entry while parked: the thread is blocked the whole time, so it
/// can acquire nothing out of order, and on wake it holds the same lock at
/// the same position.
#[derive(Debug, Default)]
pub struct RankedCondvar {
    inner: pl::Condvar,
}

impl RankedCondvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: pl::Condvar::new(),
        }
    }

    /// Block until notified, releasing (and on wake re-acquiring) the lock.
    pub fn wait<T>(&self, guard: &mut RankedMutexGuard<'_, T>) {
        self.inner.wait(&mut guard.guard);
    }

    /// Block until notified or `timeout` elapses; true if it timed out.
    pub fn wait_for<T>(&self, guard: &mut RankedMutexGuard<'_, T>, timeout: Duration) -> bool {
        self.inner.wait_for(&mut guard.guard, timeout)
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OUTER: Rank = Rank::new(10, "test.outer");
    const INNER: Rank = Rank::new(20, "test.inner");

    fn catch<R>(f: impl FnOnce() -> R + std::panic::UnwindSafe) -> Option<String> {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panics
        let result = std::panic::catch_unwind(f);
        std::panic::set_hook(prev);
        result.err().map(|e| {
            e.downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default()
        })
    }

    #[test]
    fn in_order_acquisition_is_silent_and_stack_unwinds() {
        let a = RankedMutex::new(OUTER, 1);
        let b = RankedMutex::new(INNER, 2);
        {
            let ga = a.lock();
            let gb = b.lock();
            assert_eq!(*ga + *gb, 3);
            assert_eq!(held_lock_names(), vec!["test.outer", "test.inner"]);
        }
        assert!(held_lock_names().is_empty(), "guards did not unwind");
        // Out-of-creation-order guard drops unwind by token, not position.
        let ga = a.lock();
        let gb = b.lock();
        drop(ga);
        assert_eq!(held_lock_names(), vec!["test.inner"]);
        drop(gb);
        assert!(held_lock_names().is_empty());
    }

    #[test]
    fn inversion_panics_with_both_stacks() {
        let a = RankedMutex::new(OUTER, ());
        let b = RankedMutex::new(INNER, ());
        let msg = catch(|| {
            let _gb = b.lock();
            let _ga = a.lock(); // B -> A inverts the declared A -> B order
        });
        if !CHECK_ENABLED {
            assert!(msg.is_none());
            return;
        }
        let msg = msg.expect("inversion must panic");
        assert!(msg.contains("lock-order violation"), "{msg}");
        assert!(msg.contains("test.outer"), "{msg}");
        assert!(msg.contains("test.inner"), "{msg}");
        assert!(msg.contains("acquisition stack"), "{msg}");
        assert!(
            held_lock_names().is_empty(),
            "stack leaked across unwind: {:?}",
            held_lock_names()
        );
    }

    #[test]
    fn same_rank_reads_are_permitted_but_writes_are_not() {
        let stripes: Vec<RankedRwLock<u32>> = (0..4).map(|i| RankedRwLock::new(OUTER, i)).collect();
        // Index-ordered read sweep: every stripe held at once, same rank.
        let guards: Vec<_> = stripes.iter().map(|s| s.read()).collect();
        assert_eq!(guards.iter().map(|g| **g).sum::<u32>(), 6);
        drop(guards);
        // A write at a held rank is an inversion even between distinct locks.
        let msg = catch(|| {
            let _g0 = stripes[0].write();
            let _g1 = stripes[1].write();
        });
        if CHECK_ENABLED {
            assert!(msg.is_some(), "same-rank write pair must panic");
        }
        // A write above a held read is fine (read stripe -> write inner).
        let inner = RankedRwLock::new(INNER, 9);
        let _r = stripes[0].read();
        let _w = inner.write();
    }

    #[test]
    fn same_rank_read_after_exclusive_is_rejected() {
        let a = RankedMutex::new(OUTER, ());
        let b = RankedRwLock::new(OUTER, ());
        let msg = catch(|| {
            let _ga = a.lock();
            let _gb = b.read(); // read at the rank of a held *exclusive* lock
        });
        if CHECK_ENABLED {
            assert!(msg.is_some(), "read at held exclusive rank must panic");
        }
    }

    #[test]
    fn try_lock_is_recorded_but_never_rejected() {
        let a = RankedMutex::new(OUTER, ());
        let b = RankedMutex::new(INNER, ());
        let _gb = b.lock();
        // Out of order, but non-blocking: allowed by design.
        let ga = a.try_lock().expect("uncontended");
        if CHECK_ENABLED {
            assert_eq!(held_lock_names(), vec!["test.inner", "test.outer"]);
        }
        drop(ga);
    }

    #[test]
    fn condvar_roundtrip_preserves_rank_stack() {
        use std::sync::Arc;
        let pair = Arc::new((RankedMutex::new(OUTER, false), RankedCondvar::new()));
        let p2 = Arc::clone(&pair);
        let waker = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut guard = m.lock();
        while !*guard {
            cv.wait(&mut guard);
        }
        if CHECK_ENABLED {
            assert_eq!(held_lock_names(), vec!["test.outer"]);
        }
        drop(guard);
        waker.join().unwrap();
        // Timed wait returns and keeps the guard usable.
        let mut guard = m.lock();
        let timed_out = cv.wait_for(&mut guard, Duration::from_millis(5));
        assert!(timed_out);
        assert!(*guard);
    }
}
