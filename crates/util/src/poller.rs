//! A thin, dependency-free epoll wrapper for the event-driven front end.
//!
//! The container builds offline, so — like the `crates/shims/` precedent —
//! this module binds the handful of libc entry points it needs directly
//! (`epoll_create1`/`epoll_ctl`/`epoll_wait`, `eventfd`, `read`/`write`/
//! `close`, `getrlimit`/`setrlimit`) instead of pulling in `mio` or `libc`.
//! std already links libc, so the symbols are always present on the Linux
//! targets ABase runs on.
//!
//! The surface is deliberately small:
//!
//! * [`Poller`] — an epoll instance: `register`/`modify`/`deregister` a raw
//!   fd with an [`Interest`] and a caller-chosen token, then [`Poller::poll`]
//!   into an [`Events`] buffer.
//! * [`Interest`] — readable/writable, level- (default) or edge-triggered.
//!   The front end registers connections writable **only while output is
//!   pending**, so an idle connection costs one registered fd and nothing
//!   else.
//! * [`Waker`] — an eventfd that makes `poll` return from another thread:
//!   shutdown signaling and cross-worker connection handoff both ride on it.
//! * [`raise_nofile_limit`] — lift `RLIMIT_NOFILE` toward its hard cap so
//!   connection-scaling runs can actually open 10k+ sockets.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Raw libc bindings (the shims precedent: no external crates).
// ---------------------------------------------------------------------------

/// `struct epoll_event`. The kernel ABI packs it on x86_64 (12 bytes) and
/// aligns it naturally elsewhere; mirroring glibc's `__EPOLL_PACKED`.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[repr(C)]
struct RLimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLET: u32 = 1 << 31;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;
const RLIMIT_NOFILE: i32 = 7;

/// The last OS error as an `io::Error` (errno is thread-local; read it
/// immediately after the failing call).
fn os_error() -> io::Error {
    io::Error::last_os_error()
}

// ---------------------------------------------------------------------------
// Interest
// ---------------------------------------------------------------------------

/// What readiness a registration asks for.
///
/// Level-triggered by default — the front end's drain loops are written so
/// level semantics cannot starve a socket, and "writable only while output
/// is pending" maps naturally onto level-triggered `EPOLLOUT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
    edge: bool,
}

impl Interest {
    /// Readable readiness only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
        edge: false,
    };

    /// Writable readiness only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
        edge: false,
    };

    /// Both readable and writable readiness.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
        edge: false,
    };

    /// The same interest, edge-triggered (`EPOLLET`): one notification per
    /// readiness *transition*; the caller must drain to `WouldBlock`.
    pub fn edge_triggered(mut self) -> Interest {
        self.edge = true;
        self
    }

    fn mask(&self) -> u32 {
        let mut m = EPOLLRDHUP;
        if self.readable {
            m |= EPOLLIN;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        if self.edge {
            m |= EPOLLET;
        }
        m
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// One readiness notification out of [`Poller::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (or a peer hang-up, which reads as EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error condition on the fd (`EPOLLERR`); the next read/write reports
    /// the specific error.
    pub error: bool,
    /// Peer closed its end (`EPOLLHUP`/`EPOLLRDHUP`).
    pub hangup: bool,
}

/// Reusable buffer of readiness notifications.
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer holding up to `capacity` notifications per poll.
    pub fn with_capacity(capacity: usize) -> Self {
        Events {
            buf: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Notifications from the most recent poll.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|raw| {
            // Copy out of the (possibly packed) struct before field reads.
            let ev = *raw;
            Event {
                token: ev.data,
                readable: ev.events & (EPOLLIN | EPOLLHUP | EPOLLRDHUP) != 0,
                writable: ev.events & EPOLLOUT != 0,
                error: ev.events & EPOLLERR != 0,
                hangup: ev.events & (EPOLLHUP | EPOLLRDHUP) != 0,
            }
        })
    }

    /// Number of notifications from the most recent poll.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the most recent poll returned no notifications.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

// ---------------------------------------------------------------------------
// Poller
// ---------------------------------------------------------------------------

/// An epoll instance with registration and a bounded wait.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Create a fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes no pointers; the flag is a valid
        // constant and the return value is checked below.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Option<Interest>) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.map_or(0, |i| i.mask()),
            data: token,
        };
        // SAFETY: `ev` is a live, properly initialised EpollEvent for the
        // duration of the call; the kernel only reads it. `self.epfd` is a
        // valid epoll fd until Drop.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(os_error());
        }
        Ok(())
    }

    /// Start watching `fd` with `interest`; readiness events carry `token`.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, Some(interest))
    }

    /// Change an existing registration's interest (and/or token).
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, Some(interest))
    }

    /// Stop watching `fd`.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, None)
    }

    /// Wait for readiness on any registered fd, at most `timeout` (`None`
    /// blocks until something is ready). Returns the notification count;
    /// `events` holds the details. A signal-interrupted wait reports zero
    /// events rather than an error.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 0 < t < 1ms timeout still sleeps.
            Some(t) => {
                t.as_millis().min(i32::MAX as u128) as i32
                    + i32::from(t.subsec_micros() % 1000 != 0)
            }
        };
        // SAFETY: the out-pointer and capacity describe `events.buf`'s
        // allocation exactly; the kernel writes at most `buf.len()` entries
        // and `events.len` is set only from the returned count.
        let n = unsafe {
            epoll_wait(
                self.epfd,
                events.buf.as_mut_ptr(),
                events.buf.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                events.len = 0;
                return Ok(0);
            }
            return Err(err);
        }
        events.len = n as usize;
        Ok(events.len)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: `epfd` was returned by epoll_create1, is owned solely by
        // this Poller, and is closed exactly once (Drop consumes self).
        unsafe { close(self.epfd) };
    }
}

// SAFETY: Poller holds only an owned epoll fd. Registration and polling are
// plain syscalls on that fd, and the kernel serialises concurrent epoll_ctl/
// epoll_wait calls on the same instance — no thread affinity, no shared
// mutable state on the Rust side.
unsafe impl Send for Poller {}
// SAFETY: see Send above — `&Poller` only ever issues thread-safe syscalls.
unsafe impl Sync for Poller {}

// ---------------------------------------------------------------------------
// Waker
// ---------------------------------------------------------------------------

/// An eventfd that makes a [`Poller::poll`] return from another thread.
///
/// Register [`Waker::raw_fd`] (readable, any token); `wake` from anywhere;
/// the polling thread calls `drain` when it sees the token so the next poll
/// blocks again.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// A fresh, non-blocking eventfd.
    pub fn new() -> io::Result<Self> {
        // SAFETY: eventfd takes no pointers; flags are valid constants and
        // the return value is checked below.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(os_error());
        }
        Ok(Waker { fd })
    }

    /// The fd to register with a poller (readable interest).
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Make the registered poller's current (or next) poll return. Safe from
    /// any thread; coalesces with outstanding wakes.
    pub fn wake(&self) {
        let one: u64 = 1;
        // An EAGAIN here means the counter is already at max — the wake is
        // already pending, which is all the caller wants.
        // SAFETY: the buffer is a live 8-byte u64 on this stack frame, the
        // exact width an eventfd write requires; `fd` is owned until Drop.
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Consume pending wakes so the next poll blocks again.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: `buf` is a live 8-byte stack array, the exact width an
        // eventfd read produces; `fd` is owned until Drop.
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: `fd` was returned by eventfd, is owned solely by this
        // Waker, and is closed exactly once (Drop consumes self).
        unsafe { close(self.fd) };
    }
}

// SAFETY: Waker holds only an owned eventfd; write/read on an eventfd are
// atomic kernel operations, explicitly safe from any thread.
unsafe impl Send for Waker {}
// SAFETY: see Send above — `&Waker` only ever issues thread-safe syscalls.
unsafe impl Sync for Waker {}

// ---------------------------------------------------------------------------
// RLIMIT_NOFILE
// ---------------------------------------------------------------------------

/// Raise the soft `RLIMIT_NOFILE` toward `want` (capped at the hard limit).
/// Returns the soft limit in effect afterwards. Connection-scaling runs call
/// this before opening tens of thousands of sockets; everything else leaves
/// the inherited limit alone.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut rl = RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: `rl` is a live, initialised RLimit matching the kernel ABI;
    // the kernel writes both fields.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut rl) } < 0 {
        return Err(os_error());
    }
    if rl.rlim_cur >= want {
        return Ok(rl.rlim_cur);
    }
    let target = want.min(rl.rlim_max);
    let new = RLimit {
        rlim_cur: target,
        rlim_max: rl.rlim_max,
    };
    // SAFETY: `new` is a live, fully initialised RLimit; the kernel only
    // reads it.
    if unsafe { setrlimit(RLIMIT_NOFILE, &new) } < 0 {
        return Err(os_error());
    }
    Ok(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn waker_interrupts_a_blocked_poll() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller
            .register(waker.raw_fd(), 99, Interest::READABLE)
            .unwrap();
        let w = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake();
        });
        let mut events = Events::with_capacity(8);
        let started = Instant::now();
        let n = poller
            .poll(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events.iter().next().unwrap().token, 99);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "wake did not interrupt"
        );
        waker.drain();
        // Drained: the next poll times out instead of spinning on the stale wake.
        let n = poller
            .poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
        handle.join().unwrap();
    }

    #[test]
    fn socket_readability_and_conditional_writable_interest() {
        use std::os::unix::io::AsRawFd;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        // Read-only interest: a freshly writable socket must NOT notify.
        poller
            .register(server.as_raw_fd(), 7, Interest::READABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        let n = poller
            .poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "idle read-only registration produced an event");

        // Data arrives: readable fires with the right token.
        client.write_all(b"ping").unwrap();
        let n = poller
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, 7);
        assert!(ev.readable && !ev.writable);

        // Flip to write interest (output pending): writable fires immediately.
        poller
            .modify(server.as_raw_fd(), 7, Interest::BOTH)
            .unwrap();
        let n = poller
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events.iter().next().unwrap().writable);

        // Peer close reads as readable + hangup.
        let mut buf = [0u8; 8];
        let mut srv = &server;
        let _ = srv.read(&mut buf);
        drop(client);
        let n = poller
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events.iter().next().unwrap().readable);
        poller.deregister(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn nofile_limit_is_monotone() {
        let current = raise_nofile_limit(0).unwrap();
        assert!(current > 0);
        // Asking for less than we have is a no-op that reports the status quo.
        assert_eq!(raise_nofile_limit(1).unwrap(), current);
    }
}
