//! Deterministic fail points for chaos testing.
//!
//! A fail point is a named site in production code (`wal.append`,
//! `binlog.poll`, …) that consults a process-global [`FaultInjector`] before
//! doing its work. In normal operation the injector is disabled and the check
//! is a single relaxed atomic load — the hot paths pay nothing. A chaos
//! harness (see `abase-chaos`) enables the injector and installs [`FaultRule`]s
//! from a seeded RNG: fail this append, tear that WAL tail at a byte offset,
//! stall a follower's pump, force a binlog gap, delay an fsync. Because every
//! rule is installed by the single-threaded chaos driver and consumed at
//! deterministic points, a failing episode replays exactly from its seed.
//!
//! The design follows the `fail`-crate / FoundationDB style of *explicit*
//! fail points rather than syscall interception: each site names the fault it
//! can suffer, which doubles as documentation of the crash surface.
//!
//! ```
//! use abase_util::failpoint::{self, FaultAction};
//!
//! let _guard = failpoint::ScopedInjector::enable();
//! failpoint::install("doc.example", Some("ctx-a"), FaultAction::Error, 0, 1);
//! assert_eq!(failpoint::check("doc.example", "ctx-b"), None); // matcher miss
//! assert_eq!(
//!     failpoint::check("doc.example", "some ctx-a path"),
//!     Some(FaultAction::Error)
//! );
//! assert_eq!(failpoint::check("doc.example", "some ctx-a path"), None); // spent
//! ```

use crate::lockrank::{rank, RankedMutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// What a triggered fail point should do. Interpretation is site-specific;
/// sites ignore actions that make no sense for them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Return an injected I/O error from the site.
    Error,
    /// Write only `keep_bytes` of the frame being appended, flush what was
    /// written, then fail — a crash mid-append leaving a torn tail at an
    /// arbitrary byte offset. The site stays poisoned afterwards (the
    /// "process" died; only reopening recovers).
    TornWrite {
        /// Bytes of the frame that reach the file before the tear.
        keep_bytes: u64,
    },
    /// Sleep for this many milliseconds before proceeding normally
    /// (delayed fsync / slow disk).
    DelayMs(u64),
    /// Report no progress: a pump/poll site returns empty-handed without
    /// advancing its cursor (a stalled follower).
    Stall,
    /// Force a binlog gap: the tailing cursor pretends its segment was
    /// rotated away, pushing the follower into a full resync.
    Gap,
    /// Discard an outbound replication frame after the sender's cursor
    /// advanced — the receiver sees a hole in the LSN stream and must detect
    /// it (and full-resync) rather than silently diverge.
    Drop,
    /// Send an outbound replication frame twice; at-least-once delivery, so
    /// the receiver's apply path must dedup.
    Duplicate,
    /// Hold an outbound replication frame and send it *after* the next one —
    /// out-of-order delivery the receiver must detect as a gap.
    Reorder,
    /// Sever the connection at this site (network partition): the socket is
    /// shut down and the peer must reconnect and resume via its cursor.
    Disconnect,
}

/// One installed rule: fires `count` times at `point` (after skipping the
/// first `skip` matching hits) whenever `matcher` is a substring of the
/// site's context string.
#[derive(Debug, Clone)]
struct FaultRule {
    matcher: Option<String>,
    action: FaultAction,
    /// Matching hits to let through before firing.
    skip: u32,
    /// Remaining firings; 0 = exhausted.
    remaining: u32,
}

/// The process-global fail-point registry.
///
/// The two lock ranks are the innermost in the workspace: `check` is called
/// while WAL/stripe/group locks are held, so these must outrank all of them.
#[derive(Debug)]
pub struct FaultInjector {
    enabled: AtomicBool,
    rules: RankedMutex<HashMap<&'static str, Vec<FaultRule>>>,
    /// Total fired faults per point, for harness assertions.
    fired: RankedMutex<HashMap<&'static str, u64>>,
}

fn injector() -> &'static FaultInjector {
    static INJECTOR: OnceLock<FaultInjector> = OnceLock::new();
    INJECTOR.get_or_init(|| FaultInjector {
        enabled: AtomicBool::new(false),
        rules: RankedMutex::new(rank::FAILPOINT_RULES, HashMap::new()),
        fired: RankedMutex::new(rank::FAILPOINT_FIRED, HashMap::new()),
    })
}

impl FaultInjector {
    /// Is fault injection active at all?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }
}

/// Is injection currently enabled? Sites whose context string is expensive to
/// build can guard on this before calling [`check`].
pub fn enabled() -> bool {
    injector().is_enabled()
}

/// Turn the injector on (rules start being consulted).
pub fn enable() {
    // Relaxed on purpose (downgraded from SeqCst): rule visibility is
    // carried by the `rules` mutex, not this flag — a site that reads the
    // flag early simply skips one check, which injection never precludes.
    injector().enabled.store(true, Ordering::Relaxed);
}

/// Turn the injector off and drop every rule and counter.
pub fn disable() {
    let inj = injector();
    // Relaxed on purpose: see `enable` — the rules mutex carries the sync.
    inj.enabled.store(false, Ordering::Relaxed);
    inj.rules.lock().clear();
    inj.fired.lock().clear();
}

/// Drop all rules and counters but keep the injector enabled.
pub fn clear() {
    let inj = injector();
    inj.rules.lock().clear();
    inj.fired.lock().clear();
}

/// Install a rule at `point`: fire `action` on up to `count` hits whose
/// context contains `matcher` (any context when `None`), ignoring the first
/// `skip` matching hits.
pub fn install(
    point: &'static str,
    matcher: Option<&str>,
    action: FaultAction,
    skip: u32,
    count: u32,
) {
    injector()
        .rules
        .lock()
        .entry(point)
        .or_default()
        .push(FaultRule {
            matcher: matcher.map(str::to_string),
            action,
            skip,
            remaining: count,
        });
}

/// Consult the injector at a fail-point site. Returns the action to take, or
/// `None` (the overwhelmingly common case) to proceed normally.
pub fn check(point: &'static str, context: &str) -> Option<FaultAction> {
    let inj = injector();
    if !inj.is_enabled() {
        return None;
    }
    let mut rules = inj.rules.lock();
    let list = rules.get_mut(point)?;
    for rule in list.iter_mut() {
        let matches = rule
            .matcher
            .as_deref()
            .is_none_or(|needle| context.contains(needle));
        if !matches || rule.remaining == 0 {
            continue;
        }
        if rule.skip > 0 {
            rule.skip -= 1;
            continue;
        }
        rule.remaining -= 1;
        let action = rule.action;
        drop(rules);
        *inj.fired.lock().entry(point).or_default() += 1;
        if let FaultAction::DelayMs(ms) = action {
            std::thread::sleep(Duration::from_millis(ms));
        }
        return Some(action);
    }
    None
}

/// How many faults have fired at `point` since the last [`clear`]/[`disable`].
pub fn fired(point: &'static str) -> u64 {
    injector().fired.lock().get(point).copied().unwrap_or(0)
}

/// Every point that has fired since the last [`clear`]/[`disable`], with its
/// count, sorted by point name. This is the attribution feed for chaos
/// reports ("which injected faults actually fired this episode") and the
/// metrics registry's `failpoint_fired_total` family.
pub fn fired_counts() -> Vec<(&'static str, u64)> {
    let mut counts: Vec<(&'static str, u64)> = injector()
        .fired
        .lock()
        .iter()
        .map(|(&point, &n)| (point, n))
        .collect();
    counts.sort_unstable_by_key(|&(point, _)| point);
    counts
}

/// RAII enable/disable, for tests that must not leak rules into neighbours.
/// The registry is process-global, so tests using it must serialize (the
/// chaos harness runs episodes sequentially for exactly this reason).
#[derive(Debug)]
pub struct ScopedInjector(());

impl ScopedInjector {
    /// Enable injection until the guard drops.
    pub fn enable() -> Self {
        enable();
        Self(())
    }
}

impl Drop for ScopedInjector {
    fn drop(&mut self) {
        disable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // All tests share the global injector; one test exercises every behaviour
    // so parallel test threads never race on the registry.
    #[test]
    fn rules_match_count_skip_and_clear() {
        let _guard = ScopedInjector::enable();
        // Count + matcher.
        install("t.point", Some("wal-7"), FaultAction::Error, 0, 2);
        assert_eq!(check("t.point", "/data/wal-9.log"), None);
        assert_eq!(
            check("t.point", "/data/wal-7.log"),
            Some(FaultAction::Error)
        );
        assert_eq!(
            check("t.point", "/data/wal-7.log"),
            Some(FaultAction::Error)
        );
        assert_eq!(check("t.point", "/data/wal-7.log"), None, "count spent");
        assert_eq!(fired("t.point"), 2);
        // Skip lets early hits through.
        install("t.skip", None, FaultAction::Stall, 2, 1);
        assert_eq!(check("t.skip", "x"), None);
        assert_eq!(check("t.skip", "x"), None);
        assert_eq!(check("t.skip", "x"), Some(FaultAction::Stall));
        assert_eq!(check("t.skip", "x"), None);
        // Unknown points are silent.
        assert_eq!(check("t.unknown", "x"), None);
        // Clear keeps the injector armed but forgets rules.
        install("t.cleared", None, FaultAction::Gap, 0, 1);
        clear();
        assert_eq!(check("t.cleared", "x"), None);
        assert_eq!(fired("t.point"), 0);
        // Disabled: rules are never consulted.
        disable();
        install("t.off", None, FaultAction::Error, 0, 1);
        assert_eq!(check("t.off", "x"), None);
    }
}
