//! Self-cleaning temporary directories for tests and examples.
//!
//! Every crate in the workspace needs a scratch directory that is unique per
//! test (process × thread × tag) and vanishes when the test ends, pass or
//! fail. One shared implementation beats the previous copy in every test
//! module: a fix here (naming, cleanup semantics) lands everywhere at once.

use std::ops::Deref;
use std::path::{Path, PathBuf};

/// A temp-dir handle that removes its tree on drop.
///
/// The directory itself is *not* created — components like `Db::open` create
/// their own directories — but any pre-existing tree at the path is removed
/// at construction so a crashed earlier run cannot leak state in.
#[derive(Debug)]
pub struct TestDir(PathBuf);

impl TestDir {
    /// A unique scratch path under the system temp dir, namespaced by `tag`,
    /// process id, and thread id (tests in one binary run concurrently).
    pub fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "abase-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&path).ok();
        Self(path)
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Deref for TestDir {
    type Target = Path;
    fn deref(&self) -> &Path {
        &self.0
    }
}

impl AsRef<Path> for TestDir {
    fn as_ref(&self) -> &Path {
        &self.0
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_and_cleaned_up() {
        let path = {
            let dir = TestDir::new("testdir-self");
            std::fs::create_dir_all(dir.path()).unwrap();
            std::fs::write(dir.join("f"), b"x").unwrap();
            assert!(dir.path().exists());
            dir.path().to_path_buf()
        };
        assert!(!path.exists(), "drop must remove the tree");
        let a = TestDir::new("testdir-a");
        let b = TestDir::new("testdir-b");
        assert_ne!(a.path(), b.path());
    }
}
