//! Log-bucketed latency histogram.
//!
//! Figure 4a of the paper reports per-tenant P99 latency relative to the SLA.
//! Recording every request latency exactly would dominate simulation memory, so
//! the simulator uses a histogram with logarithmically spaced buckets: constant
//! relative error (~5 % by default) at any latency magnitude.

/// A histogram over positive values with log-spaced buckets.
///
/// Values are clamped into `[min, max]`. Quantile queries return the geometric
/// midpoint of the bucket containing the requested rank, giving bounded relative
/// error determined by `growth`.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    min: f64,
    /// log(growth); bucket i covers [min * growth^i, min * growth^(i+1)).
    log_growth: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl LatencyHistogram {
    /// A histogram covering `[min, max]` with buckets growing by factor `growth`.
    ///
    /// # Panics
    /// Panics unless `0 < min < max` and `growth > 1`.
    pub fn new(min: f64, max: f64, growth: f64) -> Self {
        assert!(min > 0.0 && max > min, "need 0 < min < max");
        assert!(growth > 1.0, "growth factor must exceed 1");
        let log_growth = growth.ln();
        let n_buckets = ((max / min).ln() / log_growth).ceil() as usize + 1;
        Self {
            min,
            log_growth,
            counts: vec![0; n_buckets],
            total: 0,
            sum: 0.0,
        }
    }

    /// Histogram suited to request latencies in microseconds: 10 µs .. 100 s,
    /// 5 % bucket growth.
    pub fn for_latency_micros() -> Self {
        Self::new(10.0, 100_000_000.0, 1.05)
    }

    fn bucket_index(&self, value: f64) -> usize {
        if value <= self.min {
            return 0;
        }
        let idx = ((value / self.min).ln() / self.log_growth) as usize;
        idx.min(self.counts.len() - 1)
    }

    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        let idx = self.bucket_index(value.max(0.0));
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
    }

    /// Record `n` identical observations.
    pub fn record_n(&mut self, value: f64, n: u64) {
        let idx = self.bucket_index(value.max(0.0));
        self.counts[idx] += n;
        self.total += n;
        self.sum += value * n as f64;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded observations (exact, not bucketed). 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Approximate quantile `q ∈ [0,1]`; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                // Geometric midpoint of bucket i.
                let lo = self.min * (self.log_growth * i as f64).exp();
                let hi = lo * self.log_growth.exp();
                return Some((lo * hi).sqrt());
            }
        }
        unreachable!("cumulative count must reach total");
    }

    /// Merge another histogram with identical bucket layout.
    ///
    /// # Panics
    /// Panics if layouts differ.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "layout mismatch");
        assert!(
            (self.min - other.min).abs() < f64::EPSILON,
            "layout mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
    }

    /// Reset all counts to zero.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = LatencyHistogram::for_latency_micros();
        for i in 1..=10_000u64 {
            h.record(i as f64 * 10.0); // 10 µs .. 100 ms uniformly
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.06, "p50={p50}");
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.06, "p99={p99}");
    }

    #[test]
    fn empty_histogram_has_no_quantile() {
        let h = LatencyHistogram::for_latency_micros();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::for_latency_micros();
        h.record(100.0);
        h.record(300.0);
        assert!((h.mean() - 200.0).abs() < 1e-12);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = LatencyHistogram::for_latency_micros();
        let mut b = LatencyHistogram::for_latency_micros();
        for _ in 0..7 {
            a.record(555.0);
        }
        b.record_n(555.0, 7);
        assert_eq!(a.count(), b.count());
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::for_latency_micros();
        let mut b = LatencyHistogram::for_latency_micros();
        a.record(100.0);
        b.record(10_000.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        // p0 should be near 100, p100 near 10_000.
        assert!(a.quantile(0.01).unwrap() < 200.0);
        assert!(a.quantile(1.0).unwrap() > 5_000.0);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let mut h = LatencyHistogram::new(10.0, 1000.0, 1.5);
        h.record(1.0); // below min
        h.record(1e12); // above max
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.0).unwrap() >= 10.0);
    }

    #[test]
    fn clear_resets() {
        let mut h = LatencyHistogram::for_latency_micros();
        h.record(42.0);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
    }
}
