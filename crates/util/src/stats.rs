//! Streaming statistics.
//!
//! The paper estimates upcoming read sizes `E[S_read]` and cache hit ratios
//! `E[R_hit]` with "a moving average of the last *k* requests" (§4.1). These
//! estimators — plus EWMA and Welford online variance used across the workload
//! management experiments — live here.

use std::collections::VecDeque;

/// Moving average over the last `k` observations.
///
/// ABase uses this for read-size and cache-hit-ratio estimation feeding the
/// cache-aware RU formula (§4.1). Before any observation arrives the average
/// falls back to a configurable prior so that a cold tenant is neither charged
/// zero nor infinity.
#[derive(Debug, Clone)]
pub struct MovingAverage {
    window: VecDeque<f64>,
    capacity: usize,
    sum: f64,
    prior: f64,
}

impl MovingAverage {
    /// A moving average over the last `k` samples, returning `prior` while empty.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize, prior: f64) -> Self {
        assert!(k > 0, "moving average window must be non-empty");
        Self {
            window: VecDeque::with_capacity(k),
            capacity: k,
            sum: 0.0,
            prior,
        }
    }

    /// Record an observation.
    pub fn record(&mut self, value: f64) {
        if self.window.len() == self.capacity {
            if let Some(old) = self.window.pop_front() {
                self.sum -= old;
            }
        }
        self.window.push_back(value);
        self.sum += value;
    }

    /// Current estimate: mean of the window, or the prior when empty.
    pub fn mean(&self) -> f64 {
        if self.window.is_empty() {
            self.prior
        } else {
            self.sum / self.window.len() as f64
        }
    }

    /// Number of samples currently held (≤ k).
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when no samples have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }
}

/// Exponentially weighted moving average.
///
/// Used where a fixed-window queue would be needlessly memory-hungry, e.g. the
/// per-partition hit-ratio feedback in the data node cache.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// A new EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, value: None }
    }

    /// Record an observation.
    pub fn record(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        });
    }

    /// Current estimate, or `default` if nothing was recorded yet.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }
}

/// Welford's online mean and variance.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record an observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Event rate over a sliding window of virtual time.
///
/// The meta server monitors per-proxy traffic with this (§4.2): each processed
/// request is recorded with its timestamp, and `rate()` reports events/second
/// over the trailing window.
#[derive(Debug, Clone)]
pub struct WindowedRate {
    window_micros: u64,
    /// (timestamp, weight) pairs, oldest first.
    events: VecDeque<(u64, f64)>,
    weight_sum: f64,
}

impl WindowedRate {
    /// Rate tracker over a trailing window of `window_micros` virtual microseconds.
    ///
    /// # Panics
    /// Panics if `window_micros == 0`.
    pub fn new(window_micros: u64) -> Self {
        assert!(window_micros > 0, "window must be positive");
        Self {
            window_micros,
            events: VecDeque::new(),
            weight_sum: 0.0,
        }
    }

    /// Record `weight` units of traffic at virtual time `now` (microseconds).
    pub fn record(&mut self, now: u64, weight: f64) {
        self.evict(now);
        self.events.push_back((now, weight));
        self.weight_sum += weight;
    }

    /// Traffic per second over the trailing window ending at `now`.
    pub fn rate_per_sec(&mut self, now: u64) -> f64 {
        self.evict(now);
        self.weight_sum * 1_000_000.0 / self.window_micros as f64
    }

    /// Total weight currently inside the window ending at `now`.
    pub fn sum(&mut self, now: u64) -> f64 {
        self.evict(now);
        self.weight_sum
    }

    fn evict(&mut self, now: u64) {
        let cutoff = now.saturating_sub(self.window_micros);
        while let Some(&(t, w)) = self.events.front() {
            if t < cutoff {
                self.events.pop_front();
                self.weight_sum -= w;
            } else {
                break;
            }
        }
    }
}

/// Percentile of a slice using linear interpolation between closest ranks.
///
/// `q` is in `[0, 1]`. Returns `None` on an empty slice. The input does not
/// need to be sorted; a sorted copy is made internally.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    Some(percentile_sorted(&sorted, q))
}

/// Percentile of an already-sorted slice (ascending). See [`percentile`].
///
/// # Panics
/// Panics if `values` is empty.
pub fn percentile_sorted(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty());
    let q = q.clamp(0.0, 1.0);
    let pos = q * (values.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        values[lo]
    } else {
        let frac = pos - lo as f64;
        values[lo] * (1.0 - frac) + values[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_respects_window() {
        let mut ma = MovingAverage::new(3, 42.0);
        assert_eq!(ma.mean(), 42.0);
        ma.record(1.0);
        ma.record(2.0);
        ma.record(3.0);
        assert!((ma.mean() - 2.0).abs() < 1e-12);
        ma.record(10.0); // evicts 1.0
        assert!((ma.mean() - 5.0).abs() < 1e-12);
        assert_eq!(ma.len(), 3);
    }

    #[test]
    fn ewma_converges_toward_constant_input() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value_or(7.0), 7.0);
        for _ in 0..50 {
            e.record(10.0);
        }
        assert!((e.value_or(0.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn online_stats_match_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn windowed_rate_expires_old_events() {
        let mut r = WindowedRate::new(1_000_000); // 1 s window
        r.record(0, 100.0);
        r.record(500_000, 100.0);
        assert!((r.rate_per_sec(500_000) - 200.0).abs() < 1e-9);
        // At t=1.6s the event at t=0 (and t=0.5s) fall outside the window.
        assert!((r.rate_per_sec(1_600_000) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 1.0), Some(40.0));
        assert_eq!(percentile(&v, 0.5), Some(25.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[3.0], 0.99), Some(3.0));
    }
}
