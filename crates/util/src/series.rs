//! Fixed-interval time series.
//!
//! The control plane consumes 30 days of resource metrics downsampled to 1-hour
//! intervals (§5.2) and the rescheduler aggregates replica load "by taking the
//! maximum value within the hour-of-day dimension" into a 24-slot vector (§5.3).
//! [`TimeSeries`] provides exactly those operations.

/// A time series sampled at a fixed interval.
///
/// `values[i]` is the sample for `[start + i*interval, start + (i+1)*interval)`,
/// with times in virtual microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    start: u64,
    interval: u64,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Build a series from raw parts.
    ///
    /// # Panics
    /// Panics if `interval == 0`.
    pub fn new(start: u64, interval: u64, values: Vec<f64>) -> Self {
        assert!(interval > 0, "interval must be positive");
        Self {
            start,
            interval,
            values,
        }
    }

    /// An empty series starting at `start` with the given sampling interval.
    pub fn empty(start: u64, interval: u64) -> Self {
        Self::new(start, interval, Vec::new())
    }

    /// First sample timestamp.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Sampling interval in microseconds.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable sample values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Append one sample (timestamp implied by position).
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Timestamp of sample `i`.
    pub fn time_at(&self, i: usize) -> u64 {
        self.start + i as u64 * self.interval
    }

    /// Timestamp one past the final sample.
    pub fn end(&self) -> u64 {
        self.time_at(self.values.len())
    }

    /// Maximum sample value; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Minimum sample value; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Mean of the samples; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Keep only the trailing `n` samples (adjusting `start` accordingly).
    pub fn truncate_to_last(&mut self, n: usize) {
        if self.values.len() > n {
            let drop = self.values.len() - n;
            self.values.drain(..drop);
            self.start += drop as u64 * self.interval;
        }
    }

    /// Resample to a coarser interval by aggregating whole groups.
    ///
    /// `factor` source samples are combined into one output sample using `agg`
    /// (e.g. mean for downsampling usage metrics, max for peak-preserving
    /// downsampling). A trailing partial group is aggregated as-is.
    ///
    /// # Panics
    /// Panics if `factor == 0`.
    pub fn resample(&self, factor: usize, agg: Aggregation) -> TimeSeries {
        assert!(factor > 0, "resample factor must be positive");
        let mut out = Vec::with_capacity(self.values.len().div_ceil(factor));
        for chunk in self.values.chunks(factor) {
            out.push(agg.apply(chunk));
        }
        TimeSeries::new(self.start, self.interval * factor as u64, out)
    }

    /// Element-wise sum of two aligned series.
    ///
    /// # Panics
    /// Panics if the series have different `start`, `interval`, or length.
    pub fn zip_add(&self, other: &TimeSeries) -> TimeSeries {
        assert_eq!(self.start, other.start, "series start mismatch");
        assert_eq!(self.interval, other.interval, "series interval mismatch");
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "series length mismatch"
        );
        let values = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| a + b)
            .collect();
        TimeSeries::new(self.start, self.interval, values)
    }

    /// Scale every sample by `factor`.
    pub fn scaled(&self, factor: f64) -> TimeSeries {
        TimeSeries::new(
            self.start,
            self.interval,
            self.values.iter().map(|v| v * factor).collect(),
        )
    }

    /// Split at sample index `i`: `(self[..i], self[i..])`.
    pub fn split_at(&self, i: usize) -> (TimeSeries, TimeSeries) {
        let i = i.min(self.values.len());
        (
            TimeSeries::new(self.start, self.interval, self.values[..i].to_vec()),
            TimeSeries::new(self.time_at(i), self.interval, self.values[i..].to_vec()),
        )
    }
}

/// How to combine a group of samples during [`TimeSeries::resample`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Arithmetic mean of the group.
    Mean,
    /// Maximum of the group.
    Max,
    /// Sum of the group.
    Sum,
}

impl Aggregation {
    fn apply(self, xs: &[f64]) -> f64 {
        match self {
            Aggregation::Mean => xs.iter().sum::<f64>() / xs.len() as f64,
            Aggregation::Max => xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Aggregation::Sum => xs.iter().sum(),
        }
    }
}

/// The rescheduler's 24-slot hour-of-day load profile (§5.3).
///
/// Given an hourly series, fold it into 24 slots by taking, for each hour of
/// day, the **maximum** across all days in the window. The series must be
/// hourly-sampled; `start` is interpreted as hour-of-day `(start / 1h) % 24`.
pub fn hour_of_day_profile(hourly: &TimeSeries) -> [f64; 24] {
    const HOUR: u64 = 3_600_000_000;
    assert_eq!(
        hourly.interval(),
        HOUR,
        "hour_of_day_profile requires hourly sampling"
    );
    let mut profile = [0.0_f64; 24];
    let base_hour = (hourly.start() / HOUR) as usize;
    for (i, &v) in hourly.values().iter().enumerate() {
        let slot = (base_hour + i) % 24;
        profile[slot] = profile[slot].max(v);
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    const HOUR: u64 = 3_600_000_000;

    #[test]
    fn basic_accessors() {
        let s = TimeSeries::new(100, 10, vec![1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.time_at(0), 100);
        assert_eq!(s.time_at(2), 120);
        assert_eq!(s.end(), 130);
        assert_eq!(s.max(), Some(3.0));
        assert_eq!(s.min(), Some(1.0));
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn truncate_to_last_adjusts_start() {
        let mut s = TimeSeries::new(0, 10, vec![1.0, 2.0, 3.0, 4.0]);
        s.truncate_to_last(2);
        assert_eq!(s.values(), &[3.0, 4.0]);
        assert_eq!(s.start(), 20);
    }

    #[test]
    fn resample_mean_and_max() {
        let s = TimeSeries::new(0, 1, vec![1.0, 3.0, 2.0, 8.0, 5.0]);
        let m = s.resample(2, Aggregation::Mean);
        assert_eq!(m.values(), &[2.0, 5.0, 5.0]);
        assert_eq!(m.interval(), 2);
        let x = s.resample(2, Aggregation::Max);
        assert_eq!(x.values(), &[3.0, 8.0, 5.0]);
    }

    #[test]
    fn zip_add_requires_alignment() {
        let a = TimeSeries::new(0, 1, vec![1.0, 2.0]);
        let b = TimeSeries::new(0, 1, vec![10.0, 20.0]);
        assert_eq!(a.zip_add(&b).values(), &[11.0, 22.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn zip_add_rejects_length_mismatch() {
        let a = TimeSeries::new(0, 1, vec![1.0]);
        let b = TimeSeries::new(0, 1, vec![1.0, 2.0]);
        let _ = a.zip_add(&b);
    }

    #[test]
    fn split_at_preserves_timestamps() {
        let s = TimeSeries::new(0, 5, vec![1.0, 2.0, 3.0, 4.0]);
        let (head, tail) = s.split_at(3);
        assert_eq!(head.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(tail.start(), 15);
        assert_eq!(tail.values(), &[4.0]);
    }

    #[test]
    fn hour_of_day_profile_takes_daily_max() {
        // Two days of hourly data; second day doubles hour 5.
        let mut vals = vec![1.0; 48];
        vals[5] = 10.0;
        vals[24 + 5] = 20.0;
        let s = TimeSeries::new(0, HOUR, vals);
        let p = hour_of_day_profile(&s);
        assert_eq!(p[5], 20.0);
        assert_eq!(p[6], 1.0);
    }

    #[test]
    fn hour_of_day_profile_respects_start_offset() {
        // Series starting at hour 23: first sample lands in slot 23.
        let s = TimeSeries::new(23 * HOUR, HOUR, vec![7.0, 9.0]);
        let p = hour_of_day_profile(&s);
        assert_eq!(p[23], 7.0);
        assert_eq!(p[0], 9.0);
    }

    #[test]
    fn scaled_multiplies_values() {
        let s = TimeSeries::new(0, 1, vec![1.0, -2.0]).scaled(3.0);
        assert_eq!(s.values(), &[3.0, -6.0]);
    }
}
