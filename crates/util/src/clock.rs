//! Virtual time for deterministic simulation.
//!
//! ABase's published evaluation runs on a production fleet over hours or days. To
//! reproduce the *shape* of those experiments deterministically and quickly, every
//! time-dependent component in this workspace takes a [`SimTime`] instead of reading
//! a wall clock. [`SimClock`] is the single source of truth a simulation advances.
//!
//! The base unit is **microseconds**: fine enough to resolve sub-millisecond request
//! latencies, while a `u64` still spans ~584 000 years of virtual time.

/// A point in virtual time, in microseconds since the start of the simulation.
pub type SimTime = u64;

/// Microseconds in one millisecond.
pub const MICROS_PER_MS: SimTime = 1_000;
/// Microseconds in one second.
pub const MICROS_PER_SEC: SimTime = 1_000_000;
/// Microseconds in one minute.
pub const MICROS_PER_MIN: SimTime = 60 * MICROS_PER_SEC;
/// Microseconds in one hour.
pub const MICROS_PER_HOUR: SimTime = 60 * MICROS_PER_MIN;
/// Microseconds in one day.
pub const MICROS_PER_DAY: SimTime = 24 * MICROS_PER_HOUR;

/// Convert milliseconds to [`SimTime`].
#[inline]
pub const fn ms(v: u64) -> SimTime {
    v * MICROS_PER_MS
}

/// Convert seconds to [`SimTime`].
#[inline]
pub const fn secs(v: u64) -> SimTime {
    v * MICROS_PER_SEC
}

/// Convert minutes to [`SimTime`].
#[inline]
pub const fn mins(v: u64) -> SimTime {
    v * MICROS_PER_MIN
}

/// Convert hours to [`SimTime`].
#[inline]
pub const fn hours(v: u64) -> SimTime {
    v * MICROS_PER_HOUR
}

/// Convert days to [`SimTime`].
#[inline]
pub const fn days(v: u64) -> SimTime {
    v * MICROS_PER_DAY
}

/// A monotonically advancing virtual clock.
///
/// The clock never goes backwards; [`SimClock::advance_to`] with an earlier time is
/// a no-op rather than an error, which lets independent event sources feed it
/// out-of-order timestamps safely.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// Create a clock at virtual time zero.
    pub fn new() -> Self {
        Self { now: 0 }
    }

    /// Create a clock at a given starting time.
    pub fn starting_at(now: SimTime) -> Self {
        Self { now }
    }

    /// The current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance the clock by `delta` microseconds and return the new time.
    #[inline]
    pub fn advance(&mut self, delta: SimTime) -> SimTime {
        self.now += delta;
        self.now
    }

    /// Move the clock forward to `t` if `t` is in the future; never rewinds.
    #[inline]
    pub fn advance_to(&mut self, t: SimTime) -> SimTime {
        if t > self.now {
            self.now = t;
        }
        self.now
    }
}

/// An iterator over fixed-width ticks of virtual time: yields the start of each tick.
///
/// Used by the cluster simulator to drive data nodes at a fixed granularity
/// (e.g. 100 ms ticks) over a span of virtual hours.
#[derive(Debug, Clone)]
pub struct Ticks {
    next: SimTime,
    end: SimTime,
    step: SimTime,
}

impl Ticks {
    /// Ticks covering `[start, end)` at interval `step`.
    ///
    /// # Panics
    /// Panics if `step == 0`.
    pub fn new(start: SimTime, end: SimTime, step: SimTime) -> Self {
        assert!(step > 0, "tick step must be positive");
        Self {
            next: start,
            end,
            step,
        }
    }
}

impl Iterator for Ticks {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        if self.next >= self.end {
            return None;
        }
        let t = self.next;
        self.next += self.step;
        Some(t)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = if self.next >= self.end {
            0
        } else {
            ((self.end - self.next) as usize).div_ceil(self.step as usize)
        };
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Ticks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), 0);
        c.advance(ms(5));
        assert_eq!(c.now(), 5_000);
        c.advance(secs(1));
        assert_eq!(c.now(), 1_005_000);
    }

    #[test]
    fn clock_never_rewinds() {
        let mut c = SimClock::starting_at(secs(10));
        c.advance_to(secs(5));
        assert_eq!(c.now(), secs(10));
        c.advance_to(secs(20));
        assert_eq!(c.now(), secs(20));
    }

    #[test]
    fn unit_conversions_compose() {
        assert_eq!(days(1), hours(24));
        assert_eq!(hours(1), mins(60));
        assert_eq!(mins(1), secs(60));
        assert_eq!(secs(1), ms(1000));
    }

    #[test]
    fn ticks_cover_half_open_interval() {
        let ticks: Vec<_> = Ticks::new(0, secs(1), ms(250)).collect();
        assert_eq!(ticks, vec![0, 250_000, 500_000, 750_000]);
    }

    #[test]
    fn ticks_empty_when_start_at_end() {
        assert_eq!(Ticks::new(secs(3), secs(3), ms(100)).count(), 0);
    }

    #[test]
    fn ticks_exact_size() {
        let t = Ticks::new(0, ms(1000), ms(300));
        assert_eq!(t.len(), 4); // 0, 300, 600, 900
        assert_eq!(t.count(), 4);
    }

    #[test]
    #[should_panic(expected = "tick step must be positive")]
    fn ticks_reject_zero_step() {
        let _ = Ticks::new(0, 10, 0);
    }
}
