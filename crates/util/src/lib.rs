//! # abase-util
//!
//! Foundation utilities shared by every ABase crate:
//!
//! * [`clock`] — virtual (simulated) time. All ABase components are written against an
//!   explicit time parameter so that cluster-scale experiments run deterministically
//!   in virtual time instead of wall-clock time.
//! * [`stats`] — moving averages (the paper's "moving average of the last *k* requests"
//!   estimators, §4.1), EWMA, and Welford online mean/variance.
//! * [`histogram`] — log-bucketed histograms for latency percentiles (Figure 4).
//! * [`series`] — fixed-interval time series with the hourly resampling and
//!   hour-of-day max aggregation used by the rescheduler's load vectors (§5.3).
//! * [`testdir`] — self-cleaning temp directories shared by every crate's tests.
//! * [`failpoint`] — deterministic fault injection: named fail points in the
//!   storage and replication planes that a chaos harness arms from a seeded
//!   RNG (disabled — one atomic load — in normal operation).
//! * [`poller`] — a thin epoll wrapper (raw syscall bindings, no external
//!   crates) behind a safe `Poller`/`Waker` API: the readiness engine under
//!   the event-driven RESP front end.
//! * [`lockrank`] — ranked lock wrappers that turn the documented lock
//!   acquisition order into a runtime-checked invariant: any ordering
//!   inversion panics with both acquisition stacks under
//!   `debug_assertions` or the `lock-order-check` feature.

#![deny(missing_docs)]

pub mod clock;
pub mod failpoint;
pub mod histogram;
pub mod lockrank;
pub mod poller;
pub mod series;
pub mod stats;
pub mod testdir;

pub use clock::{SimClock, SimTime, Ticks};
pub use histogram::LatencyHistogram;
pub use lockrank::{Rank, RankedCondvar, RankedMutex, RankedRwLock};
pub use poller::{Event, Events, Interest, Poller, Waker};
pub use series::{hour_of_day_profile, Aggregation, TimeSeries};
pub use stats::{percentile, percentile_sorted, Ewma, MovingAverage, OnlineStats, WindowedRate};
pub use testdir::TestDir;
