//! Prometheus text exposition (version 0.0.4): [`render`] serialises the
//! whole registry, [`validate`] is a strict well-formedness checker used by
//! tests and the CI scrape gate.

use crate::metric::Histo;
use crate::registry::{entries, Handle};
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_histo(out: &mut String, name: &str, labels: &str, h: &Histo) {
    let counts = h.bucket_counts();
    let mut cumulative = 0u64;
    let mut sum = 0.0f64;
    for (i, &c) in counts.iter().enumerate() {
        sum += h.bucket_mid(i) * c as f64;
        cumulative += c;
        // Only materialise boundaries up to the last occupied bucket: the
        // layout has ~332 buckets and emitting every empty tail would bloat
        // the exposition ~50x for sparse histograms.
        if c > 0 {
            let sep = if labels.is_empty() { "" } else { "," };
            let _ = writeln!(
                out,
                "{name}_bucket{{{labels}{sep}le=\"{upper}\"}} {cumulative}",
                upper = h.bucket_upper(i)
            );
        }
    }
    let sep = if labels.is_empty() { "" } else { "," };
    let _ = writeln!(
        out,
        "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}"
    );
    let brace = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    let _ = writeln!(out, "{name}_sum{brace} {sum}");
    let _ = writeln!(out, "{name}_count{brace} {cumulative}");
}

/// Serialise every registered metric — plus the fail-point attribution
/// family `abase_failpoint_fired_total{point=…}` — as Prometheus text
/// exposition.
pub fn render() -> String {
    let mut out = String::new();
    for entry in entries() {
        let _ = writeln!(out, "# HELP {} {}", entry.name, entry.help);
        let _ = writeln!(
            out,
            "# TYPE {} {}",
            entry.name,
            entry.handle.kind().type_name()
        );
        match entry.handle {
            Handle::Counter(c) => {
                let _ = writeln!(out, "{} {}", entry.name, c.get());
            }
            Handle::Gauge(g) => {
                let _ = writeln!(out, "{} {}", entry.name, g.get());
            }
            Handle::Histo(h) => render_histo(&mut out, entry.name, "", h),
            Handle::CounterFamily(f) => {
                for (label, c) in f.members() {
                    let _ = writeln!(
                        out,
                        "{}{{{}=\"{}\"}} {}",
                        entry.name,
                        f.label_key(),
                        escape_label(&label),
                        c.get()
                    );
                }
            }
            Handle::GaugeFamily(f) => {
                for (label, g) in f.members() {
                    let _ = writeln!(
                        out,
                        "{}{{{}=\"{}\"}} {}",
                        entry.name,
                        f.label_key(),
                        escape_label(&label),
                        g.get()
                    );
                }
            }
            Handle::HistoFamily(f) => {
                for (label, h) in f.members() {
                    let labels = format!("{}=\"{}\"", f.label_key(), escape_label(&label));
                    render_histo(&mut out, entry.name, &labels, h);
                }
            }
        }
    }
    let fired = abase_util::failpoint::fired_counts();
    if !fired.is_empty() {
        let _ = writeln!(
            out,
            "# HELP abase_failpoint_fired_total Injected faults fired, by fail point"
        );
        let _ = writeln!(out, "# TYPE abase_failpoint_fired_total counter");
        for (point, n) in fired {
            let _ = writeln!(
                out,
                "abase_failpoint_fired_total{{point=\"{}\"}} {}",
                escape_label(point),
                n
            );
        }
    }
    out
}

/// The base family name of a sample: `_bucket`/`_sum`/`_count` suffixes fold
/// back onto the histogram family when one is declared under that name.
fn base_name<'a>(sample: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = sample.strip_suffix(suffix) {
            if types.get(stripped).map(String::as_str) == Some("histogram") {
                return stripped;
            }
        }
    }
    sample
}

/// A parsed sample line: `(metric name, label pairs, value)`.
type Sample = (String, Vec<(String, String)>, f64);

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_labels, value) = match line.rfind(' ') {
        Some(i) => (&line[..i], &line[i + 1..]),
        None => return Err(format!("sample without value: {line:?}")),
    };
    let value: f64 = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v
            .parse()
            .map_err(|_| format!("unparseable value {v:?} in {line:?}"))?,
    };
    let (name, labels) = match name_labels.find('{') {
        Some(i) => {
            let Some(body) = name_labels[i..]
                .strip_prefix('{')
                .and_then(|s| s.strip_suffix('}'))
            else {
                return Err(format!("unbalanced braces in {line:?}"));
            };
            let mut labels = Vec::new();
            for pair in body.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("label without '=' in {line:?}"))?;
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("unquoted label value in {line:?}"))?;
                labels.push((k.to_string(), v.to_string()));
            }
            (&name_labels[..i], labels)
        }
        None => (name_labels, Vec::new()),
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name.starts_with(|c: char| c.is_ascii_digit())
    {
        return Err(format!("invalid metric name {name:?}"));
    }
    Ok((name.to_string(), labels, value))
}

/// Check `text` is well-formed Prometheus exposition: every sample parses,
/// every sample's family has a `# TYPE`, histogram bucket series are
/// cumulative, terminated by `le="+Inf"`, and agree with `_count`.
pub fn validate(text: &str) -> Result<(), String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // (family, non-le labels) -> (last cumulative, saw +Inf, last le)
    let mut buckets: BTreeMap<String, (f64, bool, f64)> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (Some(name), Some(kind)) = (it.next(), it.next()) else {
                return Err(format!("malformed TYPE line {line:?}"));
            };
            if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                return Err(format!("unknown TYPE {kind:?} in {line:?}"));
            }
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (name, labels, value) = parse_sample(line)?;
        let family = base_name(&name, &types).to_string();
        if !types.contains_key(&family) {
            return Err(format!("sample {name:?} has no # TYPE declaration"));
        }
        let series_key = |labels: &[(String, String)]| {
            let mut other: Vec<String> = labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            other.sort();
            format!("{family}|{}", other.join(","))
        };
        if name == format!("{family}_bucket") {
            let le = labels
                .iter()
                .find(|(k, _)| k == "le")
                .ok_or_else(|| format!("bucket sample missing le: {line:?}"))?;
            let le_val = match le.1.as_str() {
                "+Inf" => f64::INFINITY,
                v => v.parse().map_err(|_| format!("bad le {v:?} in {line:?}"))?,
            };
            let slot =
                buckets
                    .entry(series_key(&labels))
                    .or_insert((0.0, false, f64::NEG_INFINITY));
            if value < slot.0 {
                return Err(format!("non-cumulative bucket in {line:?}"));
            }
            if le_val <= slot.2 {
                return Err(format!("non-increasing le boundary in {line:?}"));
            }
            slot.0 = value;
            slot.1 |= le_val.is_infinite();
            slot.2 = le_val;
        } else if name == format!("{family}_count") && types[&family] == "histogram" {
            counts.insert(series_key(&labels), value);
        }
    }
    for (series, (last, saw_inf, _)) in &buckets {
        if !saw_inf {
            return Err(format!("histogram series {series:?} missing le=\"+Inf\""));
        }
        if let Some(count) = counts.get(series) {
            if (count - last).abs() > f64::EPSILON {
                return Err(format!(
                    "histogram series {series:?}: _count {count} != +Inf bucket {last}"
                ));
            }
        } else {
            return Err(format!("histogram series {series:?} missing _count"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{LazyCounterFamily, LazyHisto};

    static EXPO_HISTO: LazyHisto = LazyHisto::new("test_expo_micros", "test");
    static EXPO_FAMILY: LazyCounterFamily =
        LazyCounterFamily::new("test_expo_ops_total", "op", "test");

    #[test]
    fn rendered_exposition_validates() {
        EXPO_HISTO.record(150);
        EXPO_HISTO.record(4_000);
        EXPO_HISTO.record(250_000);
        EXPO_FAMILY.inc("get");
        EXPO_FAMILY.inc("set");
        let text = render();
        validate(&text).expect("well-formed");
        assert!(text.contains("# TYPE test_expo_micros histogram"));
        assert!(text.contains("test_expo_micros_count 3"));
        assert!(text.contains("test_expo_micros_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("test_expo_ops_total{op=\"get\"} 1"));
    }

    #[test]
    fn validator_rejects_malformed_text() {
        assert!(validate("no_type_decl 1").is_err());
        assert!(validate("# TYPE x counter\nx notanumber").is_err());
        assert!(validate("# TYPE x counter\n1badname 3").is_err());
        // Non-cumulative buckets.
        let bad = "# TYPE h histogram\n\
                   h_bucket{le=\"1\"} 5\n\
                   h_bucket{le=\"2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\n\
                   h_sum 9\nh_count 5\n";
        assert!(validate(bad).unwrap_err().contains("non-cumulative"));
        // Missing +Inf.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate(bad).unwrap_err().contains("+Inf"));
        // Count disagrees with +Inf bucket.
        let bad = "# TYPE h histogram\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 4\n";
        assert!(validate(bad).unwrap_err().contains("_count"));
        // Good minimal doc passes.
        let good = "# HELP c helps\n# TYPE c counter\nc{op=\"a\"} 12\n";
        validate(good).expect("good doc");
    }
}
