//! # abase-obs — the observability plane
//!
//! One crate with four pieces, composed so the hot path pays one relaxed
//! atomic op per event and literally nothing when disabled:
//!
//! - [`metric`]: wait-free [`Counter`]/[`Gauge`]/[`Histo`] primitives. The
//!   histogram shares its log-bucket layout with
//!   `abase_util::LatencyHistogram` (10 µs–100 s, 5 % growth) and shards its
//!   buckets across threads, so recording is a single `fetch_add`.
//! - [`registry`]: the process-global name → metric table. Instrumentation
//!   sites declare `static` [`LazyCounter`]-style handles that register on
//!   first touch and stay `&'static` forever. A global enabled flag turns
//!   the whole plane into a no-op (the overhead-bench baseline).
//! - [`span`]/[`slowlog`]: per-operation tracing through the serving
//!   pipeline (parse → admission → engine → replication-wait → respond) and
//!   a bounded ring of threshold-beating slow ops with stage breakdowns.
//! - [`expo`]: Prometheus text exposition ([`render`]) plus the strict
//!   checker ([`validate`]) CI scrapes against.
//!
//! Consumers: lavastore, replication, core, and migration declare their
//! metrics where the work happens; `abase-core` serves the results over
//! RESP as `INFO`, `SLOWLOG`, and `METRICS`.

pub mod expo;
pub mod metric;
pub mod registry;
pub mod slowlog;
pub mod span;

pub use expo::{render, validate};
pub use metric::{Counter, Gauge, Histo};
pub use registry::{
    enabled, entries, histograms, set_enabled, snapshot, Entry, Family, Handle, LazyCounter,
    LazyCounterFamily, LazyGauge, LazyGaugeFamily, LazyHisto, LazyHistoFamily, MetricKind,
    Snapshot, Timer,
};
pub use slowlog::{SlowEntry, SlowLog, DEFAULT_THRESHOLD_MICROS};
pub use span::{Span, SpanReport, Stage, N_STAGES, STAGES};
