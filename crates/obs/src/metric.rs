//! The three metric primitives: atomic counters, gauges, and sharded
//! log-bucketed latency histograms.
//!
//! Everything here is wait-free on the record path: a counter increment or a
//! histogram observation is **one relaxed atomic op** (the histogram derives
//! its total count and approximate sum from the buckets at scrape time, so
//! recording touches exactly one bucket cell). Histograms additionally shard
//! their bucket arrays by thread so concurrent recorders on different cores
//! do not fight over one cache line.

use abase_util::LatencyHistogram;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (connection counts, lag, queue depths).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add (possibly negative) `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Bucket-layout parameters shared with
/// [`LatencyHistogram::for_latency_micros`]: 10 µs .. 100 s at 5 % growth.
/// Keeping the layouts identical means a [`Histo`] snapshot converts
/// losslessly into a `LatencyHistogram`, whose quantile math (geometric
/// bucket midpoints, bounded relative error) is reused rather than
/// reimplemented.
pub const HISTO_MIN: f64 = 10.0;
/// Upper clamp of the layout (values beyond land in the last bucket).
pub const HISTO_MAX: f64 = 100_000_000.0;
/// Per-bucket growth factor (~5 % relative error).
pub const HISTO_GROWTH: f64 = 1.05;

/// Bucket shards: concurrent recorders hash their thread onto one of these
/// so a hot histogram does not serialize every core on one cache line.
pub const HISTO_SHARDS: usize = 8;

fn n_buckets() -> usize {
    ((HISTO_MAX / HISTO_MIN).ln() / HISTO_GROWTH.ln()).ceil() as usize + 1
}

/// A stable per-thread shard index (threads are striped round-robin).
#[inline]
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    IDX.with(|i| *i) & (HISTO_SHARDS - 1)
}

/// A concurrent log-bucketed latency histogram (microsecond domain).
///
/// Recording computes the bucket index (pure arithmetic) and performs a
/// single relaxed `fetch_add` on the recorder thread's shard.
#[derive(Debug)]
pub struct Histo {
    log_growth: f64,
    shards: Box<[Box<[AtomicU64]>]>,
}

impl Default for Histo {
    fn default() -> Self {
        Self::new()
    }
}

impl Histo {
    /// An empty histogram with the shared latency layout.
    pub fn new() -> Self {
        let buckets = n_buckets();
        let shards = (0..HISTO_SHARDS)
            .map(|_| {
                (0..buckets)
                    .map(|_| AtomicU64::new(0))
                    .collect::<Vec<_>>()
                    .into_boxed_slice()
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            log_growth: HISTO_GROWTH.ln(),
            shards,
        }
    }

    #[inline]
    fn bucket_index(&self, micros: u64) -> usize {
        if micros as f64 <= HISTO_MIN {
            return 0;
        }
        let idx = ((micros as f64 / HISTO_MIN).ln() / self.log_growth) as usize;
        idx.min(self.shards[0].len() - 1)
    }

    /// Record one observation of `micros`. One relaxed atomic op.
    #[inline]
    pub fn record(&self, micros: u64) {
        let idx = self.bucket_index(micros);
        self.shards[shard_index()][idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Per-bucket totals summed across shards.
    pub fn bucket_counts(&self) -> Vec<u64> {
        let buckets = self.shards[0].len();
        let mut out = vec![0u64; buckets];
        for shard in self.shards.iter() {
            for (total, cell) in out.iter_mut().zip(shard.iter()) {
                *total += cell.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// The geometric midpoint of bucket `i` (the value quantiles report for
    /// observations that landed there).
    pub fn bucket_mid(&self, i: usize) -> f64 {
        HISTO_MIN * (self.log_growth * (i as f64 + 0.5)).exp()
    }

    /// The upper bound of bucket `i` (Prometheus `le` boundary).
    pub fn bucket_upper(&self, i: usize) -> f64 {
        HISTO_MIN * (self.log_growth * (i as f64 + 1.0)).exp()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.bucket_counts().iter().sum()
    }

    /// Convert to a [`LatencyHistogram`] with the identical layout, reusing
    /// its quantile math. Approximate sum/mean come from bucket midpoints
    /// (bounded relative error, same contract as the quantiles).
    pub fn to_latency_histogram(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new(HISTO_MIN, HISTO_MAX, HISTO_GROWTH);
        for (i, &c) in self.bucket_counts().iter().enumerate() {
            if c > 0 {
                h.record_n(self.bucket_mid(i), c);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histo_layout_matches_latency_histogram() {
        let h = Histo::new();
        for i in 1..=10_000u64 {
            h.record(i * 10); // 10 µs .. 100 ms uniformly
        }
        assert_eq!(h.count(), 10_000);
        let lat = h.to_latency_histogram();
        assert_eq!(lat.count(), 10_000);
        let p50 = lat.quantile(0.5).unwrap();
        let p99 = lat.quantile(0.99).unwrap();
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.07, "p50={p50}");
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.07, "p99={p99}");
    }

    #[test]
    fn histo_midpoints_map_back_to_their_bucket() {
        // Below bucket ~20 the bucket width drops under 1 µs, so integer
        // micros cannot distinguish neighbours; recording is integer-valued,
        // but the f64 midpoints used by `to_latency_histogram` must round-trip
        // everywhere integers can represent the bucket.
        let h = Histo::new();
        for i in [0usize, 30, 60, 100, 200, 331] {
            let mid = h.bucket_mid(i);
            assert_eq!(h.bucket_index(mid as u64), i, "bucket {i} mid {mid}");
        }
    }

    #[test]
    fn histo_concurrent_records_land_in_shards() {
        let h = std::sync::Arc::new(Histo::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        h.record(500);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }
}
