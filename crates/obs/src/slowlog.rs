//! The SLOWLOG: a bounded ring of recent operations that exceeded a
//! configurable latency threshold, each carrying its per-stage breakdown.
//!
//! Redis-compatible surface (`SLOWLOG GET/RESET/LEN`, threshold semantics:
//! `0` logs everything, negative disables) but each entry additionally keeps
//! the span's stage timings so a slow op answers "where did the time go"
//! without a profiler. The log is per-server-instance, not process-global:
//! embedded tests run many servers in one process and must not see each
//! other's slow ops.

use crate::span::SpanReport;
use abase_util::lockrank::{rank, RankedMutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Default capture threshold: 10 ms, Redis's default `slowlog-log-slower-than`.
pub const DEFAULT_THRESHOLD_MICROS: i64 = 10_000;

/// Default ring capacity (Redis `slowlog-max-len` default is 128).
pub const DEFAULT_CAPACITY: usize = 128;

/// One captured slow operation.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// Monotone per-log id (never reused, survives RESET like Redis).
    pub id: u64,
    /// Unix timestamp (seconds) when the op completed.
    pub unix_secs: u64,
    /// End-to-end duration.
    pub duration_micros: u64,
    /// The command line, as parsed argv (`["SET", "k", "…"]`).
    pub command: Vec<String>,
    /// `(stage-name, micros)` for every stage that saw time.
    pub stages: Vec<(&'static str, u64)>,
}

/// A bounded ring of [`SlowEntry`]s with a runtime-tunable threshold.
#[derive(Debug)]
pub struct SlowLog {
    threshold_micros: AtomicI64,
    next_id: AtomicU64,
    capacity: usize,
    entries: RankedMutex<VecDeque<SlowEntry>>,
}

impl Default for SlowLog {
    fn default() -> Self {
        Self::new(DEFAULT_THRESHOLD_MICROS, DEFAULT_CAPACITY)
    }
}

impl SlowLog {
    /// A log capturing ops slower than `threshold_micros` (0 = everything,
    /// negative = disabled), keeping the most recent `capacity` entries.
    pub fn new(threshold_micros: i64, capacity: usize) -> Self {
        Self {
            threshold_micros: AtomicI64::new(threshold_micros),
            next_id: AtomicU64::new(0),
            capacity: capacity.max(1),
            entries: RankedMutex::new(rank::OBS_SLOWLOG, VecDeque::new()),
        }
    }

    /// Current capture threshold in microseconds.
    pub fn threshold_micros(&self) -> i64 {
        self.threshold_micros.load(Ordering::Relaxed)
    }

    /// Retune the capture threshold.
    pub fn set_threshold_micros(&self, micros: i64) {
        self.threshold_micros.store(micros, Ordering::Relaxed);
    }

    /// Offer a finished span; captures it when it beats the threshold.
    /// `command` is only materialised on capture (the caller passes a
    /// closure so the fast path never allocates).
    pub fn observe(&self, report: &SpanReport, command: impl FnOnce() -> Vec<String>) {
        let threshold = self.threshold_micros();
        if threshold < 0 || report.total_micros < threshold as u64 {
            return;
        }
        let entry = SlowEntry {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            unix_secs: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            duration_micros: report.total_micros,
            command: command(),
            stages: report.stages().collect(),
        };
        let mut entries = self.entries.lock();
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
    }

    /// The most recent `count` entries, newest first (Redis `SLOWLOG GET`).
    pub fn get(&self, count: usize) -> Vec<SlowEntry> {
        self.entries
            .lock()
            .iter()
            .rev()
            .take(count)
            .cloned()
            .collect()
    }

    /// Number of captured entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (ids keep increasing, like Redis).
    pub fn reset(&self) {
        self.entries.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::N_STAGES;

    fn report(total: u64) -> SpanReport {
        let mut stage_micros = [0u64; N_STAGES];
        stage_micros[2] = total; // all in Engine
        SpanReport {
            total_micros: total,
            stage_micros,
        }
    }

    #[test]
    fn captures_only_past_threshold_and_bounds_ring() {
        let log = SlowLog::new(1000, 3);
        log.observe(&report(500), || vec!["FAST".into()]);
        assert!(log.is_empty());
        for i in 0..5u64 {
            log.observe(&report(2000 + i), || vec![format!("SLOW{i}")]);
        }
        assert_eq!(log.len(), 3, "ring bounded");
        let got = log.get(10);
        assert_eq!(got.len(), 3);
        // Newest first, ids monotone.
        assert_eq!(got[0].command, vec!["SLOW4".to_string()]);
        assert!(got[0].id > got[2].id);
        assert_eq!(got[0].stages, vec![("engine", 2004)]);
        log.reset();
        assert!(log.is_empty());
        // Ids survive reset.
        log.observe(&report(5000), || vec!["AFTER".into()]);
        assert!(log.get(1)[0].id >= 5);
    }

    #[test]
    fn threshold_zero_logs_everything_negative_disables() {
        let log = SlowLog::new(0, 8);
        log.observe(&report(1), || vec!["ANY".into()]);
        assert_eq!(log.len(), 1);
        log.set_threshold_micros(-1);
        log.observe(&report(u64::MAX / 2), || vec!["NEVER".into()]);
        assert_eq!(log.len(), 1);
        assert_eq!(log.threshold_micros(), -1);
    }
}
