//! Per-operation span tracing: one [`Span`] per served command, stamped at
//! each pipeline stage so slow operations can say *where* the time went.
//!
//! The stage model is the request pipeline of the RESP server:
//! parse → admission → engine → replication-wait → respond. A span records
//! the elapsed microseconds of each stage it passes through; when the whole
//! operation exceeds the SLOWLOG threshold the per-stage breakdown is
//! captured alongside the command (see [`crate::slowlog`]).
//!
//! When the registry is disabled a span is inert — no `Instant::now` calls
//! at all — so the tracer obeys the same no-op contract as the metrics.

use crate::metric::Histo;
use crate::registry::{self, LazyHistoFamily};
use std::sync::OnceLock;
use std::time::Instant;

/// The stages of one served operation, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// RESP frame decode + command parse.
    Parse = 0,
    /// Admission control: auth/consistency gating and RU accounting.
    Admission = 1,
    /// Storage-engine execution (lavastore read/write).
    Engine = 2,
    /// Waiting on replication acknowledgements (WAIT / write concern).
    ReplicationWait = 3,
    /// Serializing and writing the RESP reply.
    Respond = 4,
}

/// Number of stages (length of the per-span timing array).
pub const N_STAGES: usize = 5;

/// All stages in pipeline order.
pub const STAGES: [Stage; N_STAGES] = [
    Stage::Parse,
    Stage::Admission,
    Stage::Engine,
    Stage::ReplicationWait,
    Stage::Respond,
];

impl Stage {
    /// Stable lowercase name (metric label, INFO/SLOWLOG field).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Admission => "admission",
            Stage::Engine => "engine",
            Stage::ReplicationWait => "replication_wait",
            Stage::Respond => "respond",
        }
    }
}

/// Per-stage service latency across all commands, labelled by stage name.
static STAGE_MICROS: LazyHistoFamily = LazyHistoFamily::new(
    "abase_server_stage_micros",
    "stage",
    "Per-stage service latency of the RESP pipeline",
);

/// The five stage histograms, resolved once: `finish()` runs per served
/// command, so the per-label family probes are hoisted out of the hot path.
fn stage_histos() -> &'static [&'static Histo; N_STAGES] {
    static CELL: OnceLock<[&'static Histo; N_STAGES]> = OnceLock::new();
    CELL.get_or_init(|| STAGES.map(|s| STAGE_MICROS.with(s.name())))
}

/// One operation's trace: wall-clock start plus elapsed micros per stage.
///
/// Usage: [`Span::begin`] when the request arrives, [`Span::enter`] at each
/// stage boundary, [`Span::finish`] when the reply is written. Stages may be
/// skipped (a read never waits on replication); skipped stages report 0.
#[derive(Debug)]
pub struct Span {
    /// `None` when tracing is disabled — every method is then a no-op.
    clock: Option<SpanClock>,
    stage_micros: [u64; N_STAGES],
}

#[derive(Debug)]
struct SpanClock {
    started: Instant,
    stage_started: Instant,
    current: Stage,
}

impl Span {
    /// Start a span with the [`Stage::Parse`] stage open. Inert (no clock
    /// reads) while the registry is disabled.
    #[inline]
    pub fn begin() -> Self {
        let clock = if registry::enabled() {
            let now = Instant::now();
            Some(SpanClock {
                started: now,
                stage_started: now,
                current: Stage::Parse,
            })
        } else {
            None
        };
        Span {
            clock,
            stage_micros: [0; N_STAGES],
        }
    }

    /// Close the current stage and open `next`. Re-entering a stage
    /// accumulates into it.
    #[inline]
    pub fn enter(&mut self, next: Stage) {
        if let Some(clock) = &mut self.clock {
            let now = Instant::now();
            let elapsed = now.duration_since(clock.stage_started).as_micros() as u64;
            self.stage_micros[clock.current as usize] += elapsed;
            clock.stage_started = now;
            clock.current = next;
        }
    }

    /// Close the span: final stage is stamped, every traversed stage is
    /// recorded into the stage histograms, and the total duration plus the
    /// per-stage breakdown are returned (`None` when tracing was disabled).
    #[inline]
    pub fn finish(mut self) -> Option<SpanReport> {
        let clock = self.clock.take()?;
        let now = Instant::now();
        self.stage_micros[clock.current as usize] +=
            now.duration_since(clock.stage_started).as_micros() as u64;
        let total_micros = now.duration_since(clock.started).as_micros() as u64;
        let histos = stage_histos();
        for stage in STAGES {
            let micros = self.stage_micros[stage as usize];
            if micros > 0 {
                histos[stage as usize].record(micros);
            }
        }
        Some(SpanReport {
            total_micros,
            stage_micros: self.stage_micros,
        })
    }
}

/// The result of a finished span.
#[derive(Debug, Clone, Copy)]
pub struct SpanReport {
    /// End-to-end duration.
    pub total_micros: u64,
    /// Elapsed micros per stage, indexed by `Stage as usize`.
    pub stage_micros: [u64; N_STAGES],
}

impl SpanReport {
    /// `(stage-name, micros)` pairs for stages that saw time.
    pub fn stages(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        STAGES
            .iter()
            .map(|&s| (s.name(), self.stage_micros[s as usize]))
            .filter(|&(_, us)| us > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_accumulates_stage_times() {
        let mut span = Span::begin();
        std::thread::sleep(std::time::Duration::from_millis(2));
        span.enter(Stage::Engine);
        std::thread::sleep(std::time::Duration::from_millis(2));
        span.enter(Stage::Respond);
        let report = span.finish().expect("tracing enabled");
        assert!(report.total_micros >= 4000, "total={}", report.total_micros);
        assert!(report.stage_micros[Stage::Parse as usize] >= 2000);
        assert!(report.stage_micros[Stage::Engine as usize] >= 2000);
        // Admission and replication-wait were skipped entirely.
        assert_eq!(report.stage_micros[Stage::Admission as usize], 0);
        assert_eq!(report.stage_micros[Stage::ReplicationWait as usize], 0);
        let stages: Vec<_> = report.stages().collect();
        assert!(stages.iter().any(|&(name, _)| name == "parse"));
        assert!(!stages.iter().any(|&(name, _)| name == "admission"));
    }

    #[test]
    fn reentering_a_stage_accumulates() {
        let mut span = Span::begin();
        span.enter(Stage::Engine);
        std::thread::sleep(std::time::Duration::from_millis(1));
        span.enter(Stage::ReplicationWait);
        span.enter(Stage::Engine);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let report = span.finish().expect("tracing enabled");
        assert!(report.stage_micros[Stage::Engine as usize] >= 2000);
    }
}
