//! The process-global metrics registry and the lazy static handles
//! instrumentation sites hold.
//!
//! Hot paths declare metrics as `static` [`LazyCounter`]/[`LazyGauge`]/
//! [`LazyHisto`] (or the labelled `*Family` variants) and record through
//! them; the first touch registers the metric (leaking it, so handles are
//! `&'static` and recording never takes the registry lock). When the
//! registry is disabled ([`set_enabled`]) every record path short-circuits
//! after one relaxed load — that is the "no-op registry" arm the overhead
//! bench compares against.

use crate::metric::{Counter, Gauge, Histo};
use abase_util::lockrank::{rank, RankedMutex, RankedRwLock};
use abase_util::LatencyHistogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Is the registry recording? One relaxed load — every record path checks
/// this first, so a disabled registry costs nothing beyond the check.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on/off process-wide. Off = the no-op registry (used by the
/// overhead bench to measure what instrumentation costs).
pub fn set_enabled(on: bool) {
    // Relaxed on purpose (downgraded from SeqCst): the flag is advisory —
    // every record path already reads it Relaxed, and no data is published
    // through it, so the stronger ordering bought nothing.
    ENABLED.store(on, Ordering::Relaxed);
}

/// What a registered name is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Latency histogram (microseconds).
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn type_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A family keyed by one label: members are interned on first use and live
/// forever. The read path is a shared-lock map probe (cold compared to the
/// unlabelled handles — use those on the hottest paths).
#[derive(Debug)]
pub struct Family<T: 'static> {
    label_key: &'static str,
    members: RankedRwLock<BTreeMap<String, &'static T>>,
    make: fn() -> T,
}

impl<T: 'static> Family<T> {
    fn new(label_key: &'static str, make: fn() -> T) -> Self {
        Self {
            label_key,
            members: RankedRwLock::new(rank::OBS_FAMILY, BTreeMap::new()),
            make,
        }
    }

    /// The label key this family is partitioned by.
    pub fn label_key(&self) -> &'static str {
        self.label_key
    }

    /// The member for `label`, interning it on first use.
    pub fn with(&self, label: &str) -> &'static T {
        if let Some(m) = self.members.read().get(label) {
            return m;
        }
        let mut members = self.members.write();
        members
            .entry(label.to_string())
            .or_insert_with(|| Box::leak(Box::new((self.make)())))
    }

    /// Every interned `(label, member)` pair.
    pub fn members(&self) -> Vec<(String, &'static T)> {
        self.members
            .read()
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }
}

/// A registered metric's storage.
#[derive(Debug, Clone, Copy)]
pub enum Handle {
    /// Single counter.
    Counter(&'static Counter),
    /// Single gauge.
    Gauge(&'static Gauge),
    /// Single histogram.
    Histo(&'static Histo),
    /// Labelled counters.
    CounterFamily(&'static Family<Counter>),
    /// Labelled gauges.
    GaugeFamily(&'static Family<Gauge>),
    /// Labelled histograms.
    HistoFamily(&'static Family<Histo>),
}

impl Handle {
    /// The metric kind this handle stores.
    pub fn kind(&self) -> MetricKind {
        match self {
            Handle::Counter(_) | Handle::CounterFamily(_) => MetricKind::Counter,
            Handle::Gauge(_) | Handle::GaugeFamily(_) => MetricKind::Gauge,
            Handle::Histo(_) | Handle::HistoFamily(_) => MetricKind::Histogram,
        }
    }
}

/// One registry row.
#[derive(Debug, Clone, Copy)]
pub struct Entry {
    /// Metric family name (`abase_…_total`).
    pub name: &'static str,
    /// `# HELP` text.
    pub help: &'static str,
    /// The storage behind the name.
    pub handle: Handle,
}

fn metrics() -> &'static RankedMutex<BTreeMap<&'static str, Entry>> {
    static METRICS: OnceLock<RankedMutex<BTreeMap<&'static str, Entry>>> = OnceLock::new();
    METRICS.get_or_init(|| RankedMutex::new(rank::OBS_REGISTRY, BTreeMap::new()))
}

fn register(name: &'static str, help: &'static str, make: impl FnOnce() -> Handle) -> Handle {
    let mut map = metrics().lock();
    if let Some(existing) = map.get(name) {
        return existing.handle;
    }
    let handle = make();
    map.insert(name, Entry { name, help, handle });
    handle
}

/// Every registered entry, sorted by name.
pub fn entries() -> Vec<Entry> {
    metrics().lock().values().copied().collect()
}

/// A point-in-time scalar view of the registry, for assertions and deltas.
///
/// Keys are `name` for plain metrics and `name{label}` for family members;
/// histograms contribute `name_count` (observation totals). Counter and
/// count values only ever grow, so `delta ≥ x` assertions are safe even when
/// unrelated threads record concurrently.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    values: BTreeMap<String, f64>,
}

impl Snapshot {
    /// The scalar at `key` (0 when absent).
    pub fn value(&self, key: &str) -> f64 {
        self.values.get(key).copied().unwrap_or(0.0)
    }

    /// A counter's value summed across all its labels (covers both plain
    /// `name` and every `name{label}` member).
    pub fn counter(&self, name: &str) -> u64 {
        let prefix = format!("{name}{{");
        self.values
            .iter()
            .filter(|(k, _)| k.as_str() == name || k.starts_with(&prefix))
            .map(|(_, v)| *v)
            .sum::<f64>() as u64
    }

    /// Per-key saturating difference against an earlier snapshot (keys
    /// missing earlier count from zero).
    pub fn delta(&self, baseline: &Snapshot) -> Snapshot {
        let values = self
            .values
            .iter()
            .map(|(k, v)| (k.clone(), (v - baseline.value(k)).max(0.0)))
            .collect();
        Snapshot { values }
    }

    /// All `(key, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

/// Capture a [`Snapshot`] of every registered metric (plus fail-point fire
/// counts as `failpoint_fired_total{point}`).
pub fn snapshot() -> Snapshot {
    let mut values = BTreeMap::new();
    for entry in entries() {
        match entry.handle {
            Handle::Counter(c) => {
                values.insert(entry.name.to_string(), c.get() as f64);
            }
            Handle::Gauge(g) => {
                values.insert(entry.name.to_string(), g.get() as f64);
            }
            Handle::Histo(h) => {
                values.insert(format!("{}_count", entry.name), h.count() as f64);
            }
            Handle::CounterFamily(f) => {
                for (label, c) in f.members() {
                    values.insert(format!("{}{{{label}}}", entry.name), c.get() as f64);
                }
            }
            Handle::GaugeFamily(f) => {
                for (label, g) in f.members() {
                    values.insert(format!("{}{{{label}}}", entry.name), g.get() as f64);
                }
            }
            Handle::HistoFamily(f) => {
                for (label, h) in f.members() {
                    values.insert(format!("{}_count{{{label}}}", entry.name), h.count() as f64);
                }
            }
        }
    }
    for (point, fired) in abase_util::failpoint::fired_counts() {
        values.insert(format!("failpoint_fired_total{{{point}}}"), fired as f64);
    }
    Snapshot { values }
}

/// Every histogram currently registered, as `(display-name, histogram)`
/// pairs — `name` for plain histograms, `name{label}` for family members —
/// converted to [`LatencyHistogram`]s so callers can query quantiles.
pub fn histograms() -> Vec<(String, LatencyHistogram)> {
    let mut out = Vec::new();
    for entry in entries() {
        match entry.handle {
            Handle::Histo(h) => out.push((entry.name.to_string(), h.to_latency_histogram())),
            Handle::HistoFamily(f) => {
                for (label, h) in f.members() {
                    out.push((
                        format!("{}{{{label}}}", entry.name),
                        h.to_latency_histogram(),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

macro_rules! lazy_handle {
    ($(#[$doc:meta])* $name:ident, $metric:ty, $variant:ident, $register:ident) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            name: &'static str,
            help: &'static str,
            cell: OnceLock<&'static $metric>,
        }

        impl $name {
            /// Declare (without registering) a metric handle; registration
            /// happens on first touch.
            pub const fn new(name: &'static str, help: &'static str) -> Self {
                Self {
                    name,
                    help,
                    cell: OnceLock::new(),
                }
            }

            /// The registered metric (registering it now if needed).
            #[inline]
            pub fn metric(&self) -> &'static $metric {
                self.cell.get_or_init(|| {
                    match register(self.name, self.help, || {
                        Handle::$variant(Box::leak(Box::new(<$metric>::default())))
                    }) {
                        Handle::$variant(m) => m,
                        other => panic!(
                            "metric {} re-registered with a different kind ({:?})",
                            self.name, other
                        ),
                    }
                })
            }

            /// Force registration (so exposition lists the family even
            /// before the first event).
            pub fn touch(&self) {
                self.metric();
            }
        }
    };
}

lazy_handle!(
    /// A `static`-declarable counter handle.
    LazyCounter,
    Counter,
    Counter,
    register_counter
);
lazy_handle!(
    /// A `static`-declarable gauge handle.
    LazyGauge,
    Gauge,
    Gauge,
    register_gauge
);
lazy_handle!(
    /// A `static`-declarable histogram handle.
    LazyHisto,
    Histo,
    Histo,
    register_histo
);

impl LazyCounter {
    /// Add one (no-op while the registry is disabled).
    #[inline]
    pub fn inc(&self) {
        if enabled() {
            self.metric().inc();
        }
    }

    /// Add `n` (no-op while the registry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.metric().add(n);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.metric().get()
    }
}

impl LazyGauge {
    /// Overwrite the value (no-op while the registry is disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.metric().set(v);
        }
    }

    /// Add (possibly negative) `delta` (no-op while disabled).
    #[inline]
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.metric().add(delta);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.metric().get()
    }
}

impl LazyHisto {
    /// Record one observation of `micros` (no-op while disabled).
    #[inline]
    pub fn record(&self, micros: u64) {
        if enabled() {
            self.metric().record(micros);
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.metric().count()
    }
}

macro_rules! lazy_family {
    ($(#[$doc:meta])* $name:ident, $metric:ty, $variant:ident) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            name: &'static str,
            help: &'static str,
            label_key: &'static str,
            cell: OnceLock<&'static Family<$metric>>,
        }

        impl $name {
            /// Declare a labelled family; registration happens on first touch.
            pub const fn new(
                name: &'static str,
                label_key: &'static str,
                help: &'static str,
            ) -> Self {
                Self {
                    name,
                    help,
                    label_key,
                    cell: OnceLock::new(),
                }
            }

            /// The registered family (registering it now if needed).
            #[inline]
            pub fn family(&self) -> &'static Family<$metric> {
                let label_key = self.label_key;
                self.cell.get_or_init(|| {
                    match register(self.name, self.help, || {
                        Handle::$variant(Box::leak(Box::new(Family::new(
                            label_key,
                            <$metric>::default,
                        ))))
                    }) {
                        Handle::$variant(f) => f,
                        other => panic!(
                            "metric {} re-registered with a different kind ({:?})",
                            self.name, other
                        ),
                    }
                })
            }

            /// Force registration.
            pub fn touch(&self) {
                self.family();
            }

            /// The member for `label` (interned on first use).
            pub fn with(&self, label: &str) -> &'static $metric {
                self.family().with(label)
            }
        }
    };
}

lazy_family!(
    /// A `static`-declarable labelled counter family.
    LazyCounterFamily,
    Counter,
    CounterFamily
);
lazy_family!(
    /// A `static`-declarable labelled gauge family.
    LazyGaugeFamily,
    Gauge,
    GaugeFamily
);
lazy_family!(
    /// A `static`-declarable labelled histogram family.
    LazyHistoFamily,
    Histo,
    HistoFamily
);

impl LazyCounterFamily {
    /// Add one to `label`'s counter (no-op while disabled).
    #[inline]
    pub fn inc(&self, label: &str) {
        if enabled() {
            self.with(label).inc();
        }
    }

    /// Add `n` to `label`'s counter (no-op while disabled).
    #[inline]
    pub fn add(&self, label: &str, n: u64) {
        if enabled() {
            self.with(label).add(n);
        }
    }
}

impl LazyGaugeFamily {
    /// Set `label`'s gauge (no-op while disabled).
    #[inline]
    pub fn set(&self, label: &str, v: i64) {
        if enabled() {
            self.with(label).set(v);
        }
    }
}

impl LazyHistoFamily {
    /// Record into `label`'s histogram (no-op while disabled).
    #[inline]
    pub fn record(&self, label: &str, micros: u64) {
        if enabled() {
            self.with(label).record(micros);
        }
    }
}

/// A start/stop wall-clock timer that is free when the registry is disabled
/// (no `Instant::now` call on either end).
#[derive(Debug)]
pub struct Timer(Option<Instant>);

impl Timer {
    /// Start timing (a no-op returning an inert timer while disabled).
    #[inline]
    pub fn start() -> Self {
        Timer(if enabled() {
            Some(Instant::now())
        } else {
            None
        })
    }

    /// Elapsed microseconds, if the timer is live.
    #[inline]
    pub fn elapsed_micros(&self) -> Option<u64> {
        self.0.map(|t| t.elapsed().as_micros() as u64)
    }

    /// Record the elapsed time into `histo` and stop.
    #[inline]
    pub fn observe(self, histo: &LazyHisto) {
        if let Some(t) = self.0 {
            histo.record(t.elapsed().as_micros() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static T_COUNTER: LazyCounter = LazyCounter::new("test_registry_counter_total", "test");
    static T_GAUGE: LazyGauge = LazyGauge::new("test_registry_gauge", "test");
    static T_HISTO: LazyHisto = LazyHisto::new("test_registry_micros", "test");
    static T_FAMILY: LazyCounterFamily =
        LazyCounterFamily::new("test_registry_family_total", "op", "test");

    #[test]
    fn handles_register_once_and_record() {
        T_COUNTER.inc();
        T_COUNTER.add(2);
        T_GAUGE.set(5);
        T_HISTO.record(1234);
        T_FAMILY.inc("get");
        T_FAMILY.inc("get");
        T_FAMILY.inc("set");
        assert_eq!(T_COUNTER.get(), 3);
        assert_eq!(T_GAUGE.get(), 5);
        assert_eq!(T_HISTO.count(), 1);
        let snap = snapshot();
        assert_eq!(snap.value("test_registry_counter_total"), 3.0);
        assert_eq!(snap.value("test_registry_gauge"), 5.0);
        assert_eq!(snap.value("test_registry_micros_count"), 1.0);
        assert_eq!(snap.value("test_registry_family_total{get}"), 2.0);
        assert_eq!(snap.counter("test_registry_family_total"), 3);
        // Deltas never go negative and count only growth.
        let base = snap.clone();
        T_COUNTER.inc();
        let delta = snapshot().delta(&base);
        assert_eq!(delta.value("test_registry_counter_total"), 1.0);
    }

    #[test]
    fn disabled_registry_drops_records() {
        static OFF: LazyCounter = LazyCounter::new("test_registry_off_total", "test");
        OFF.touch();
        let before = OFF.get();
        set_enabled(false);
        OFF.inc();
        let timer = Timer::start();
        assert!(timer.elapsed_micros().is_none());
        set_enabled(true);
        assert_eq!(OFF.get(), before);
        OFF.inc();
        assert_eq!(OFF.get(), before + 1);
    }

    #[test]
    fn histograms_are_queryable_by_name() {
        static Q: LazyHisto = LazyHisto::new("test_registry_quantile_micros", "test");
        for _ in 0..100 {
            Q.record(1000);
        }
        let histos = histograms();
        let (_, lat) = histos
            .iter()
            .find(|(name, _)| name == "test_registry_quantile_micros")
            .expect("histogram registered");
        let p50 = lat.quantile(0.5).unwrap();
        assert!((p50 - 1000.0).abs() / 1000.0 < 0.06, "p50={p50}");
    }
}
