//! Synthetic tenant populations matching Figures 3–4.
//!
//! Figure 3 shows tenants scattered over (RU, storage) with correlated axes
//! and a read-ratio structure: "tenants with a larger ratio of RU to storage
//! tend to indicate a read-heavy workload". Figure 4 gives the per-tenant
//! marginal distributions: cache hit p50 ≈ 93.5 %, read ratio p50 ≈ 39.3 %,
//! KV size p50 ≈ 0.12 KB / p90 ≈ 50 KB / p99 ≈ 308 KB. The generator below
//! reproduces those shapes from a seed.

use crate::dist::{standard_normal, LogNormal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One synthetic tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct Tenant {
    /// Tenant id.
    pub id: u32,
    /// Average RU rate (normalized units, median ≈ 1.0).
    pub ru: f64,
    /// Average storage (normalized units, median ≈ 1.0).
    pub storage: f64,
    /// Read operation ratio in `[0, 1]`.
    pub read_ratio: f64,
    /// Cache hit ratio in `[0, 1]`.
    pub cache_hit_ratio: f64,
    /// Mean KV size in bytes.
    pub kv_bytes: f64,
    /// Partitions the tenant's table is split into.
    pub partitions: u32,
}

/// A generated tenant population.
#[derive(Debug, Clone)]
pub struct TenantPopulation {
    /// The tenants.
    pub tenants: Vec<Tenant>,
}

impl TenantPopulation {
    /// Generate `n` tenants from `seed`.
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // KV sizes are a two-component mixture: most tenants store tiny
        // values (comments, tags), a ~10 % cohort stores documents/blobs.
        // Calibrated to Figure 4d: p50 ≈ 0.12 KB, p90 ≈ 50 KB, p99 ≈ 308 KB.
        let kv_small = LogNormal::new(120.0_f64.ln(), 2.0);
        let kv_large = LogNormal::new(60_000.0_f64.ln(), 1.1);
        let mut tenants = Vec::with_capacity(n);
        for id in 0..n {
            // Correlated log-normal RU/storage: a shared scale factor plus
            // independent per-axis variation (Figure 3's diagonal cloud with
            // off-diagonal outliers).
            let shared = standard_normal(&mut rng);
            let ru_noise = standard_normal(&mut rng);
            let sto_noise = standard_normal(&mut rng);
            let ru = (0.8 * shared + 0.9 * ru_noise).exp();
            let storage = (0.8 * shared + 0.9 * sto_noise).exp();
            // Read ratio rises with the RU/storage ratio (lower-right of the
            // Fig. 3 scatter is dark = read-heavy), with noise, clamped.
            let log_ratio = (ru / storage).ln();
            let read_ratio = sigmoid(0.9 * log_ratio - 0.4 + 0.8 * standard_normal(&mut rng));
            // Cache hit ratio: most tenants cache very well (p50 ≈ 93.5 %),
            // with a long tail of poorly-caching tenants. Beta-like shape via
            // a transformed uniform.
            let u: f64 = rng.gen();
            // Calibrated so p50 ≈ 93.5 %, p90 ≈ 99.9 % (Figure 4b) with a
            // long tail of poorly-caching tenants below.
            let cache_hit_ratio = 1.0 - (1.0 - u).powf(3.9) * 0.95;
            let kv_bytes = if rng.gen::<f64>() < 0.10 {
                kv_large.sample(&mut rng).min((1u64 << 20) as f64) // blobs capped at 1 MB
            } else {
                kv_small.sample(&mut rng).min((64u64 << 10) as f64)
            };
            // Partition count scales with tenant size.
            let partitions = (ru.sqrt() * 4.0).clamp(1.0, 512.0) as u32;
            tenants.push(Tenant {
                id: id as u32,
                ru,
                storage,
                read_ratio,
                cache_hit_ratio,
                kv_bytes,
                partitions: partitions.max(1),
            });
        }
        Self { tenants }
    }

    /// Percentile of an extracted metric.
    pub fn percentile(&self, q: f64, metric: impl Fn(&Tenant) -> f64) -> f64 {
        let mut v: Vec<f64> = self.tenants.iter().map(metric).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite metric"));
        abase_util::percentile_sorted(&v, q)
    }

    /// Pearson correlation between two tenant metrics.
    pub fn correlation(&self, a: impl Fn(&Tenant) -> f64, b: impl Fn(&Tenant) -> f64) -> f64 {
        let xs: Vec<f64> = self.tenants.iter().map(a).collect();
        let ys: Vec<f64> = self.tenants.iter().map(b).collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
        cov / (vx.sqrt() * vy.sqrt()).max(1e-12)
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let a = TenantPopulation::generate(100, 9);
        let b = TenantPopulation::generate(100, 9);
        assert_eq!(a.tenants, b.tenants);
        let c = TenantPopulation::generate(100, 10);
        assert_ne!(a.tenants, c.tenants);
    }

    #[test]
    fn ru_and_storage_are_positively_correlated() {
        let p = TenantPopulation::generate(2000, 1);
        let corr = p.correlation(|t| t.ru.ln(), |t| t.storage.ln());
        assert!(corr > 0.3, "corr={corr}");
    }

    #[test]
    fn read_ratio_rises_with_ru_storage_ratio() {
        let p = TenantPopulation::generate(2000, 1);
        let corr = p.correlation(|t| (t.ru / t.storage).ln(), |t| t.read_ratio);
        assert!(corr > 0.4, "corr={corr}");
    }

    #[test]
    fn kv_size_tail_matches_figure4d() {
        let p = TenantPopulation::generate(5000, 2);
        let p50 = p.percentile(0.50, |t| t.kv_bytes);
        let p90 = p.percentile(0.90, |t| t.kv_bytes);
        let p99 = p.percentile(0.99, |t| t.kv_bytes);
        // Paper: 0.12 KB / 50 KB / 308 KB. Accept generous tolerances on the
        // extreme tail of a finite sample.
        assert!((p50 / 120.0 - 1.0).abs() < 0.4, "p50={p50}");
        assert!(p90 > 10_000.0 && p90 < 200_000.0, "p90={p90}");
        assert!(p99 > 100_000.0 && p99 < 900_000.0, "p99={p99}");
    }

    #[test]
    fn cache_hit_median_matches_figure4b() {
        let p = TenantPopulation::generate(5000, 3);
        let p50 = p.percentile(0.50, |t| t.cache_hit_ratio);
        assert!((0.85..=0.98).contains(&p50), "p50={p50}");
        // And a tail of poorly-caching tenants exists.
        let p10 = p.percentile(0.10, |t| t.cache_hit_ratio);
        assert!(p10 < 0.6, "p10={p10}");
    }

    #[test]
    fn read_ratio_median_matches_figure4c() {
        // Paper: p50 read ratio ≈ 39.3 % (write-heavy median) with a large
        // read-heavy cohort.
        let p = TenantPopulation::generate(5000, 4);
        let p50 = p.percentile(0.50, |t| t.read_ratio);
        assert!((0.25..=0.55).contains(&p50), "p50={p50}");
        let read_heavy = p.tenants.iter().filter(|t| t.read_ratio > 0.5).count();
        assert!(read_heavy as f64 / 5000.0 > 0.25);
    }

    #[test]
    fn partitions_scale_with_size() {
        let p = TenantPopulation::generate(2000, 5);
        let big = p
            .tenants
            .iter()
            .max_by(|a, b| a.ru.partial_cmp(&b.ru).unwrap())
            .unwrap();
        let small = p
            .tenants
            .iter()
            .min_by(|a, b| a.ru.partial_cmp(&b.ru).unwrap())
            .unwrap();
        assert!(big.partitions > small.partitions);
        assert!(p.tenants.iter().all(|t| t.partitions >= 1));
    }
}
