//! Deterministic samplers implemented on top of `rand`'s core RNG.

use rand::Rng;

/// Zipf-distributed ranks over `{0, …, n−1}` with exponent `s`.
///
/// Uses an inverse-CDF table (O(n) build, O(log n) sample) — exact, fast for
/// the keyspace sizes the cache experiments use, and free of the rejection
/// loops that make sampling time data-dependent.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A Zipf distribution over `n` items with skew `s ≥ 0` (`s = 0` is
    /// uniform; `s ≈ 1` is the classic web-cache skew).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one item");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of items.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Sample a rank in `{0, …, n−1}` (0 = most popular).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

/// Log-normal sampler via Box-Muller.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    /// Mean of the underlying normal.
    pub mu: f64,
    /// Std-dev of the underlying normal.
    pub sigma: f64,
}

impl LogNormal {
    /// From the underlying normal parameters.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0);
        Self { mu, sigma }
    }

    /// Parametrize by target median and the ratio `p90 / median` (a natural way
    /// to express the paper's long-tailed size distributions).
    pub fn from_median_p90(median: f64, p90_over_median: f64) -> Self {
        assert!(median > 0.0 && p90_over_median >= 1.0);
        // For log-normal: p90/median = exp(1.2816 σ).
        let sigma = p90_over_median.ln() / 1.2816;
        Self {
            mu: median.ln(),
            sigma,
        }
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// One standard-normal draw (Box-Muller; uses two uniforms per call —
/// simplicity over caching the second deviate).
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_rank_zero_is_most_popular() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[500]);
        // Rank-0 share for s=1, n=1000 is 1/H_1000 ≈ 13.4 %.
        let share = counts[0] as f64 / 100_000.0;
        assert!((share - 0.134).abs() < 0.02, "share={share}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(100, 1.2);
        let total: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_deterministic_under_seed() {
        let z = Zipf::new(50, 0.9);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn lognormal_median_matches() {
        let d = LogNormal::from_median_p90(120.0, 50_000.0 / 120.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let p90 = samples[(samples.len() as f64 * 0.9) as usize];
        assert!((median / 120.0 - 1.0).abs() < 0.1, "median={median}");
        assert!((p90 / 50_000.0 - 1.0).abs() < 0.25, "p90={p90}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }
}
