//! # abase-workload
//!
//! Synthetic workload generation standing in for ByteDance production traces.
//!
//! * [`profiles`] — the seven business workloads of **Table 1** (social-media
//!   comments and DMs, e-commerce metadata, search forward-index, ad message
//!   joiner, recommendation dedup, LLM KV-cache) with their normalized
//!   throughput/storage, hit ratios, read ratios, KV sizes, and TTLs.
//! * [`dist`] — deterministic samplers: Zipf (hot keys), log-normal (sizes and
//!   tenant scales), Box-Muller normal — implemented in-tree so the dependency
//!   set stays at the sanctioned `rand`.
//! * [`population`] — tenant populations matching the **Figure 3/4**
//!   distributions (correlated RU/storage, read-ratio structure, long-tailed
//!   KV sizes).
//! * [`keys`] — keyed request streams over a keyspace with tunable skew.
//! * [`scenarios`] — traffic shapes for the **Figure 5–7** experiments
//!   (bursts, ramps, hot-key events, cache-dilution shifts).
//! * [`series`] — synthetic hourly metric series with trend, seasonality,
//!   bursts, and changepoints for the **Figure 8** forecasting experiments.

#![deny(missing_docs)]

pub mod dist;
pub mod keys;
pub mod population;
pub mod profiles;
pub mod scenarios;
pub mod series;

pub use dist::{LogNormal, Zipf};
pub use keys::{KeyspaceConfig, RequestGen, RequestSpec};
pub use population::{Tenant, TenantPopulation};
pub use profiles::{WorkloadProfile, TABLE1_PROFILES};
pub use scenarios::TrafficShape;
