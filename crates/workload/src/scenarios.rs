//! Traffic shapes for the isolation and dynamism experiments.
//!
//! Figures 5–7 are driven by piecewise traffic intensities: steady floors,
//! step bursts at a given minute, ramps, and temporary plateaus. A
//! [`TrafficShape`] maps virtual time to a QPS level; experiment harnesses
//! combine shapes with [`crate::keys::RequestGen`] streams.

use abase_util::clock::SimTime;

/// A piecewise traffic intensity over virtual time.
#[derive(Debug, Clone)]
pub enum TrafficShape {
    /// Constant QPS.
    Steady(f64),
    /// `base` QPS, stepping to `burst` QPS inside `[start, end)`.
    StepBurst {
        /// Baseline QPS.
        base: f64,
        /// Burst QPS.
        burst: f64,
        /// Burst start.
        start: SimTime,
        /// Burst end (exclusive).
        end: SimTime,
    },
    /// Linear ramp from `from` QPS to `to` QPS over `[start, end)`, holding
    /// `to` afterwards.
    Ramp {
        /// Starting QPS.
        from: f64,
        /// Final QPS.
        to: f64,
        /// Ramp start.
        start: SimTime,
        /// Ramp end.
        end: SimTime,
    },
    /// Sinusoidal diurnal pattern: `mean ± amplitude` with the given period.
    Diurnal {
        /// Mean QPS.
        mean: f64,
        /// Peak deviation from the mean.
        amplitude: f64,
        /// Cycle length.
        period: SimTime,
    },
    /// Sum of two shapes (e.g. diurnal + burst).
    Sum(Box<TrafficShape>, Box<TrafficShape>),
}

impl TrafficShape {
    /// QPS at virtual time `t`.
    pub fn qps_at(&self, t: SimTime) -> f64 {
        match self {
            TrafficShape::Steady(q) => *q,
            TrafficShape::StepBurst {
                base,
                burst,
                start,
                end,
            } => {
                if t >= *start && t < *end {
                    *burst
                } else {
                    *base
                }
            }
            TrafficShape::Ramp {
                from,
                to,
                start,
                end,
            } => {
                if t < *start {
                    *from
                } else if t >= *end {
                    *to
                } else {
                    let frac = (t - start) as f64 / (end - start) as f64;
                    from + (to - from) * frac
                }
            }
            TrafficShape::Diurnal {
                mean,
                amplitude,
                period,
            } => {
                let phase = (t % period) as f64 / *period as f64;
                mean + amplitude * (2.0 * std::f64::consts::PI * phase).sin()
            }
            TrafficShape::Sum(a, b) => a.qps_at(t) + b.qps_at(t),
        }
    }

    /// Number of requests to issue for a tick of `tick_len` starting at `t`,
    /// with deterministic fractional accumulation handled by the caller.
    pub fn requests_in_tick(&self, t: SimTime, tick_len: SimTime) -> f64 {
        self.qps_at(t) * tick_len as f64 / 1_000_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abase_util::clock::{mins, secs};

    #[test]
    fn steady_is_flat() {
        let s = TrafficShape::Steady(100.0);
        assert_eq!(s.qps_at(0), 100.0);
        assert_eq!(s.qps_at(mins(60)), 100.0);
    }

    #[test]
    fn step_burst_fires_in_window() {
        let s = TrafficShape::StepBurst {
            base: 100.0,
            burst: 5000.0,
            start: mins(10),
            end: mins(30),
        };
        assert_eq!(s.qps_at(mins(9)), 100.0);
        assert_eq!(s.qps_at(mins(10)), 5000.0);
        assert_eq!(s.qps_at(mins(29)), 5000.0);
        assert_eq!(s.qps_at(mins(30)), 100.0);
    }

    #[test]
    fn ramp_interpolates() {
        let s = TrafficShape::Ramp {
            from: 0.0,
            to: 100.0,
            start: secs(0),
            end: secs(100),
        };
        assert_eq!(s.qps_at(secs(0)), 0.0);
        assert!((s.qps_at(secs(50)) - 50.0).abs() < 1e-9);
        assert_eq!(s.qps_at(secs(200)), 100.0);
    }

    #[test]
    fn diurnal_oscillates() {
        let s = TrafficShape::Diurnal {
            mean: 100.0,
            amplitude: 50.0,
            period: mins(60),
        };
        assert!((s.qps_at(0) - 100.0).abs() < 1e-9);
        assert!((s.qps_at(mins(15)) - 150.0).abs() < 1e-9); // quarter period
        assert!((s.qps_at(mins(45)) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn sum_composes() {
        let s = TrafficShape::Sum(
            Box::new(TrafficShape::Steady(10.0)),
            Box::new(TrafficShape::Steady(5.0)),
        );
        assert_eq!(s.qps_at(0), 15.0);
    }

    #[test]
    fn requests_in_tick_scales_with_tick() {
        let s = TrafficShape::Steady(1000.0);
        assert!((s.requests_in_tick(0, secs(1)) - 1000.0).abs() < 1e-9);
        assert!((s.requests_in_tick(0, 100_000) - 100.0).abs() < 1e-9); // 100 ms
    }
}
