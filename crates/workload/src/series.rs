//! Synthetic hourly metric series for the forecasting experiments (Figure 8).
//!
//! Builds 30-day hourly usage series exhibiting the paper's §5.2 phenomena:
//! trend, daily/weekly/3.5-day seasonality, noise, sporadic spikes, co-spiking
//! metric glitches, and trend changepoints.

use abase_util::TimeSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// Hourly sampling interval in virtual microseconds.
pub const HOUR: u64 = 3_600_000_000;

/// Declarative description of a synthetic series.
#[derive(Debug, Clone)]
pub struct SeriesSpec {
    /// Length in hours.
    pub hours: usize,
    /// Base level.
    pub base: f64,
    /// Linear trend per hour.
    pub trend_per_hour: f64,
    /// (period in hours, amplitude) seasonal components.
    pub seasonal: Vec<(f64, f64)>,
    /// Multiplicative noise std-dev (0 = deterministic).
    pub noise: f64,
    /// (hour, magnitude) one-off spikes.
    pub spikes: Vec<(usize, f64)>,
    /// (hour, new level offset) step changes.
    pub steps: Vec<(usize, f64)>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SeriesSpec {
    fn default() -> Self {
        Self {
            hours: 720,
            base: 100.0,
            trend_per_hour: 0.0,
            seasonal: vec![(24.0, 20.0)],
            noise: 0.02,
            spikes: Vec::new(),
            steps: Vec::new(),
            seed: 0,
        }
    }
}

impl SeriesSpec {
    /// Materialize the series.
    pub fn build(&self) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut values = Vec::with_capacity(self.hours);
        for t in 0..self.hours {
            let mut v = self.base + self.trend_per_hour * t as f64;
            for &(period, amplitude) in &self.seasonal {
                v += amplitude * (2.0 * PI * t as f64 / period).sin();
            }
            for &(hour, offset) in &self.steps {
                if t >= hour {
                    v += offset;
                }
            }
            if self.noise > 0.0 {
                let n: f64 = rng.gen_range(-1.0..1.0);
                v *= 1.0 + self.noise * n;
            }
            for &(hour, magnitude) in &self.spikes {
                if t == hour {
                    v += magnitude;
                }
            }
            values.push(v.max(0.0));
        }
        TimeSeries::new(0, HOUR, values)
    }
}

/// The Figure-8a case: disk usage with 24-hour periodicity and steady growth.
pub fn fig8a_disk_usage(days: usize, seed: u64) -> TimeSeries {
    SeriesSpec {
        hours: days * 24,
        base: 550.0,
        trend_per_hour: 0.55,
        seasonal: vec![(24.0, 60.0)],
        noise: 0.015,
        seed,
        ..Default::default()
    }
    .build()
}

/// A constant quota series aligned with `usage` (for co-spike denoising).
pub fn flat_quota_like(usage: &TimeSeries, level: f64) -> TimeSeries {
    TimeSeries::new(usage.start(), usage.interval(), vec![level; usage.len()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_has_requested_shape() {
        let s = SeriesSpec {
            hours: 48,
            base: 100.0,
            trend_per_hour: 1.0,
            seasonal: vec![],
            noise: 0.0,
            ..Default::default()
        }
        .build();
        assert_eq!(s.len(), 48);
        assert!((s.values()[0] - 100.0).abs() < 1e-9);
        assert!((s.values()[47] - 147.0).abs() < 1e-9);
    }

    #[test]
    fn seasonality_produces_daily_peaks() {
        let s = SeriesSpec {
            noise: 0.0,
            ..Default::default()
        }
        .build();
        // Max near base+amplitude, min near base−amplitude.
        assert!((s.max().unwrap() - 120.0).abs() < 1.0);
        assert!((s.min().unwrap() - 80.0).abs() < 1.0);
    }

    #[test]
    fn spikes_and_steps_apply() {
        let s = SeriesSpec {
            hours: 100,
            seasonal: vec![],
            noise: 0.0,
            spikes: vec![(10, 500.0)],
            steps: vec![(50, 200.0)],
            ..Default::default()
        }
        .build();
        assert!((s.values()[10] - 600.0).abs() < 1e-9);
        assert!((s.values()[49] - 100.0).abs() < 1e-9);
        assert!((s.values()[50] - 300.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SeriesSpec::default().build();
        let b = SeriesSpec::default().build();
        assert_eq!(a, b);
    }

    #[test]
    fn fig8a_series_grows_with_daily_cycle() {
        let s = fig8a_disk_usage(21, 0);
        assert_eq!(s.len(), 21 * 24);
        // Growth dominates over three weeks.
        let first_day_mean: f64 = s.values()[..24].iter().sum::<f64>() / 24.0;
        let last_day_mean: f64 = s.values()[20 * 24..].iter().sum::<f64>() / 24.0;
        assert!(last_day_mean > first_day_mean + 200.0);
    }
}
