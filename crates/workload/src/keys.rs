//! Keyed request streams.
//!
//! Generates the per-request detail the cache and isolation experiments need:
//! which key, read or write, and how large — with tunable Zipf skew (hot keys)
//! and a shiftable keyspace window (cache-dilution events).

use crate::dist::{LogNormal, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a keyed workload.
#[derive(Debug, Clone)]
pub struct KeyspaceConfig {
    /// Number of distinct keys.
    pub n_keys: usize,
    /// Zipf exponent for key popularity (0 = uniform).
    pub zipf_s: f64,
    /// Fraction of operations that are reads.
    pub read_ratio: f64,
    /// Value size distribution (log-normal around the profile's mean).
    pub value_size: LogNormal,
    /// Prefix baked into generated key strings (tenant/table namespace).
    pub key_prefix: String,
}

impl Default for KeyspaceConfig {
    fn default() -> Self {
        Self {
            n_keys: 100_000,
            zipf_s: 0.99,
            read_ratio: 0.9,
            value_size: LogNormal::from_median_p90(1024.0, 4.0),
            key_prefix: "k".to_string(),
        }
    }
}

/// One generated request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSpec {
    /// Dense key index in `{0, …, n_keys−1}` (0 = hottest).
    pub key_rank: usize,
    /// Materialized key string.
    pub key: String,
    /// True for writes.
    pub is_write: bool,
    /// Value size in bytes (for writes: payload; for reads: expected size).
    pub value_bytes: usize,
}

/// A deterministic request stream.
#[derive(Debug)]
pub struct RequestGen {
    config: KeyspaceConfig,
    zipf: Zipf,
    rng: StdRng,
    /// Offset added to ranks (mod n) — shifting it dilutes the cache, the
    /// Figure 5b/5e "access distribution change" mechanism.
    window_offset: usize,
}

impl RequestGen {
    /// A stream over `config` seeded with `seed`.
    pub fn new(config: KeyspaceConfig, seed: u64) -> Self {
        let zipf = Zipf::new(config.n_keys, config.zipf_s);
        Self {
            config,
            zipf,
            rng: StdRng::seed_from_u64(seed),
            window_offset: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &KeyspaceConfig {
        &self.config
    }

    /// Shift the popularity window by `delta` keys: previously-hot keys go
    /// cold and vice versa (cold-scan / cache-dilution events).
    pub fn shift_window(&mut self, delta: usize) {
        self.window_offset = (self.window_offset + delta) % self.config.n_keys;
    }

    /// Change the Zipf skew in place (hot-key events sharpen it).
    pub fn set_skew(&mut self, s: f64) {
        self.config.zipf_s = s;
        self.zipf = Zipf::new(self.config.n_keys, s);
    }

    /// Draw the next request.
    pub fn next_request(&mut self) -> RequestSpec {
        let rank = (self.zipf.sample(&mut self.rng) + self.window_offset) % self.config.n_keys;
        let is_write = self.rng.gen::<f64>() >= self.config.read_ratio;
        let value_bytes = self.config.value_size.sample(&mut self.rng).max(1.0) as usize;
        RequestSpec {
            key_rank: rank,
            key: format!("{}:{rank:010}", self.config.key_prefix),
            is_write,
            value_bytes,
        }
    }

    /// Draw `n` requests.
    pub fn take(&mut self, n: usize) -> Vec<RequestSpec> {
        (0..n).map(|_| self.next_request()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(read_ratio: f64, s: f64) -> RequestGen {
        RequestGen::new(
            KeyspaceConfig {
                n_keys: 10_000,
                zipf_s: s,
                read_ratio,
                ..Default::default()
            },
            77,
        )
    }

    #[test]
    fn read_write_mix_matches_ratio() {
        let mut g = gen(0.75, 0.9);
        let reqs = g.take(20_000);
        let writes = reqs.iter().filter(|r| r.is_write).count() as f64;
        assert!((writes / 20_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn zipf_concentrates_traffic_on_head() {
        let mut g = gen(1.0, 1.1);
        let reqs = g.take(50_000);
        let head = reqs.iter().filter(|r| r.key_rank < 100).count() as f64;
        assert!(head / 50_000.0 > 0.4, "head share {}", head / 50_000.0);
    }

    #[test]
    fn window_shift_moves_the_hot_set() {
        let mut g = gen(1.0, 1.2);
        let before = g.take(10_000);
        g.shift_window(5_000);
        let after = g.take(10_000);
        let hot_before: std::collections::HashSet<usize> = before
            .iter()
            .filter(|r| r.key_rank < 100)
            .map(|r| r.key_rank)
            .collect();
        // After the shift, the most frequent ranks moved by ~5000.
        let shifted_hot = after
            .iter()
            .filter(|r| (5_000..5_100).contains(&r.key_rank))
            .count();
        assert!(shifted_hot > 1000, "shifted_hot={shifted_hot}");
        assert!(!hot_before.is_empty());
    }

    #[test]
    fn keys_are_stable_strings() {
        let mut g = gen(1.0, 1.0);
        let r = g.next_request();
        assert!(r.key.starts_with("k:"));
        assert_eq!(r.key.len(), "k:".len() + 10);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = gen(0.8, 1.0);
        let mut b = gen(0.8, 1.0);
        assert_eq!(a.take(100), b.take(100));
    }

    #[test]
    fn sharper_skew_raises_head_share() {
        let mut mild = gen(1.0, 0.8);
        let mut sharp = gen(1.0, 1.4);
        let head = |reqs: &[RequestSpec]| {
            reqs.iter().filter(|r| r.key_rank < 10).count() as f64 / reqs.len() as f64
        };
        let m = head(&mild.take(30_000));
        let s = head(&sharp.take(30_000));
        assert!(s > m * 2.0, "mild={m} sharp={s}");
    }
}
