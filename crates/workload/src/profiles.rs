//! The seven Table-1 workload profiles.
//!
//! "Diverse application scenarios and workload characteristics of ABase in
//! ByteDance business" — these constants are the paper's Table 1 verbatim and
//! parameterize the diversity experiments (Table 1 regeneration, Figure 3
//! anchoring, DataNode co-location studies).

use abase_util::clock::{days, hours, SimTime};

/// One business workload row from Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Business line (e.g. "Social Media (Douyin)").
    pub business_line: &'static str,
    /// Workload description (e.g. "Comment").
    pub workload: &'static str,
    /// Normalized throughput (paper's empirical standard unit).
    pub norm_throughput: f64,
    /// Normalized storage.
    pub norm_storage: f64,
    /// Cache hit ratio in `[0, 1]`.
    pub cache_hit_ratio: f64,
    /// Read ratio in `[0, 1]`.
    pub read_ratio: f64,
    /// Mean key-value size in bytes.
    pub mean_kv_bytes: usize,
    /// Common TTL, when the business sets one.
    pub common_ttl: Option<SimTime>,
}

impl WorkloadProfile {
    /// Throughput-to-storage ratio; ≫1 is CPU-hungry, ≪1 disk-hungry.
    pub fn throughput_storage_ratio(&self) -> f64 {
        self.norm_throughput / self.norm_storage
    }

    /// True when reads dominate (> 50 %).
    pub fn is_read_heavy(&self) -> bool {
        self.read_ratio > 0.5
    }
}

/// Table 1, row by row.
pub const TABLE1_PROFILES: &[WorkloadProfile] = &[
    WorkloadProfile {
        business_line: "Social Media (Douyin)",
        workload: "Comment",
        norm_throughput: 250.0,
        norm_storage: 125.0,
        cache_hit_ratio: 0.54,
        read_ratio: 1.00,
        mean_kv_bytes: 102, // 0.1 KB
        common_ttl: None,
    },
    WorkloadProfile {
        business_line: "Social Media (Douyin)",
        workload: "Direct message",
        norm_throughput: 25.0,
        norm_storage: 678.0,
        cache_hit_ratio: 0.74,
        read_ratio: 1.00,
        mean_kv_bytes: 1024,
        common_ttl: None,
    },
    WorkloadProfile {
        business_line: "E-Commerce",
        workload: "Metadata tags",
        norm_throughput: 575.0,
        norm_storage: 42.0,
        cache_hit_ratio: 0.92,
        read_ratio: 1.00,
        mean_kv_bytes: 1024,
        common_ttl: None,
    },
    WorkloadProfile {
        business_line: "Search",
        workload: "Forward sorted data",
        norm_throughput: 1500.0,
        norm_storage: 63.0,
        cache_hit_ratio: 0.99,
        read_ratio: 1.00,
        mean_kv_bytes: 1024,
        common_ttl: None,
    },
    WorkloadProfile {
        business_line: "Advertisement",
        workload: "For message joiner",
        norm_throughput: 2750.0,
        norm_storage: 938.0,
        cache_hit_ratio: 0.18,
        read_ratio: 0.25,
        mean_kv_bytes: 10 << 10,
        common_ttl: Some(hours(3)),
    },
    WorkloadProfile {
        business_line: "Recommendation",
        workload: "For deduplication",
        norm_throughput: 5325.0,
        norm_storage: 625.0,
        cache_hit_ratio: 0.76,
        read_ratio: 0.50,
        mean_kv_bytes: 2 << 10,
        common_ttl: Some(days(15)),
    },
    WorkloadProfile {
        business_line: "Large Language Model",
        workload: "Remote K-V Cache",
        norm_throughput: 10_000.0,
        norm_storage: 5_760.0,
        cache_hit_ratio: 0.00, // bypasses caching, reads from underlying logs
        read_ratio: 0.85,
        mean_kv_bytes: 5 << 20,
        common_ttl: Some(days(1)),
    },
];

/// Look up a profile by its workload name.
pub fn profile_by_workload(name: &str) -> Option<&'static WorkloadProfile> {
    TABLE1_PROFILES.iter().find(|p| p.workload == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_profiles_exist() {
        assert_eq!(TABLE1_PROFILES.len(), 7);
    }

    #[test]
    fn ratios_match_paper_narrative() {
        // Comments vs DMs: 250:125 vs 25:678 (within-business diversity).
        let comment = profile_by_workload("Comment").unwrap();
        let dm = profile_by_workload("Direct message").unwrap();
        assert!(comment.throughput_storage_ratio() > 1.0);
        assert!(dm.throughput_storage_ratio() < 0.1);
        // E-commerce and search prefer throughput with hit ratios > 90%.
        for name in ["Metadata tags", "Forward sorted data"] {
            let p = profile_by_workload(name).unwrap();
            assert!(p.throughput_storage_ratio() > 10.0);
            assert!(p.cache_hit_ratio >= 0.90);
        }
    }

    #[test]
    fn advertisement_is_write_heavy_low_hit() {
        let ad = profile_by_workload("For message joiner").unwrap();
        assert!(!ad.is_read_heavy());
        assert!(ad.cache_hit_ratio < 0.2);
        assert_eq!(ad.common_ttl, Some(hours(3)));
    }

    #[test]
    fn llm_bypasses_cache_with_huge_values() {
        let llm = profile_by_workload("Remote K-V Cache").unwrap();
        assert_eq!(llm.cache_hit_ratio, 0.0);
        assert_eq!(llm.mean_kv_bytes, 5 << 20);
        assert!(llm.norm_throughput >= 10_000.0);
    }

    #[test]
    fn lookup_unknown_is_none() {
        assert!(profile_by_workload("nope").is_none());
    }
}
