//! Preprocessing: spike denoising (paper §5.2, Issue 1).
//!
//! Two heuristics from the paper:
//!
//! * **Multi-metric collaboration** — "if Usage and Quota metrics
//!   simultaneously show spikes, these are considered noise and filtered out,
//!   as such simultaneous occurrences are nearly impossible in practice"
//!   (quota changes are human/autoscaler actions; usage spikes are traffic —
//!   their exact coincidence indicates a metrics-pipeline glitch, e.g. during
//!   partition migration or master transition).
//! * **Sporadic peak removal** — peaks "appearing only once in the past 10
//!   days" are accidental events and must not drive scale-up decisions.

use abase_util::TimeSeries;

/// A point `i` is a *spike* when it exceeds `threshold ×` the median of its
/// surrounding window (window of ±3 samples, excluding the point itself).
fn spike_mask(values: &[f64], threshold: f64) -> Vec<bool> {
    let n = values.len();
    let mut mask = vec![false; n];
    let mut window: Vec<f64> = Vec::with_capacity(7);
    for i in 0..n {
        window.clear();
        let lo = i.saturating_sub(3);
        let hi = (i + 4).min(n);
        for (j, &v) in values[lo..hi].iter().enumerate() {
            if lo + j != i {
                window.push(v);
            }
        }
        if window.is_empty() {
            continue;
        }
        window.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let median = window[window.len() / 2];
        if values[i] > threshold * median.max(f64::EPSILON) {
            mask[i] = true;
        }
    }
    mask
}

/// Replace a point with the median of its neighbours.
fn local_median(values: &[f64], i: usize) -> f64 {
    let lo = i.saturating_sub(3);
    let hi = (i + 4).min(values.len());
    let mut window: Vec<f64> = values[lo..hi]
        .iter()
        .enumerate()
        .filter(|(j, _)| lo + j != i)
        .map(|(_, &v)| v)
        .collect();
    if window.is_empty() {
        return values[i];
    }
    window.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    window[window.len() / 2]
}

/// Multi-metric collaborative denoise: points where **both** `usage` and
/// `quota` spike simultaneously are metric noise; the usage point is replaced
/// with its local median. Returns the cleaned usage series and the number of
/// points repaired.
pub fn co_spike_filter(
    usage: &TimeSeries,
    quota: &TimeSeries,
    threshold: f64,
) -> (TimeSeries, usize) {
    assert_eq!(usage.len(), quota.len(), "usage/quota must align");
    let usage_mask = spike_mask(usage.values(), threshold);
    let quota_mask = spike_mask(quota.values(), threshold);
    let mut cleaned = usage.values().to_vec();
    let mut repaired = 0;
    for i in 0..cleaned.len() {
        if usage_mask[i] && quota_mask[i] {
            cleaned[i] = local_median(usage.values(), i);
            repaired += 1;
        }
    }
    (
        TimeSeries::new(usage.start(), usage.interval(), cleaned),
        repaired,
    )
}

/// Sporadic peak removal: a spike is kept only if a comparable spike (within
/// `similarity` ratio of its height) occurs on a *different day* of the
/// trailing `lookback_days`. One-off peaks are flattened to the local median.
///
/// The series must be hourly-sampled.
pub fn sporadic_peak_filter(
    series: &TimeSeries,
    threshold: f64,
    similarity: f64,
    lookback_days: usize,
) -> (TimeSeries, usize) {
    const HOUR: u64 = 3_600_000_000;
    assert_eq!(series.interval(), HOUR, "requires hourly samples");
    let values = series.values();
    let mask = spike_mask(values, threshold);
    let samples_per_day = 24usize;
    let lookback = lookback_days * samples_per_day;
    let mut cleaned = values.to_vec();
    let mut removed = 0;
    for i in 0..values.len() {
        if !mask[i] {
            continue;
        }
        let day_i = i / samples_per_day;
        let lo = i.saturating_sub(lookback);
        let has_sibling = (lo..values.len().min(i + lookback)).any(|j| {
            j != i && j / samples_per_day != day_i && mask[j] && values[j] >= values[i] * similarity
        });
        if !has_sibling {
            cleaned[i] = local_median(values, i);
            removed += 1;
        }
    }
    (
        TimeSeries::new(series.start(), series.interval(), cleaned),
        removed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    const HOUR: u64 = 3_600_000_000;

    fn hourly(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new(0, HOUR, values)
    }

    #[test]
    fn co_spike_removed_when_both_series_jump() {
        let mut usage = vec![10.0; 48];
        let mut quota = vec![100.0; 48];
        usage[20] = 500.0;
        quota[20] = 5000.0;
        let (cleaned, repaired) = co_spike_filter(&hourly(usage), &hourly(quota), 3.0);
        assert_eq!(repaired, 1);
        assert!((cleaned.values()[20] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn usage_only_spike_is_kept() {
        // A genuine traffic burst: usage spikes but quota does not.
        let mut usage = vec![10.0; 48];
        usage[20] = 500.0;
        let quota = vec![100.0; 48];
        let (cleaned, repaired) = co_spike_filter(&hourly(usage), &hourly(quota), 3.0);
        assert_eq!(repaired, 0);
        assert_eq!(cleaned.values()[20], 500.0);
    }

    #[test]
    fn sporadic_single_peak_removed() {
        let mut v = vec![10.0; 24 * 10];
        v[100] = 400.0; // appears once in 10 days
        let (cleaned, removed) = sporadic_peak_filter(&hourly(v), 3.0, 0.6, 10);
        assert_eq!(removed, 1);
        assert!((cleaned.values()[100] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn recurring_daily_peak_survives() {
        // The paper's Issue 3: bursts at varying times but recurring daily
        // must NOT be dismissed as outliers.
        let mut v = vec![10.0; 24 * 10];
        for day in 0..10 {
            v[day * 24 + 7 + (day % 3)] = 400.0; // wandering daily burst
        }
        let (cleaned, removed) = sporadic_peak_filter(&hourly(v), 3.0, 0.6, 10);
        assert_eq!(removed, 0);
        assert_eq!(cleaned.values().iter().filter(|&&x| x > 300.0).count(), 10);
    }

    #[test]
    fn flat_series_untouched() {
        let v = vec![5.0; 100];
        let (cleaned, repaired) = co_spike_filter(&hourly(v.clone()), &hourly(v.clone()), 3.0);
        assert_eq!(repaired, 0);
        assert_eq!(cleaned.values(), &v[..]);
    }
}
