//! Periodicity detection via power spectral density (paper §5.2).
//!
//! "During the forecasting phase, we initially use power spectral density
//! (PSD) analysis to determine the time series' periodicity." A direct DFT
//! periodogram (O(n²), fine at n ≈ 720 hourly samples) scores every candidate
//! period; a period is accepted when its power stands far enough above the
//! spectrum's median — which handles daily cycles, weekly cycles, and the
//! unusual 3.5-day cycles that tenant TTL configurations produce.

use std::f64::consts::PI;

/// One spectral peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodEstimate {
    /// Period length in samples.
    pub period: usize,
    /// Normalized power (ratio over median spectral power).
    pub strength: f64,
}

/// Compute the periodogram power for frequencies `k = 1..n/2` of a detrended
/// series. Returns `(power, n)`.
fn periodogram(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let detrended: Vec<f64> = values.iter().map(|v| v - mean).collect();
    let half = n / 2;
    let mut power = Vec::with_capacity(half);
    for k in 1..=half {
        let (mut re, mut im) = (0.0_f64, 0.0_f64);
        let omega = 2.0 * PI * k as f64 / n as f64;
        for (t, &x) in detrended.iter().enumerate() {
            let angle = omega * t as f64;
            re += x * angle.cos();
            im -= x * angle.sin();
        }
        power.push((re * re + im * im) / n as f64);
    }
    power
}

/// Detect up to `max_periods` significant periods, strongest first.
///
/// `min_strength` is the required ratio between a peak's power and the median
/// spectral power (e.g. 20.0); `min_cycles` requires the series to contain at
/// least that many full cycles of any reported period.
pub fn detect_periods(
    values: &[f64],
    max_periods: usize,
    min_strength: f64,
    min_cycles: usize,
) -> Vec<PeriodEstimate> {
    let n = values.len();
    if n < 8 {
        return Vec::new();
    }
    let power = periodogram(values);
    let mut sorted_power = power.clone();
    sorted_power.sort_by(|a, b| a.partial_cmp(b).expect("finite power"));
    let median = sorted_power[sorted_power.len() / 2].max(1e-12);
    // Rank frequencies by power.
    let mut by_power: Vec<(usize, f64)> = power
        .iter()
        .enumerate()
        .map(|(i, &p)| (i + 1, p)) // frequency k = index + 1
        .collect();
    by_power.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite power"));
    let mut out: Vec<PeriodEstimate> = Vec::new();
    for (k, p) in by_power {
        if out.len() >= max_periods {
            break;
        }
        let strength = p / median;
        if strength < min_strength {
            break;
        }
        let period = (n as f64 / k as f64).round() as usize;
        if period < 2 || n / period < min_cycles {
            continue;
        }
        // Skip harmonics/duplicates of an already-accepted period.
        let dup = out.iter().any(|e| {
            let ratio = e.period as f64 / period as f64;
            let near_int = (ratio - ratio.round()).abs() < 0.05 && ratio >= 0.99;
            period == e.period || near_int
        });
        if dup {
            continue;
        }
        out.push(PeriodEstimate { period, strength });
    }
    out
}

/// The single dominant period, if any.
pub fn dominant_period(values: &[f64], min_strength: f64) -> Option<usize> {
    detect_periods(values, 1, min_strength, 2)
        .first()
        .map(|e| e.period)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize, period: f64, amplitude: f64) -> Vec<f64> {
        (0..n)
            .map(|t| 100.0 + amplitude * (2.0 * PI * t as f64 / period).sin())
            .collect()
    }

    #[test]
    fn finds_daily_cycle_in_hourly_data() {
        // 30 days of hourly samples with a 24 h cycle.
        let v = sine(720, 24.0, 20.0);
        assert_eq!(dominant_period(&v, 20.0), Some(24));
    }

    #[test]
    fn finds_weekly_cycle() {
        let v = sine(24 * 7 * 8, 24.0 * 7.0, 15.0);
        assert_eq!(dominant_period(&v, 20.0), Some(24 * 7));
    }

    #[test]
    fn finds_unusual_three_and_a_half_day_cycle() {
        // The paper's TTL-driven 3.5-day period: 84 hourly samples per cycle.
        let v = sine(84 * 8, 84.0, 10.0);
        assert_eq!(dominant_period(&v, 20.0), Some(84));
    }

    #[test]
    fn white_noise_has_no_period() {
        // Deterministic xorshift noise (a multiplicative congruence would
        // carry lattice structure the periodogram can see).
        let mut state = 0x9E3779B97F4A7C15u64;
        let v: Vec<f64> = (0..720)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                100.0 + (state % 1000) as f64 / 100.0
            })
            .collect();
        assert_eq!(dominant_period(&v, 20.0), None);
    }

    #[test]
    fn two_superimposed_periods_both_found() {
        let n = 24 * 7 * 6;
        let v: Vec<f64> = (0..n)
            .map(|t| {
                100.0
                    + 20.0 * (2.0 * PI * t as f64 / 24.0).sin()
                    + 12.0 * (2.0 * PI * t as f64 / (24.0 * 7.0)).sin()
            })
            .collect();
        let periods = detect_periods(&v, 3, 15.0, 2);
        let ps: Vec<usize> = periods.iter().map(|e| e.period).collect();
        assert!(ps.contains(&24), "periods: {ps:?}");
        assert!(ps.contains(&168), "periods: {ps:?}");
    }

    #[test]
    fn short_series_is_safe() {
        assert!(detect_periods(&[1.0, 2.0, 3.0], 2, 10.0, 2).is_empty());
    }
}
