//! "Prophet-lite": additive trend + Fourier seasonality.
//!
//! The paper ensembles "the adaptive-periodic Prophet model with historical
//! averages". Prophet's essence for this workload — piecewise-linear trend
//! with changepoints plus Fourier-series seasonality, fit as a linear model —
//! is reproduced here deterministically with ridge regression. No MCMC, no
//! holidays: resource metrics have no holiday calendar and the autoscaler only
//! consumes the posterior mean anyway.

use crate::linalg::{predict_row, ridge_fit};
use std::f64::consts::PI;

/// Configuration for the prophet-lite model.
#[derive(Debug, Clone, Copy)]
pub struct ProphetConfig {
    /// Number of evenly spaced candidate trend changepoints.
    pub n_changepoints: usize,
    /// Fourier order for the seasonal component (pairs of sin/cos terms).
    pub fourier_order: usize,
    /// Ridge regularization strength.
    pub lambda: f64,
}

impl Default for ProphetConfig {
    fn default() -> Self {
        Self {
            n_changepoints: 8,
            fourier_order: 4,
            lambda: 1e-3,
        }
    }
}

/// A fitted prophet-lite model.
#[derive(Debug, Clone)]
pub struct ProphetModel {
    beta: Vec<f64>,
    changepoints: Vec<f64>,
    period: Option<usize>,
    fourier_order: usize,
    n_train: usize,
}

fn design_row(
    t: f64,
    changepoints: &[f64],
    period: Option<usize>,
    fourier_order: usize,
) -> Vec<f64> {
    // [intercept, t, relu(t - cp_i)..., sin/cos pairs...]
    let mut row = Vec::with_capacity(2 + changepoints.len() + 2 * fourier_order);
    row.push(1.0);
    row.push(t);
    for &cp in changepoints {
        row.push((t - cp).max(0.0));
    }
    if let Some(p) = period {
        let p = p as f64;
        for order in 1..=fourier_order {
            let angle = 2.0 * PI * order as f64 * t / p;
            row.push(angle.sin());
            row.push(angle.cos());
        }
    }
    row
}

impl ProphetModel {
    /// Fit on `values` (one sample per time step), optionally with a known
    /// seasonal `period` in samples (from PSD analysis). Returns `None` when
    /// the series is too short to fit.
    pub fn fit(values: &[f64], period: Option<usize>, config: ProphetConfig) -> Option<Self> {
        let n = values.len();
        if n < 8 {
            return None;
        }
        // Seasonality requires at least two full cycles of evidence.
        let period = period.filter(|&p| p >= 2 && n >= 2 * p);
        let n_cp = config.n_changepoints.min(n / 8);
        // Candidate changepoints over the first 80% of history (Prophet's
        // default guards against overfitting the most recent points).
        let changepoints: Vec<f64> = (1..=n_cp)
            .map(|i| (i as f64 / (n_cp + 1) as f64) * 0.8 * n as f64)
            .collect();
        let x: Vec<Vec<f64>> = (0..n)
            .map(|t| design_row(t as f64, &changepoints, period, config.fourier_order))
            .collect();
        let beta = ridge_fit(&x, values, config.lambda)?;
        Some(Self {
            beta,
            changepoints,
            period,
            fourier_order: config.fourier_order,
            n_train: n,
        })
    }

    /// The seasonal period used by the fit, if any.
    pub fn period(&self) -> Option<usize> {
        self.period
    }

    /// Predict `horizon` samples following the training window.
    pub fn forecast(&self, horizon: usize) -> Vec<f64> {
        (0..horizon)
            .map(|h| {
                let t = (self.n_train + h) as f64;
                let row = design_row(t, &self.changepoints, self.period, self.fourier_order);
                predict_row(&row, &self.beta)
            })
            .collect()
    }

    /// In-sample fitted values (for backtest weighting).
    pub fn fitted(&self) -> Vec<f64> {
        (0..self.n_train)
            .map(|t| {
                let row = design_row(
                    t as f64,
                    &self.changepoints,
                    self.period,
                    self.fourier_order,
                );
                predict_row(&row, &self.beta)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mape;

    #[test]
    fn fits_linear_trend() {
        let values: Vec<f64> = (0..100).map(|t| 50.0 + 2.0 * t as f64).collect();
        let m = ProphetModel::fit(&values, None, ProphetConfig::default()).unwrap();
        let fc = m.forecast(10);
        for (h, v) in fc.iter().enumerate() {
            let expect = 50.0 + 2.0 * (100 + h) as f64;
            assert!((v - expect).abs() / expect < 0.05, "h={h}: {v} vs {expect}");
        }
    }

    #[test]
    fn fits_seasonal_cycle() {
        let values: Vec<f64> = (0..240)
            .map(|t| 100.0 + 30.0 * (2.0 * PI * t as f64 / 24.0).sin())
            .collect();
        let m = ProphetModel::fit(&values, Some(24), ProphetConfig::default()).unwrap();
        let fc = m.forecast(24);
        let expect: Vec<f64> = (240..264)
            .map(|t| 100.0 + 30.0 * (2.0 * PI * t as f64 / 24.0).sin())
            .collect();
        assert!(mape(&expect, &fc) < 0.05, "mape={}", mape(&expect, &fc));
    }

    #[test]
    fn fits_trend_plus_seasonality() {
        let values: Vec<f64> = (0..240)
            .map(|t| 100.0 + 0.5 * t as f64 + 20.0 * (2.0 * PI * t as f64 / 24.0).sin())
            .collect();
        let m = ProphetModel::fit(&values, Some(24), ProphetConfig::default()).unwrap();
        let fc = m.forecast(48);
        let expect: Vec<f64> = (240..288)
            .map(|t| 100.0 + 0.5 * t as f64 + 20.0 * (2.0 * PI * t as f64 / 24.0).sin())
            .collect();
        assert!(mape(&expect, &fc) < 0.08, "mape={}", mape(&expect, &fc));
    }

    #[test]
    fn adapts_to_trend_change() {
        // Flat for 150 samples, then rising at slope 3: the changepoint basis
        // should let the forecast follow the new slope rather than the mean.
        let values: Vec<f64> = (0..200)
            .map(|t| {
                if t < 150 {
                    100.0
                } else {
                    100.0 + 3.0 * (t - 150) as f64
                }
            })
            .collect();
        let m = ProphetModel::fit(&values, None, ProphetConfig::default()).unwrap();
        let fc = m.forecast(20);
        // At h=19 the true value is 100 + 3*69 = 307; demand at least slope
        // continuation beyond 250.
        assert!(fc[19] > 250.0, "forecast too flat: {}", fc[19]);
    }

    #[test]
    fn short_series_returns_none() {
        assert!(ProphetModel::fit(&[1.0; 4], None, ProphetConfig::default()).is_none());
    }

    #[test]
    fn period_needs_two_cycles() {
        let values: Vec<f64> = (0..30).map(|t| t as f64).collect();
        let m = ProphetModel::fit(&values, Some(24), ProphetConfig::default()).unwrap();
        assert_eq!(
            m.period(),
            None,
            "one cycle of evidence must not fit seasonality"
        );
    }

    #[test]
    fn fitted_matches_training_shape() {
        let values: Vec<f64> = (0..100).map(|t| 10.0 + t as f64).collect();
        let m = ProphetModel::fit(&values, None, ProphetConfig::default()).unwrap();
        let fitted = m.fitted();
        assert_eq!(fitted.len(), 100);
        assert!(mape(&values, &fitted) < 0.02);
    }
}
