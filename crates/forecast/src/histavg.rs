//! Historical-average (seasonal) forecaster.
//!
//! "The historical average provides stable forecasts, especially suitable when
//! trend changes are minimal" (§5.2). For a series with period `p`, the
//! forecast for phase `φ` is an average over the same phase in previous
//! cycles, weighted toward recent cycles; without a period it degenerates to a
//! trailing mean.

/// A fitted historical-average model.
#[derive(Debug, Clone)]
pub struct HistoricalAverage {
    /// Per-phase forecasts (length = period), or a single value when aperiodic.
    phase_means: Vec<f64>,
    n_train: usize,
}

impl HistoricalAverage {
    /// Fit on `values` with an optional known `period` (in samples).
    /// `decay` in `(0,1]` down-weights older cycles (1.0 = plain mean).
    #[allow(clippy::needless_range_loop)]
    pub fn fit(values: &[f64], period: Option<usize>, decay: f64) -> Self {
        let n = values.len();
        let period = period.filter(|&p| p >= 1 && n >= p);
        match period {
            None => {
                let mean = if n == 0 {
                    0.0
                } else {
                    values.iter().sum::<f64>() / n as f64
                };
                Self {
                    phase_means: vec![mean],
                    n_train: n,
                }
            }
            Some(p) => {
                let mut phase_means = vec![0.0; p];
                for phase in 0..p {
                    let mut weight_sum = 0.0;
                    let mut value_sum = 0.0;
                    // Walk cycles newest-first so the decay favours recency.
                    let mut idx = n as isize - p as isize + phase as isize;
                    // Align: find the largest index with this phase.
                    while idx >= n as isize {
                        idx -= p as isize;
                    }
                    let mut weight = 1.0;
                    let mut i = (n as isize - 1)
                        - ((n as isize - 1 - phase as isize).rem_euclid(p as isize));
                    // `i` is the newest index congruent to `phase` (mod p).
                    while i >= 0 {
                        value_sum += values[i as usize] * weight;
                        weight_sum += weight;
                        weight *= decay;
                        i -= p as isize;
                    }
                    let _ = idx;
                    phase_means[phase] = if weight_sum > 0.0 {
                        value_sum / weight_sum
                    } else {
                        0.0
                    };
                }
                Self {
                    phase_means,
                    n_train: n,
                }
            }
        }
    }

    /// Predict `horizon` samples following the training window.
    pub fn forecast(&self, horizon: usize) -> Vec<f64> {
        let p = self.phase_means.len();
        (0..horizon)
            .map(|h| self.phase_means[(self.n_train + h) % p])
            .collect()
    }

    /// In-sample fitted values (phase means replayed over the training window).
    pub fn fitted(&self) -> Vec<f64> {
        let p = self.phase_means.len();
        (0..self.n_train).map(|t| self.phase_means[t % p]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mape;

    #[test]
    fn aperiodic_returns_mean() {
        let m = HistoricalAverage::fit(&[10.0, 20.0, 30.0], None, 1.0);
        assert_eq!(m.forecast(3), vec![20.0, 20.0, 20.0]);
    }

    #[test]
    fn periodic_repeats_cycle_phase_aligned() {
        // Period 4 pattern repeated 5 times.
        let pattern = [10.0, 20.0, 30.0, 40.0];
        let values: Vec<f64> = (0..20).map(|t| pattern[t % 4]).collect();
        let m = HistoricalAverage::fit(&values, Some(4), 1.0);
        let fc = m.forecast(8);
        let expect: Vec<f64> = (20..28).map(|t| pattern[t % 4]).collect();
        assert!(mape(&expect, &fc) < 1e-9);
    }

    #[test]
    fn phase_alignment_with_partial_last_cycle() {
        // 10 samples of period 4: last cycle is partial; phases must still align.
        let pattern = [1.0, 2.0, 3.0, 4.0];
        let values: Vec<f64> = (0..10).map(|t| pattern[t % 4]).collect();
        let m = HistoricalAverage::fit(&values, Some(4), 1.0);
        let fc = m.forecast(4);
        let expect: Vec<f64> = (10..14).map(|t| pattern[t % 4]).collect();
        assert_eq!(fc, expect);
    }

    #[test]
    fn decay_favours_recent_cycles() {
        // First cycle at level 10, second at level 90.
        let mut values = vec![10.0; 4];
        values.extend(vec![90.0; 4]);
        let flat = HistoricalAverage::fit(&values, Some(4), 1.0);
        let recent = HistoricalAverage::fit(&values, Some(4), 0.2);
        assert!((flat.forecast(1)[0] - 50.0).abs() < 1e-9);
        assert!(
            recent.forecast(1)[0] > 70.0,
            "decay too weak: {}",
            recent.forecast(1)[0]
        );
    }

    #[test]
    fn empty_series_is_safe() {
        let m = HistoricalAverage::fit(&[], None, 1.0);
        assert_eq!(m.forecast(2), vec![0.0, 0.0]);
    }

    #[test]
    fn fitted_replays_phases() {
        let pattern = [5.0, 15.0];
        let values: Vec<f64> = (0..8).map(|t| pattern[t % 2]).collect();
        let m = HistoricalAverage::fit(&values, Some(2), 1.0);
        assert_eq!(m.fitted(), values);
    }
}
