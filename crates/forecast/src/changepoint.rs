//! Trend change-point detection (paper §5.2, Issue 1).
//!
//! "Significant trend variations frequently occur within individual series,
//! typically due to business adjustments and data cleaning. We also utilize
//! change point detection methods to identify trend shifts, thereby focusing
//! the forecasting algorithms more on recent data changes."
//!
//! Implementation: binary segmentation on mean shift with a BIC-style penalty.
//! For each candidate split the gain is the reduction in total squared error
//! from modelling the two halves with separate means; splits are accepted
//! while the gain exceeds `penalty · σ²_global`.

/// Detected change points (indices where a new segment starts), ascending.
pub fn detect_changepoints(values: &[f64], penalty: f64, min_segment: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let global_var = variance(values).max(1e-12);
    segment(
        values,
        0,
        penalty * global_var,
        min_segment.max(2),
        &mut out,
    );
    out.sort_unstable();
    out
}

/// The index of the last detected change point (start of the current regime),
/// or 0 when the series is homogeneous.
pub fn last_regime_start(values: &[f64], penalty: f64, min_segment: usize) -> usize {
    detect_changepoints(values, penalty, min_segment)
        .last()
        .copied()
        .unwrap_or(0)
}

fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64
}

fn sse(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    values.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
}

fn segment(values: &[f64], offset: usize, threshold: f64, min_seg: usize, out: &mut Vec<usize>) {
    let n = values.len();
    if n < 2 * min_seg {
        return;
    }
    let total = sse(values);
    let mut best_gain = 0.0;
    let mut best_split = 0usize;
    for split in min_seg..=(n - min_seg) {
        let gain = total - sse(&values[..split]) - sse(&values[split..]);
        if gain > best_gain {
            best_gain = gain;
            best_split = split;
        }
    }
    // Penalty scales with log(n) à la BIC so longer windows demand more
    // evidence per split.
    if best_split == 0 || best_gain < threshold * (n as f64).ln().max(1.0) {
        return;
    }
    out.push(offset + best_split);
    segment(&values[..best_split], offset, threshold, min_seg, out);
    segment(
        &values[best_split..],
        offset + best_split,
        threshold,
        min_seg,
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_series_has_no_changepoints() {
        let v: Vec<f64> = (0..200).map(|i| 10.0 + (i % 7) as f64 * 0.1).collect();
        assert!(detect_changepoints(&v, 5.0, 10).is_empty());
    }

    #[test]
    fn single_level_shift_found() {
        let mut v = vec![10.0; 100];
        v.extend(vec![50.0; 100]);
        let cps = detect_changepoints(&v, 5.0, 10);
        assert_eq!(cps.len(), 1);
        assert!((95..=105).contains(&cps[0]), "found at {:?}", cps);
    }

    #[test]
    fn two_shifts_found() {
        let mut v = vec![10.0; 80];
        v.extend(vec![40.0; 80]);
        v.extend(vec![5.0; 80]);
        let cps = detect_changepoints(&v, 5.0, 10);
        assert_eq!(cps.len(), 2);
        assert!((75..=85).contains(&cps[0]));
        assert!((155..=165).contains(&cps[1]));
    }

    #[test]
    fn last_regime_start_points_at_newest_segment() {
        let mut v = vec![10.0; 120];
        v.extend(vec![100.0; 60]);
        let start = last_regime_start(&v, 5.0, 10);
        assert!((115..=125).contains(&start), "start={start}");
    }

    #[test]
    fn short_series_is_safe() {
        assert!(detect_changepoints(&[1.0, 2.0], 5.0, 10).is_empty());
        assert_eq!(last_regime_start(&[], 5.0, 10), 0);
    }

    #[test]
    fn noisy_shift_still_detected() {
        // Deterministic pseudo-noise around two levels.
        let v: Vec<f64> = (0..300)
            .map(|i| {
                let base = if i < 150 { 20.0 } else { 60.0 };
                base + ((i * 2654435761usize) % 100) as f64 / 25.0
            })
            .collect();
        let cps = detect_changepoints(&v, 5.0, 20);
        assert!(!cps.is_empty());
        assert!(cps.iter().any(|&c| (130..=170).contains(&c)), "cps={cps:?}");
    }
}
