//! # abase-forecast
//!
//! The workload forecasting module behind ABase's predictive autoscaling
//! (paper §5.2). It consumes 30 days of hourly resource metrics and predicts
//! the next 7 days, addressing the paper's three practical issues:
//!
//! * **Issue 1 — sporadic bursts and metric noise**: [`denoise`] removes spikes
//!   that appear simultaneously in the usage *and* quota series ("nearly
//!   impossible in practice", hence sensor noise) and one-off peaks seen only
//!   once in the trailing 10 days; [`changepoint`] detects trend shifts so the
//!   models focus on the most recent regime.
//! * **Issue 2 — period diversity and trend variability**: [`psd`] finds the
//!   dominant cycle by power-spectral-density analysis (daily, weekly, or the
//!   odd 3.5-day TTL-driven periods), then [`prophet`] fits an additive
//!   trend+seasonality model (our deterministic stand-in for Prophet) and
//!   [`histavg`] provides the stable seasonal-average fallback; [`ensemble`]
//!   weights them by backtest accuracy.
//! * **Issue 3 — consistent non-periodic bursts**: when the ensemble's
//!   forecast peaks far below recently observed peaks, the ensemble falls back
//!   to replaying the most recent period's history so scaling never dismisses
//!   recurring bursts as outliers.

#![deny(missing_docs)]

pub mod changepoint;
pub mod denoise;
pub mod ensemble;
pub mod histavg;
pub mod linalg;
pub mod metrics;
pub mod prophet;
pub mod psd;

pub use ensemble::{EnsembleConfig, EnsembleForecaster, ForecastOutput, ModelChoice};
pub use metrics::{mape, max_error, smape};
