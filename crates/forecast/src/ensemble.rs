//! The ensemble forecaster: the full §5.2 pipeline.
//!
//! ```text
//! usage, quota ── co-spike denoise ─┐
//!                                   ├─ sporadic-peak removal
//!                                   ├─ change-point truncation (recent regime)
//!                                   ├─ PSD periodicity
//!                  ┌────────────────┤
//!            prophet-lite     historical average
//!                  └─── backtest-weighted blend ───┐
//!                                                  ├─ non-periodic-burst guard
//!                                             forecast (horizon)
//! ```
//!
//! The final guard implements Issue 3: "if the forecasts are significantly
//! lower than historical input data, we directly use the most recent period's
//! historical data for predictions to avoid unnecessary downscaling."

use crate::changepoint::last_regime_start;
use crate::denoise::{co_spike_filter, sporadic_peak_filter};
use crate::histavg::HistoricalAverage;
use crate::metrics::smape;
use crate::prophet::{ProphetConfig, ProphetModel};
use crate::psd::dominant_period;
use abase_util::TimeSeries;

/// Which model ultimately drove the forecast (for diagnostics/experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelChoice {
    /// Backtest-weighted blend of prophet-lite and historical average.
    Blend,
    /// Prophet-lite dominated (historical average failed or scored poorly).
    ProphetOnly,
    /// Historical average dominated.
    HistoricalOnly,
    /// Issue-3 fallback: replayed the most recent period of history.
    RecentHistoryFallback,
}

/// Ensemble configuration.
#[derive(Debug, Clone, Copy)]
pub struct EnsembleConfig {
    /// Spike threshold (ratio over local median) for denoising.
    pub spike_threshold: f64,
    /// Lookback for sporadic-peak removal, in days.
    pub sporadic_lookback_days: usize,
    /// Change-point penalty (multiplied by global variance).
    pub changepoint_penalty: f64,
    /// Minimum segment length for change-point detection (samples).
    pub changepoint_min_segment: usize,
    /// Minimum PSD strength to accept a period.
    pub psd_min_strength: f64,
    /// Prophet-lite settings.
    pub prophet: ProphetConfig,
    /// Cycle decay for the historical average.
    pub histavg_decay: f64,
    /// Issue-3 guard: fallback triggers when the forecast max is below this
    /// fraction of the recent observed max.
    pub burst_guard_ratio: f64,
    /// Keep at least this many samples after change-point truncation.
    pub min_history: usize,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        Self {
            spike_threshold: 3.0,
            sporadic_lookback_days: 10,
            changepoint_penalty: 5.0,
            changepoint_min_segment: 48,
            psd_min_strength: 20.0,
            prophet: ProphetConfig::default(),
            histavg_decay: 0.7,
            burst_guard_ratio: 0.8,
            min_history: 240,
        }
    }
}

/// The forecast and its provenance.
#[derive(Debug, Clone)]
pub struct ForecastOutput {
    /// Predicted values for the horizon.
    pub values: Vec<f64>,
    /// Maximum predicted value (what Algorithm 1 consumes as `U_max`).
    pub peak: f64,
    /// Detected seasonal period in samples, if any.
    pub period: Option<usize>,
    /// Which model produced the output.
    pub model: ModelChoice,
    /// Number of denoised points (co-spike + sporadic).
    pub denoised_points: usize,
}

/// The §5.2 ensemble forecaster.
#[derive(Debug, Clone, Default)]
pub struct EnsembleForecaster {
    config: EnsembleConfig,
}

impl EnsembleForecaster {
    /// A forecaster with the given configuration.
    pub fn new(config: EnsembleConfig) -> Self {
        Self { config }
    }

    /// Forecast `horizon` samples of `usage`, using `quota` for co-spike
    /// denoising when provided (must align with `usage`).
    pub fn forecast(
        &self,
        usage: &TimeSeries,
        quota: Option<&TimeSeries>,
        horizon: usize,
    ) -> ForecastOutput {
        let cfg = &self.config;
        // ---- Preprocess (Issue 1) ----
        let mut denoised_points = 0usize;
        let mut series = usage.clone();
        if let Some(quota) = quota {
            let (cleaned, repaired) = co_spike_filter(&series, quota, cfg.spike_threshold);
            series = cleaned;
            denoised_points += repaired;
        }
        const HOUR: u64 = 3_600_000_000;
        if series.interval() == HOUR && series.len() >= 48 {
            let (cleaned, removed) = sporadic_peak_filter(
                &series,
                cfg.spike_threshold,
                0.6,
                cfg.sporadic_lookback_days,
            );
            series = cleaned;
            denoised_points += removed;
        }
        // Change-point truncation: focus on the current regime, but keep
        // enough history to see seasonality.
        let regime_start = last_regime_start(
            series.values(),
            cfg.changepoint_penalty,
            cfg.changepoint_min_segment,
        );
        let keep_from = regime_start.min(series.len().saturating_sub(cfg.min_history));
        let values: Vec<f64> = series.values()[keep_from..].to_vec();
        // ---- Periodicity (Issue 2) ----
        let period = dominant_period(&values, cfg.psd_min_strength);
        // ---- Models ----
        let prophet = ProphetModel::fit(&values, period, cfg.prophet);
        let histavg = HistoricalAverage::fit(&values, period, cfg.histavg_decay);
        // Backtest on the trailing 25% of the regime.
        let holdout = (values.len() / 4)
            .max(1)
            .min(values.len().saturating_sub(4));
        let (fit_part, test_part) = values.split_at(values.len() - holdout);
        let (forecast, model) = self.blend(
            fit_part,
            test_part,
            &values,
            period,
            prophet.as_ref(),
            &histavg,
            horizon,
        );
        // ---- Non-periodic-burst guard (Issue 3) ----
        // At least one day of history: non-periodic bursts recur daily at
        // varying times, so a sub-daily window would miss them.
        let recent_window = period.unwrap_or(24).max(24).min(values.len());
        let recent = &values[values.len() - recent_window..];
        let recent_max = recent.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let forecast_max = forecast.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let (final_values, final_model) = if forecast_max < cfg.burst_guard_ratio * recent_max {
            // Replay the most recent period tiled across the horizon.
            let replay: Vec<f64> = (0..horizon).map(|h| recent[h % recent.len()]).collect();
            (replay, ModelChoice::RecentHistoryFallback)
        } else {
            (forecast, model)
        };
        let peak = final_values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0);
        ForecastOutput {
            values: final_values,
            peak,
            period,
            model: final_model,
            denoised_points,
        }
    }

    /// Weighted blend by holdout sMAPE; retrains on full history for output.
    #[allow(clippy::too_many_arguments)]
    fn blend(
        &self,
        fit_part: &[f64],
        test_part: &[f64],
        full: &[f64],
        period: Option<usize>,
        prophet_full: Option<&ProphetModel>,
        histavg_full: &HistoricalAverage,
        horizon: usize,
    ) -> (Vec<f64>, ModelChoice) {
        let cfg = &self.config;
        // Backtest each model trained on fit_part.
        let prophet_bt =
            ProphetModel::fit(fit_part, period, cfg.prophet).map(|m| m.forecast(test_part.len()));
        let histavg_bt =
            HistoricalAverage::fit(fit_part, period, cfg.histavg_decay).forecast(test_part.len());
        let prophet_err = prophet_bt
            .as_ref()
            .map(|p| smape(test_part, p))
            .unwrap_or(f64::INFINITY);
        let histavg_err = smape(test_part, &histavg_bt);
        let prophet_fc = prophet_full.map(|m| m.forecast(horizon));
        let histavg_fc = histavg_full.forecast(horizon);
        match prophet_fc {
            None => (histavg_fc, ModelChoice::HistoricalOnly),
            Some(pfc) => {
                // Inverse-error weights with an epsilon floor.
                let wp = 1.0 / (prophet_err + 1e-3);
                let wh = 1.0 / (histavg_err + 1e-3);
                let share_p = wp / (wp + wh);
                let blended: Vec<f64> = pfc
                    .iter()
                    .zip(&histavg_fc)
                    .map(|(p, h)| share_p * p + (1.0 - share_p) * h)
                    .collect();
                let model = if share_p > 0.85 {
                    ModelChoice::ProphetOnly
                } else if share_p < 0.15 {
                    ModelChoice::HistoricalOnly
                } else {
                    ModelChoice::Blend
                };
                let _ = full;
                (blended, model)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const HOUR: u64 = 3_600_000_000;

    fn hourly(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new(0, HOUR, values)
    }

    /// 30 days of hourly data with daily seasonality and a linear trend.
    fn seasonal_trend(n: usize, slope: f64) -> Vec<f64> {
        (0..n)
            .map(|t| 200.0 + slope * t as f64 + 50.0 * (2.0 * PI * t as f64 / 24.0).sin())
            .collect()
    }

    #[test]
    fn forecasts_seasonal_trend_with_low_error() {
        let full = seasonal_trend(720 + 168, 0.1);
        let (train, test) = full.split_at(720);
        let f = EnsembleForecaster::default();
        let out = f.forecast(&hourly(train.to_vec()), None, 168);
        assert_eq!(out.values.len(), 168);
        assert_eq!(out.period, Some(24));
        let err = crate::metrics::smape(test, &out.values);
        assert!(err < 0.10, "smape={err}");
    }

    #[test]
    fn peak_tracks_series_peak() {
        let train = seasonal_trend(720, 0.0);
        let f = EnsembleForecaster::default();
        let out = f.forecast(&hourly(train), None, 168);
        // Peak of 200 + 50·sin = 250 (±10%).
        assert!((out.peak - 250.0).abs() < 25.0, "peak={}", out.peak);
    }

    #[test]
    fn co_spikes_are_denoised() {
        let mut usage = seasonal_trend(720, 0.0);
        let mut quota = vec![400.0; 720];
        usage[300] = 5000.0;
        quota[300] = 50_000.0;
        let f = EnsembleForecaster::default();
        let out = f.forecast(&hourly(usage), Some(&hourly(quota)), 24);
        assert!(out.denoised_points >= 1);
        assert!(out.peak < 400.0, "noise leaked into forecast: {}", out.peak);
    }

    #[test]
    fn burst_guard_keeps_recent_peaks() {
        // Flat series whose last day carries a recurring burst the models may
        // smooth away; the Issue-3 guard must preserve the peak level.
        let mut values = vec![100.0; 720];
        for day in 25..30 {
            for h in 0..3 {
                values[day * 24 + 8 + h] = 900.0;
            }
        }
        let f = EnsembleForecaster::default();
        let out = f.forecast(&hourly(values), None, 168);
        assert!(
            out.peak > 700.0,
            "recurring burst dismissed: peak={} model={:?}",
            out.peak,
            out.model
        );
    }

    #[test]
    fn trend_shift_focuses_recent_regime() {
        // Level 100 for 20 days, then level 500: forecast must track ~500.
        let mut values = vec![100.0; 480];
        values.extend(vec![500.0; 240]);
        let f = EnsembleForecaster::default();
        let out = f.forecast(&hourly(values), None, 48);
        let mean = out.values.iter().sum::<f64>() / out.values.len() as f64;
        assert!(mean > 400.0, "stale regime dominates: mean={mean}");
    }

    #[test]
    fn short_series_still_produces_output() {
        let f = EnsembleForecaster::default();
        let out = f.forecast(&hourly(vec![50.0; 24]), None, 12);
        assert_eq!(out.values.len(), 12);
        assert!(out.values.iter().all(|v| v.is_finite()));
    }
}
