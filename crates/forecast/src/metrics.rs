//! Forecast accuracy metrics.

/// Mean absolute percentage error, skipping points where `actual == 0`.
/// Returns 0 for empty/degenerate input.
pub fn mape(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len());
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&a, &p) in actual.iter().zip(predicted) {
        if a.abs() > f64::EPSILON {
            sum += ((a - p) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Symmetric MAPE in `[0, 2]`; robust when either side is near zero.
pub fn smape(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len());
    if actual.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    for (&a, &p) in actual.iter().zip(predicted) {
        let denom = (a.abs() + p.abs()) / 2.0;
        if denom > f64::EPSILON {
            sum += (a - p).abs() / denom;
        }
    }
    sum / actual.len() as f64
}

/// Largest absolute error.
pub fn max_error(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len());
    actual
        .iter()
        .zip(predicted)
        .map(|(a, p)| (a - p).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_forecast_scores_zero() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(mape(&a, &a), 0.0);
        assert_eq!(smape(&a, &a), 0.0);
        assert_eq!(max_error(&a, &a), 0.0);
    }

    #[test]
    fn known_values() {
        let actual = [100.0, 200.0];
        let predicted = [110.0, 180.0];
        assert!((mape(&actual, &predicted) - 0.1).abs() < 1e-12);
        assert!((max_error(&actual, &predicted) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let actual = [0.0, 100.0];
        let predicted = [50.0, 150.0];
        assert!((mape(&actual, &predicted) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn smape_bounded_for_zero_prediction() {
        let actual = [10.0];
        let predicted = [0.0];
        assert!((smape(&actual, &predicted) - 2.0).abs() < 1e-12);
    }
}
