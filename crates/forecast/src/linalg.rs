//! Minimal dense linear algebra: ridge regression via normal equations.
//!
//! Implemented in-tree (the sanctioned dependency list has no linear-algebra
//! crate); sizes here are tiny — the prophet-lite design matrix has at most a
//! few dozen columns — so an O(p³) solve is instant.

/// Solve `A x = b` for symmetric positive-definite `A` (row-major `p × p`)
/// by Gaussian elimination with partial pivoting. Returns `None` if singular.
#[allow(clippy::needless_range_loop)]
pub fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    assert!(a.len() == n && a.iter().all(|row| row.len() == n));
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite matrix")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut sum = b[col];
        for k in col + 1..n {
            sum -= a[col][k] * x[k];
        }
        x[col] = sum / a[col][col];
    }
    Some(x)
}

/// Ridge regression: minimize `‖Xβ − y‖² + λ‖β‖²`.
///
/// `x` is row-major `n × p`; returns `β` of length `p`. The intercept column,
/// if any, should be part of `x` (it gets regularized too — acceptable at the
/// tiny λ used).
#[allow(clippy::needless_range_loop)]
pub fn ridge_fit(x: &[Vec<f64>], y: &[f64], lambda: f64) -> Option<Vec<f64>> {
    let n = x.len();
    assert_eq!(n, y.len());
    if n == 0 {
        return None;
    }
    let p = x[0].len();
    // Normal equations: (XᵀX + λI) β = Xᵀy.
    let mut xtx = vec![vec![0.0; p]; p];
    let mut xty = vec![0.0; p];
    for (row, &target) in x.iter().zip(y) {
        assert_eq!(row.len(), p);
        for i in 0..p {
            xty[i] += row[i] * target;
            for j in i..p {
                xtx[i][j] += row[i] * row[j];
            }
        }
    }
    for i in 0..p {
        for j in 0..i {
            xtx[i][j] = xtx[j][i];
        }
        xtx[i][i] += lambda;
    }
    solve(xtx, xty)
}

/// Dot product of a design row with coefficients.
pub fn predict_row(row: &[f64], beta: &[f64]) -> f64 {
    row.iter().zip(beta).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_simple_system() {
        // 2x + y = 5 ; x + 3y = 10 → x = 1, y = 3.
        let x = solve(vec![vec![2.0, 1.0], vec![1.0, 3.0]], vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn singular_matrix_returns_none() {
        assert!(solve(vec![vec![1.0, 2.0], vec![2.0, 4.0]], vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn ridge_recovers_linear_trend() {
        // y = 3 + 2t fitted with design [1, t].
        let x: Vec<Vec<f64>> = (0..50).map(|t| vec![1.0, t as f64]).collect();
        let y: Vec<f64> = (0..50).map(|t| 3.0 + 2.0 * t as f64).collect();
        let beta = ridge_fit(&x, &y, 1e-6).unwrap();
        assert!((beta[0] - 3.0).abs() < 1e-3);
        assert!((beta[1] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn ridge_shrinks_under_collinearity() {
        // Two identical columns: OLS is singular; ridge resolves it.
        let x: Vec<Vec<f64>> = (0..20).map(|t| vec![t as f64, t as f64]).collect();
        let y: Vec<f64> = (0..20).map(|t| 4.0 * t as f64).collect();
        let beta = ridge_fit(&x, &y, 1e-3).unwrap();
        // Combined effect recovers slope 4 split across the twins.
        assert!((beta[0] + beta[1] - 4.0).abs() < 1e-2);
    }

    #[test]
    fn predict_row_is_dot_product() {
        assert_eq!(predict_row(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }
}
