//! # abase-cache
//!
//! ABase's dual-layer caching mechanism (paper §4.4):
//!
//! * [`lru`] — a classic byte-capacity LRU cache. This is the baseline the paper's
//!   size-aware strategy improves on, and the building block for the other policies.
//! * [`salru`] — **Size-Aware LRU (SA-LRU)**, the DataNode-layer cache: items are
//!   segregated into size classes with individual eviction policies, and eviction
//!   prefers classes that "occupy more memory while yielding fewer cache hits".
//! * [`aulru`] — **Active-Update LRU (AU-LRU)**, the proxy-layer cache: entries carry
//!   a TTL, and hot entries are proactively refreshed shortly before they expire so
//!   that the expiry of a hot key never produces a thundering herd on the data node.
//! * [`sharded`] — a lock-striped, `Sync` wrapper over SA-LRU shards for wall-clock
//!   multi-threaded use (the lavastore block cache is built on it).
//!
//! All caches are sized in **bytes** (not entry counts) because the paper's workloads
//! span 0.1 KB comments to 5 MB LLM KV-cache blobs (Table 1), and count-based caches
//! behave pathologically under that spread.

#![deny(missing_docs)]

pub mod aulru;
pub mod lru;
pub mod salru;
pub mod sharded;
pub mod stats;

pub use aulru::{AuLruCache, RefreshCandidate};
pub use lru::LruCache;
pub use salru::SaLruCache;
pub use sharded::{InsertOutcome, ShardedCache};
pub use stats::CacheStats;
