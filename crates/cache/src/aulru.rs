//! Active-Update LRU (AU-LRU) — the proxy-layer cache (paper §4.4).
//!
//! Proxy caches are small (<10 GB per the paper) and hold hot keys with a TTL.
//! When a hot key's entry expires, every in-flight request for it suddenly
//! misses and stampedes the data node — precisely during the high-traffic events
//! the cache exists to absorb. AU-LRU's *active update* mechanism "automatically
//! refreshes hot keys as they near expiration": shortly before an entry expires,
//! if it has been accessed enough times during its current lifetime, the cache
//! emits a [`RefreshCandidate`] that the proxy resolves by re-reading the key
//! from the data node and calling [`AuLruCache::update`], re-arming the TTL
//! without ever serving a miss.

use crate::lru::LruCache;
use crate::stats::CacheStats;
use abase_util::clock::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hash::Hash;

#[derive(Debug)]
struct Entry<V> {
    value: V,
    expires_at: SimTime,
    /// Accesses during the current TTL period (reset on refresh).
    period_accesses: u32,
    /// Monotonic generation, used to invalidate stale heap entries.
    generation: u64,
    /// True once this entry has been handed out as a refresh candidate for the
    /// current generation (prevents duplicate refresh traffic).
    refresh_pending: bool,
}

/// A key the proxy should proactively re-read from the data node before its
/// cached entry expires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefreshCandidate<K> {
    /// The hot key nearing expiry.
    pub key: K,
    /// When its current cache entry lapses.
    pub expires_at: SimTime,
}

/// Configuration for [`AuLruCache`].
#[derive(Debug, Clone, Copy)]
pub struct AuLruConfig {
    /// Byte capacity of the cache.
    pub capacity_bytes: usize,
    /// TTL applied to entries on insert/update.
    pub ttl: SimTime,
    /// How long before expiry an entry becomes eligible for active refresh.
    pub refresh_window: SimTime,
    /// Minimum accesses within the current TTL period to count as "hot".
    pub hot_threshold: u32,
}

impl Default for AuLruConfig {
    fn default() -> Self {
        Self {
            capacity_bytes: 64 << 20,
            ttl: 60 * 1_000_000,           // 60 s
            refresh_window: 5 * 1_000_000, // refresh within 5 s of expiry
            hot_threshold: 3,
        }
    }
}

/// Active-Update LRU cache with TTL entries and hot-key refresh.
#[derive(Debug)]
pub struct AuLruCache<K, V> {
    lru: LruCache<K, Entry<V>>,
    /// Min-heap of (expiry, generation, key) — lazily invalidated.
    expiry_heap: BinaryHeap<Reverse<(SimTime, u64, K)>>,
    config: AuLruConfig,
    next_generation: u64,
    stats: CacheStats,
    /// Count of refresh candidates emitted (for RU-saving accounting).
    refreshes_emitted: u64,
}

impl<K: Hash + Eq + Clone + Ord, V> AuLruCache<K, V> {
    /// A cache with the given configuration.
    pub fn new(config: AuLruConfig) -> Self {
        Self {
            lru: LruCache::new(config.capacity_bytes),
            expiry_heap: BinaryHeap::new(),
            config,
            next_generation: 0,
            stats: CacheStats::default(),
            refreshes_emitted: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AuLruConfig {
        &self.config
    }

    /// Hit/miss counters. Expired entries encountered on `get` count as misses
    /// *and* increment `expired`.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of refresh candidates handed out so far.
    pub fn refreshes_emitted(&self) -> u64 {
        self.refreshes_emitted
    }

    /// Live entries (may include entries that have expired but not yet been
    /// touched; those are reaped lazily).
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Bytes currently accounted.
    pub fn used_bytes(&self) -> usize {
        self.lru.used_bytes()
    }

    /// Look up `key` at virtual time `now`.
    ///
    /// An entry past its expiry is removed and reported as a miss — unless it
    /// was emitted as a refresh candidate that has not come back yet, in which
    /// case the (slightly stale) value is still served; this matches the
    /// active-update goal of "maintaining the timeliness and continuity of the
    /// cached data" without a miss spike while the refresh is in flight.
    pub fn get(&mut self, key: &K, now: SimTime) -> Option<&V> {
        let expired = match self.lru.peek(key) {
            None => {
                self.stats.misses += 1;
                return None;
            }
            Some(e) => e.expires_at <= now && !e.refresh_pending,
        };
        if expired {
            self.lru.remove(key);
            self.stats.expired += 1;
            self.stats.misses += 1;
            return None;
        }
        self.stats.hits += 1;
        // INVARIANT: the hit path above just promoted this key; neither
        // `get_mut` nor `peek` can miss before the next mutation.
        let entry = self
            .lru
            .get_mut(key)
            .expect("peeked entry still present after promotion");
        entry.period_accesses = entry.period_accesses.saturating_add(1);
        // Reborrow immutably for the return value.
        Some(&self.lru.peek(key).expect("entry present").value)
    }

    /// Insert a value fetched from the data node; arms a fresh TTL.
    pub fn insert(&mut self, key: K, value: V, size: usize, now: SimTime) {
        let generation = self.next_generation;
        self.next_generation += 1;
        let expires_at = now + self.config.ttl;
        let entry = Entry {
            value,
            expires_at,
            period_accesses: 0,
            generation,
            refresh_pending: false,
        };
        self.stats.insertions += 1;
        let evicted = self.lru.insert(key.clone(), entry, size);
        self.stats.evictions += evicted.len() as u64;
        self.expiry_heap
            .push(Reverse((expires_at, generation, key)));
    }

    /// Re-arm an entry after an active refresh completed. Equivalent to
    /// [`AuLruCache::insert`], but counted separately by callers for RU math.
    pub fn update(&mut self, key: K, value: V, size: usize, now: SimTime) {
        self.insert(key, value, size, now);
    }

    /// Remove a key (e.g. after a tenant write invalidates the cached value).
    pub fn invalidate(&mut self, key: &K) -> bool {
        self.lru.remove(key).is_some()
    }

    /// Drain the keys that should be actively refreshed as of `now`: hot
    /// entries whose expiry falls within the refresh window. Also lazily reaps
    /// cold entries that are already past expiry.
    pub fn refresh_candidates(&mut self, now: SimTime) -> Vec<RefreshCandidate<K>> {
        let horizon = now + self.config.refresh_window;
        let mut out = Vec::new();
        while let Some(Reverse((expires_at, _, _))) = self.expiry_heap.peek() {
            if *expires_at > horizon {
                break;
            }
            let (expires_at, generation, key) = {
                // INVARIANT: `peek()` returned Some in the loop head.
                let Reverse(t) = self.expiry_heap.pop().expect("peeked entry");
                t
            };
            let Some(entry) = self.lru.peek(&key) else {
                continue; // entry evicted/invalidated since scheduling
            };
            if entry.generation != generation {
                continue; // superseded by a newer insert/update
            }
            let hot = entry.period_accesses >= self.config.hot_threshold;
            if hot && !entry.refresh_pending {
                // INVARIANT: `peek` found the entry a few lines up and no
                // mutation happened since.
                let e = self.lru.get_mut(&key).expect("entry present");
                e.refresh_pending = true;
                self.refreshes_emitted += 1;
                out.push(RefreshCandidate { key, expires_at });
            } else if expires_at <= now {
                // Cold and already expired: reap eagerly to free memory.
                self.lru.remove(&key);
                self.stats.expired += 1;
            } else {
                // Cold but not yet expired: re-queue for the expiry moment so
                // we reap it (or it turns hot in the meantime).
                self.expiry_heap
                    .push(Reverse((expires_at, generation, key)));
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: SimTime = 1_000_000;

    fn config() -> AuLruConfig {
        AuLruConfig {
            capacity_bytes: 1 << 20,
            ttl: 60 * SEC,
            refresh_window: 5 * SEC,
            hot_threshold: 3,
        }
    }

    #[test]
    fn hit_before_expiry_miss_after() {
        let mut c = AuLruCache::new(config());
        c.insert("k", 42u32, 10, 0);
        assert_eq!(c.get(&"k", 59 * SEC), Some(&42));
        assert_eq!(c.get(&"k", 61 * SEC), None);
        assert_eq!(c.stats().expired, 1);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn hot_entry_becomes_refresh_candidate_near_expiry() {
        let mut c = AuLruCache::new(config());
        c.insert("hot", 1u32, 10, 0);
        for t in 1..=3 {
            c.get(&"hot", t * SEC);
        }
        // Not yet in the window at t=50s.
        assert!(c.refresh_candidates(50 * SEC).is_empty());
        // Within the 5s window of the 60s expiry.
        let cands = c.refresh_candidates(56 * SEC);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].key, "hot");
        // Emitted only once.
        assert!(c.refresh_candidates(57 * SEC).is_empty());
        assert_eq!(c.refreshes_emitted(), 1);
    }

    #[test]
    fn cold_entry_is_not_refreshed_and_reaps_after_expiry() {
        let mut c = AuLruCache::new(config());
        c.insert("cold", 1u32, 10, 0);
        c.get(&"cold", SEC); // 1 access < threshold 3
        assert!(c.refresh_candidates(56 * SEC).is_empty());
        assert_eq!(c.len(), 1);
        // After expiry the reaper removes it.
        assert!(c.refresh_candidates(61 * SEC).is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().expired, 1);
    }

    #[test]
    fn update_rearms_ttl_and_resets_hotness() {
        let mut c = AuLruCache::new(config());
        c.insert("k", 1u32, 10, 0);
        for t in 1..=3 {
            c.get(&"k", t * SEC);
        }
        let cands = c.refresh_candidates(56 * SEC);
        assert_eq!(cands.len(), 1);
        // Proxy completes the refresh.
        c.update("k", 2u32, 10, 57 * SEC);
        // Entry lives past the original expiry with the new value.
        assert_eq!(c.get(&"k", 80 * SEC), Some(&2));
        // Old heap entry is stale (generation bumped) and does not refresh again.
        assert!(c.refresh_candidates(58 * SEC).is_empty());
    }

    #[test]
    fn pending_refresh_serves_stale_value_instead_of_missing() {
        let mut c = AuLruCache::new(config());
        c.insert("k", 1u32, 10, 0);
        for t in 1..=3 {
            c.get(&"k", t * SEC);
        }
        assert_eq!(c.refresh_candidates(56 * SEC).len(), 1);
        // Refresh has not returned; at t=61s (past expiry) we still serve.
        assert_eq!(c.get(&"k", 61 * SEC), Some(&1));
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut c = AuLruCache::new(config());
        c.insert("k", 1u32, 10, 0);
        assert!(c.invalidate(&"k"));
        assert!(!c.invalidate(&"k"));
        assert_eq!(c.get(&"k", SEC), None);
    }

    #[test]
    fn capacity_evictions_are_counted() {
        let mut c = AuLruCache::new(AuLruConfig {
            capacity_bytes: 25,
            ..config()
        });
        c.insert("a", 1u32, 10, 0);
        c.insert("b", 2u32, 10, 0);
        c.insert("c", 3u32, 10, 0); // evicts "a"
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.get(&"a", SEC), None);
        assert_eq!(c.get(&"b", SEC), Some(&2));
    }

    #[test]
    fn stale_heap_entries_do_not_refresh_reinserted_keys() {
        let mut c = AuLruCache::new(config());
        c.insert("k", 1u32, 10, 0);
        for t in 1..=3 {
            c.get(&"k", t * SEC);
        }
        // Re-insert resets generation and TTL before the window.
        c.insert("k", 2u32, 10, 30 * SEC);
        // The original expiry (60s) window arrives; the stale heap record must
        // not trigger a refresh because the generation changed.
        assert!(c.refresh_candidates(56 * SEC).is_empty());
    }
}
