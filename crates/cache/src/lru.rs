//! Byte-capacity LRU cache.
//!
//! An intrusive doubly-linked list over a slab gives O(1) get/insert/evict with
//! no per-operation allocation once the slab has grown. This is both the plain
//! baseline measured in the SA-LRU ablation bench and the per-size-class
//! building block inside [`crate::salru::SaLruCache`].

use crate::stats::CacheStats;
use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    size: usize,
    prev: usize,
    next: usize,
}

/// An LRU cache bounded by total byte size.
///
/// Entry sizes are supplied by the caller on insert, so the cache works equally
/// for raw byte values and for richer entry types whose logical footprint the
/// caller knows best.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Option<Slot<K, V>>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity_bytes: usize,
    used_bytes: usize,
    stats: CacheStats,
}

impl<K: Hash + Eq + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity_bytes` of entries.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity_bytes,
            used_bytes: 0,
            stats: CacheStats::default(),
        }
    }

    /// Configured byte capacity.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Bytes currently held.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset hit/miss counters (entries are untouched).
    pub fn reset_stats(&mut self) {
        self.stats.clear();
    }

    // INVARIANT: callers only pass indices obtained from `map`, which always
    // point at occupied slab slots (freed indices are removed from `map`).
    fn slot(&self, idx: usize) -> &Slot<K, V> {
        self.slots[idx].as_ref().expect("live slot")
    }

    fn slot_mut(&mut self, idx: usize) -> &mut Slot<K, V> {
        // INVARIANT: same contract as `slot` above.
        self.slots[idx].as_mut().expect("live slot")
    }

    /// Look up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.stats.hits += 1;
                self.move_to_head(idx);
                Some(&self.slot(idx).value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Like [`LruCache::get`], but returns a mutable reference on a hit.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.stats.hits += 1;
                self.move_to_head(idx);
                Some(&mut self.slot_mut(idx).value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Look up `key` without promoting it or touching statistics.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.slot(idx).value)
    }

    /// Byte size recorded for `key`, if cached.
    pub fn size_of(&self, key: &K) -> Option<usize> {
        self.map.get(key).map(|&idx| self.slot(idx).size)
    }

    /// True if `key` is cached (no promotion, no stats).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Insert `key -> value` accounting `size` bytes, evicting LRU entries as
    /// needed. An entry larger than the whole capacity is not admitted (the
    /// paper's DataNode cache never admits blobs that would wipe the cache).
    ///
    /// Returns the entries evicted to make room (oldest first), excluding any
    /// previous value for `key` itself.
    pub fn insert(&mut self, key: K, value: V, size: usize) -> Vec<(K, V)> {
        self.stats.insertions += 1;
        if let Some(&idx) = self.map.get(&key) {
            let old_size = self.slot(idx).size;
            self.used_bytes = self.used_bytes - old_size + size;
            let slot = self.slot_mut(idx);
            slot.value = value;
            slot.size = size;
            self.move_to_head(idx);
            return self.evict_to_fit();
        }
        if size > self.capacity_bytes {
            return Vec::new();
        }
        let slot = Slot {
            key: key.clone(),
            value,
            size,
            prev: NIL,
            next: self.head,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                debug_assert!(self.slots[i].is_none());
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        if self.head != NIL {
            self.slot_mut(self.head).prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
        self.map.insert(key, idx);
        self.used_bytes += size;
        self.evict_to_fit()
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        let slot = self.detach(idx);
        Some(slot.value)
    }

    /// Evict and return the least-recently-used entry `(key, value, size)`.
    pub fn pop_lru(&mut self) -> Option<(K, V, usize)> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        let slot = self.detach(idx);
        self.map.remove(&slot.key);
        self.stats.evictions += 1;
        Some((slot.key, slot.value, slot.size))
    }

    /// The least-recently-used key, without removing it.
    pub fn peek_lru(&self) -> Option<&K> {
        if self.tail == NIL {
            None
        } else {
            Some(&self.slot(self.tail).key)
        }
    }

    /// Keys in most-recent-first order (test/diagnostic helper; O(n)).
    pub fn keys_mru_first(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            let slot = self.slot(cur);
            out.push(slot.key.clone());
            cur = slot.next;
        }
        out
    }

    fn evict_to_fit(&mut self) -> Vec<(K, V)> {
        let mut evicted = Vec::new();
        while self.used_bytes > self.capacity_bytes {
            let idx = self.tail;
            debug_assert_ne!(idx, NIL, "over capacity with empty list");
            let slot = self.detach(idx);
            self.map.remove(&slot.key);
            self.stats.evictions += 1;
            evicted.push((slot.key, slot.value));
        }
        evicted
    }

    /// Unlink slot `idx` from the recency list, free the slab slot, subtract
    /// its bytes, and return the owned slot.
    fn detach(&mut self, idx: usize) -> Slot<K, V> {
        self.unlink(idx);
        // INVARIANT: `idx` came from `map`, so the slot is occupied.
        let slot = self.slots[idx].take().expect("live slot");
        self.used_bytes -= slot.size;
        self.free.push(idx);
        slot
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let s = self.slot(idx);
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slot_mut(prev).next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slot_mut(next).prev = prev;
        } else {
            self.tail = prev;
        }
        let s = self.slot_mut(idx);
        s.prev = NIL;
        s.next = NIL;
    }

    fn move_to_head(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.slot_mut(idx).next = self.head;
        if self.head != NIL {
            self.slot_mut(self.head).prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize) -> LruCache<String, u32> {
        LruCache::new(capacity)
    }

    #[test]
    fn insert_and_get() {
        let mut c = cache(100);
        c.insert("a".into(), 1, 10);
        assert_eq!(c.get(&"a".into()), Some(&1));
        assert_eq!(c.get(&"b".into()), None);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.used_bytes(), 10);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = cache(30);
        c.insert("a".into(), 1, 10);
        c.insert("b".into(), 2, 10);
        c.insert("c".into(), 3, 10);
        // Touch "a" so "b" becomes LRU.
        c.get(&"a".into());
        let evicted = c.insert("d".into(), 4, 10);
        assert_eq!(evicted, vec![("b".to_string(), 2)]);
        assert!(c.contains(&"a".into()));
        assert!(c.contains(&"c".into()));
        assert!(c.contains(&"d".into()));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn oversized_entry_not_admitted() {
        let mut c = cache(10);
        let evicted = c.insert("big".into(), 1, 11);
        assert!(evicted.is_empty());
        assert!(!c.contains(&"big".into()));
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn overwrite_updates_size_accounting() {
        let mut c = cache(100);
        c.insert("a".into(), 1, 10);
        c.insert("a".into(), 2, 30);
        assert_eq!(c.used_bytes(), 30);
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(&"a".into()), Some(&2));
    }

    #[test]
    fn overwrite_to_larger_can_evict_others() {
        let mut c = cache(30);
        c.insert("a".into(), 1, 10);
        c.insert("b".into(), 2, 10);
        let evicted = c.insert("b".into(), 3, 25);
        assert_eq!(evicted, vec![("a".to_string(), 1)]);
        assert_eq!(c.used_bytes(), 25);
    }

    #[test]
    fn remove_frees_bytes_and_slot_reuse_works() {
        let mut c = cache(100);
        c.insert("a".into(), 1, 40);
        assert_eq!(c.remove(&"a".into()), Some(1));
        assert_eq!(c.used_bytes(), 0);
        assert!(c.is_empty());
        // Slot is reused without corruption.
        c.insert("b".into(), 2, 40);
        c.insert("c".into(), 3, 40);
        assert_eq!(c.get(&"b".into()), Some(&2));
        assert_eq!(c.get(&"c".into()), Some(&3));
    }

    #[test]
    fn pop_lru_returns_oldest() {
        let mut c = cache(100);
        c.insert("a".into(), 1, 10);
        c.insert("b".into(), 2, 10);
        assert_eq!(c.peek_lru(), Some(&"a".to_string()));
        assert_eq!(c.pop_lru(), Some(("a".to_string(), 1, 10)));
        assert_eq!(c.pop_lru(), Some(("b".to_string(), 2, 10)));
        assert_eq!(c.pop_lru(), None);
    }

    #[test]
    fn recency_order_is_maintained() {
        let mut c = cache(100);
        c.insert("a".into(), 1, 1);
        c.insert("b".into(), 2, 1);
        c.insert("c".into(), 3, 1);
        c.get(&"a".into());
        assert_eq!(
            c.keys_mru_first(),
            vec!["a".to_string(), "c".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn peek_does_not_promote() {
        let mut c = cache(20);
        c.insert("a".into(), 1, 10);
        c.insert("b".into(), 2, 10);
        c.peek(&"a".into());
        // "a" is still LRU, so inserting "c" evicts it.
        let evicted = c.insert("c".into(), 3, 10);
        assert_eq!(evicted[0].0, "a");
    }

    #[test]
    fn many_inserts_stay_within_capacity() {
        let mut c = cache(1000);
        for i in 0..10_000u32 {
            c.insert(format!("k{i}"), i, 7);
        }
        assert!(c.used_bytes() <= 1000);
        assert_eq!(c.used_bytes(), c.len() * 7);
    }
}
