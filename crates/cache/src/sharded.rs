//! Lock-striped, thread-safe wrapper around [`SaLruCache`].
//!
//! The simulation-layer caches in this crate are single-threaded by design
//! (`&mut self` everywhere, sim-time TTLs). The storage engine needs the same
//! SA-LRU size-aware policy (paper §4.4) behind a `Sync` facade that many
//! reader threads can hit concurrently. `ShardedCache` splits the byte budget
//! across a power-of-two number of shards, each an independent
//! `Mutex<SaLruCache>`; a key's shard is chosen by hash, so unrelated lookups
//! take unrelated locks and the hot path is one short critical section.
//!
//! Values are required to be `Clone`: callers store `Arc<[u8]>`-style handles
//! so a hit clones a pointer, never the payload.

use crate::salru::SaLruCache;
use crate::stats::CacheStats;
use abase_util::lockrank::{rank, RankedMutex};
use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicUsize, Ordering};

/// What happened to an [`ShardedCache::insert`] call.
#[derive(Debug)]
pub struct InsertOutcome<K, V> {
    /// Entries displaced by the size-aware policy to make room.
    pub evicted: Vec<(K, V)>,
    /// False when the entry was larger than its shard's budget and was not
    /// admitted at all.
    pub admitted: bool,
}

/// A thread-safe SA-LRU: N lock-striped shards, each running the size-aware
/// eviction policy, bounded by a shared byte capacity.
pub struct ShardedCache<K, V> {
    shards: Box<[RankedMutex<SaLruCache<K, V>>]>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: usize,
    hasher: RandomState,
    /// Sum of per-shard `used_bytes`, maintained under each shard's lock so
    /// readers never have to sweep every shard for a gauge.
    resident: AtomicUsize,
    capacity_bytes: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V> {
    /// A cache of `capacity_bytes` split over `shards` lock stripes.
    ///
    /// `shards` is rounded up to the next power of two (minimum 1). Each
    /// shard owns an equal slice of the byte budget, so a single entry can
    /// never exceed `capacity_bytes / shard_count`.
    pub fn new(capacity_bytes: usize, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let per_shard = (capacity_bytes / n).max(1);
        let shards: Box<[_]> = (0..n)
            .map(|_| RankedMutex::new(rank::CACHE_SHARD, SaLruCache::new(per_shard)))
            .collect();
        Self {
            shards,
            mask: n - 1,
            hasher: RandomState::new(),
            resident: AtomicUsize::new(0),
            capacity_bytes: per_shard * n,
        }
    }

    fn shard_for(&self, key: &K) -> &RankedMutex<SaLruCache<K, V>> {
        let idx = self.hasher.hash_one(key) as usize & self.mask;
        &self.shards[idx]
    }

    /// Look up `key`, promoting it within its shard on a hit. Returns a clone
    /// of the stored value (an `Arc` handle for block-cache use).
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard_for(key).lock().get(key).cloned()
    }

    /// True if `key` is currently cached (no promotion, no stats).
    pub fn contains(&self, key: &K) -> bool {
        self.shard_for(key).lock().contains(key)
    }

    /// Insert an entry of `size` bytes, evicting per the size-aware policy.
    pub fn insert(&self, key: K, value: V, size: usize) -> InsertOutcome<K, V> {
        let shard = self.shard_for(&key);
        let mut guard = shard.lock();
        let before = guard.used_bytes();
        let evicted = guard.insert(key.clone(), value, size);
        let admitted = guard.contains(&key);
        let after = guard.used_bytes();
        drop(guard);
        match after.cmp(&before) {
            std::cmp::Ordering::Greater => {
                self.resident.fetch_add(after - before, Ordering::Relaxed);
            }
            std::cmp::Ordering::Less => {
                self.resident.fetch_sub(before - after, Ordering::Relaxed);
            }
            std::cmp::Ordering::Equal => {}
        }
        InsertOutcome { evicted, admitted }
    }

    /// Remove `key`, returning its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        let shard = self.shard_for(key);
        let mut guard = shard.lock();
        let before = guard.used_bytes();
        let value = guard.remove(key);
        let after = guard.used_bytes();
        drop(guard);
        if before > after {
            self.resident.fetch_sub(before - after, Ordering::Relaxed);
        }
        value
    }

    /// Total configured byte capacity across all shards.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Bytes currently resident across all shards (lock-free read).
    pub fn used_bytes(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// Number of lock stripes (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Live entries across all shards. Locks each shard in turn; diagnostic
    /// use only.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Merged hit/miss counters across all shards — the same [`CacheStats`]
    /// shape the proxy AU-LRU and node SA-LRU report. Locks each shard in
    /// turn; reporting use only.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in self.shards.iter() {
            total.merge(shard.lock().stats());
        }
        total
    }
}

impl<K, V> std::fmt::Debug for ShardedCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("capacity_bytes", &self.capacity_bytes)
            .field("used_bytes", &self.resident.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(1 << 20, 5);
        assert_eq!(c.shard_count(), 8);
        let c: ShardedCache<u64, u64> = ShardedCache::new(1 << 20, 0);
        assert_eq!(c.shard_count(), 1);
    }

    #[test]
    fn insert_get_roundtrip() {
        let c = ShardedCache::new(1 << 20, 4);
        for i in 0..100u64 {
            c.insert(i, i * 10, 64);
        }
        for i in 0..100u64 {
            assert_eq!(c.get(&i), Some(i * 10), "key {i}");
        }
        assert_eq!(c.len(), 100);
        assert_eq!(c.used_bytes(), 100 * 64);
    }

    #[test]
    fn capacity_bounds_hold_under_churn() {
        let c = ShardedCache::new(64 << 10, 4);
        for i in 0..10_000u64 {
            let size = 1 + (i as usize * 131) % 4096;
            c.insert(i, i, size);
            assert!(
                c.used_bytes() <= c.capacity_bytes(),
                "over budget at i={i}: {} > {}",
                c.used_bytes(),
                c.capacity_bytes()
            );
        }
        let stats = c.stats();
        assert!(stats.evictions > 0, "churn never evicted: {stats:?}");
        assert_eq!(stats.insertions, 10_000);
    }

    #[test]
    fn oversized_entry_not_admitted() {
        let c = ShardedCache::new(4 << 10, 4); // 1 KiB per shard
        let out = c.insert(7u64, 7u64, 2 << 10);
        assert!(!out.admitted);
        assert_eq!(c.get(&7), None);
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn remove_releases_bytes() {
        let c = ShardedCache::new(1 << 20, 2);
        c.insert("k".to_string(), 1u32, 500);
        assert_eq!(c.used_bytes(), 500);
        assert_eq!(c.remove(&"k".to_string()), Some(1));
        assert_eq!(c.used_bytes(), 0);
        assert_eq!(c.remove(&"k".to_string()), None);
    }

    #[test]
    fn stats_merge_across_shards() {
        let c = ShardedCache::new(1 << 20, 8);
        for i in 0..50u64 {
            c.insert(i, i, 32);
        }
        for i in 0..50u64 {
            c.get(&i);
        }
        for i in 100..120u64 {
            c.get(&i);
        }
        let stats = c.stats();
        assert_eq!(stats.hits, 50);
        assert_eq!(stats.misses, 20);
        assert!((stats.hit_ratio() - 50.0 / 70.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_readers_and_writers_stay_consistent() {
        let c = Arc::new(ShardedCache::new(256 << 10, 8));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let key = (t * 1_000 + i) % 512;
                        if i % 3 == 0 {
                            c.insert(key, key * 2, 128);
                        } else if let Some(v) = c.get(&key) {
                            assert_eq!(v, key * 2, "torn value for {key}");
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("no panics");
        }
        assert!(c.used_bytes() <= c.capacity_bytes());
        assert!(c.stats().hits > 0);
    }
}
