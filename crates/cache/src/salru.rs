//! Size-Aware LRU (SA-LRU) — the DataNode-layer cache (paper §4.4).
//!
//! Workload diversity forces a single node cache to hold 0.1 KB comments next to
//! multi-megabyte blobs (Table 1). A plain byte-LRU lets a burst of large cold
//! values flush thousands of small hot ones. SA-LRU therefore:
//!
//! 1. segregates entries into **size classes**, each with its own LRU list
//!    ("individual eviction policies for items of different sizes"), and
//! 2. on memory pressure, evicts from the class with the lowest **hit density**
//!    (decayed hits per byte), i.e. "data that occupies more memory while
//!    yielding fewer cache hits", which naturally prioritizes retaining small
//!    entries whose access cost is lowest.

use crate::lru::LruCache;
use crate::stats::CacheStats;
use std::collections::HashMap;
use std::hash::Hash;

/// Default size-class upper bounds in bytes (last class is unbounded).
pub const DEFAULT_CLASS_BOUNDS: &[usize] = &[
    256,
    1 << 10,
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
    1 << 20,
    usize::MAX,
];

/// How many lookups between exponential decays of per-class hit counters.
const DECAY_INTERVAL: u64 = 4096;
/// Multiplier applied to per-class hit counters at each decay.
const DECAY_FACTOR: f64 = 0.5;

#[derive(Debug)]
struct ClassShard<K, V> {
    lru: LruCache<K, V>,
    /// Exponentially decayed hit count — the "yield" half of hit density.
    hits: f64,
}

/// Per-class diagnostic snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassInfo {
    /// Upper bound (exclusive) of entry sizes in this class, in bytes.
    pub upper_bound: usize,
    /// Bytes held by the class.
    pub bytes: usize,
    /// Live entries in the class.
    pub entries: usize,
    /// Decayed hit counter.
    pub decayed_hits: f64,
}

/// Size-Aware LRU cache bounded by total byte size.
#[derive(Debug)]
pub struct SaLruCache<K, V> {
    classes: Vec<ClassShard<K, V>>,
    bounds: Vec<usize>,
    key_class: HashMap<K, u8>,
    capacity_bytes: usize,
    used_bytes: usize,
    stats: CacheStats,
    lookups_since_decay: u64,
}

impl<K: Hash + Eq + Clone, V> SaLruCache<K, V> {
    /// An SA-LRU with the default size classes.
    pub fn new(capacity_bytes: usize) -> Self {
        Self::with_class_bounds(capacity_bytes, DEFAULT_CLASS_BOUNDS)
    }

    /// An SA-LRU with caller-provided size-class upper bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty, not strictly increasing, or does not end
    /// with `usize::MAX` (every size must map to a class).
    pub fn with_class_bounds(capacity_bytes: usize, bounds: &[usize]) -> Self {
        assert!(!bounds.is_empty(), "need at least one size class");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "class bounds must be strictly increasing"
        );
        assert_eq!(
            // INVARIANT: the `is_empty` assert above guarantees a last element.
            *bounds.last().expect("non-empty"),
            usize::MAX,
            "last class must be unbounded"
        );
        let classes = bounds
            .iter()
            .map(|_| ClassShard {
                // Shards are individually unbounded; SaLruCache enforces the
                // global budget itself.
                lru: LruCache::new(usize::MAX),
                hits: 0.0,
            })
            .collect();
        Self {
            classes,
            bounds: bounds.to_vec(),
            key_class: HashMap::new(),
            capacity_bytes,
            used_bytes: 0,
            stats: CacheStats::default(),
            lookups_since_decay: 0,
        }
    }

    /// Configured byte capacity.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Bytes currently held across all classes.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Live entry count across all classes.
    pub fn len(&self) -> usize {
        self.key_class.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.key_class.is_empty()
    }

    /// Global hit/miss counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset hit/miss counters (entries untouched).
    pub fn reset_stats(&mut self) {
        self.stats.clear();
    }

    fn class_of(&self, size: usize) -> u8 {
        self.bounds
            .iter()
            .position(|&b| size <= b)
            // INVARIANT: construction asserts the last bound is usize::MAX,
            // so every size matches at least one class.
            .expect("last bound is usize::MAX") as u8
    }

    /// Look up `key`, promoting it within its class on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.maybe_decay();
        self.lookups_since_decay += 1;
        match self.key_class.get(key).copied() {
            Some(class) => {
                self.stats.hits += 1;
                let shard = &mut self.classes[class as usize];
                shard.hits += 1.0;
                shard.lru.get(key)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Look up without promotion or statistics.
    pub fn peek(&self, key: &K) -> Option<&V> {
        let class = *self.key_class.get(key)?;
        self.classes[class as usize].lru.peek(key)
    }

    /// True if `key` is cached.
    pub fn contains(&self, key: &K) -> bool {
        self.key_class.contains_key(key)
    }

    /// Insert an entry of `size` bytes, evicting per the size-aware policy.
    /// Returns evicted `(key, value)` pairs. Entries larger than the total
    /// capacity are not admitted.
    pub fn insert(&mut self, key: K, value: V, size: usize) -> Vec<(K, V)> {
        self.stats.insertions += 1;
        if size > self.capacity_bytes {
            return Vec::new();
        }
        let class = self.class_of(size);
        // Handle a re-insert whose size moved it to a different class.
        if let Some(&old_class) = self.key_class.get(&key) {
            let old_shard = &mut self.classes[old_class as usize];
            // INVARIANT: `key_class` and the per-class LRUs are updated in
            // lockstep; a mapped key is always present in its class.
            let old_size = old_shard.lru.size_of(&key).expect("key tracked in class");
            if old_class == class {
                self.used_bytes = self.used_bytes - old_size + size;
                old_shard.lru.insert(key, value, size);
                return self.evict_to_fit();
            }
            old_shard.lru.remove(&key);
            self.used_bytes -= old_size;
        }
        self.key_class.insert(key.clone(), class);
        self.classes[class as usize].lru.insert(key, value, size);
        self.used_bytes += size;
        self.evict_to_fit()
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let class = self.key_class.remove(key)?;
        let shard = &mut self.classes[class as usize];
        // INVARIANT: `key_class` and the per-class LRUs are updated in
        // lockstep; a mapped key is always present in its class.
        let size = shard.lru.size_of(key).expect("key tracked in class");
        let value = shard.lru.remove(key).expect("key tracked in class");
        self.used_bytes -= size;
        Some(value)
    }

    /// Diagnostic snapshot of every size class.
    pub fn class_infos(&self) -> Vec<ClassInfo> {
        self.bounds
            .iter()
            .zip(&self.classes)
            .map(|(&upper_bound, shard)| ClassInfo {
                upper_bound,
                bytes: shard.lru.used_bytes(),
                entries: shard.lru.len(),
                decayed_hits: shard.hits,
            })
            .collect()
    }

    /// Hit density of a class: decayed hits per byte (+1 smoothing on both
    /// sides so empty/new classes compare sanely).
    fn hit_density(shard: &ClassShard<K, V>) -> f64 {
        (shard.hits + 1.0) / (shard.lru.used_bytes() as f64 + 1.0)
    }

    fn evict_to_fit(&mut self) -> Vec<(K, V)> {
        let mut evicted = Vec::new();
        while self.used_bytes > self.capacity_bytes {
            // Victim class: lowest hit density among non-empty classes; ties
            // broken toward the larger size class (cheaper to re-fetch few
            // large items than many small ones, and large items cost more
            // memory per hit).
            let victim = self
                .classes
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.lru.is_empty())
                .min_by(|(ia, a), (ib, b)| {
                    Self::hit_density(a)
                        // INVARIANT: hit_density divides by a clamped non-zero
                        // denominator and never yields NaN.
                        .partial_cmp(&Self::hit_density(b))
                        .expect("hit density is finite")
                        .then(ib.cmp(ia))
                })
                .map(|(i, _)| i)
                // INVARIANT: used_bytes > capacity implies some class holds an
                // entry, and the filter keeps exactly those classes.
                .expect("over capacity implies a non-empty class");
            let shard = &mut self.classes[victim];
            // INVARIANT: the victim passed the `!is_empty` filter above.
            let (key, value, size) = shard.lru.pop_lru().expect("victim class non-empty");
            self.used_bytes -= size;
            self.key_class.remove(&key);
            self.stats.evictions += 1;
            evicted.push((key, value));
        }
        evicted
    }

    fn maybe_decay(&mut self) {
        if self.lookups_since_decay >= DECAY_INTERVAL {
            for shard in &mut self.classes {
                shard.hits *= DECAY_FACTOR;
            }
            self.lookups_since_decay = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_assignment_follows_bounds() {
        let c: SaLruCache<u32, ()> = SaLruCache::new(1 << 20);
        assert_eq!(c.class_of(1), 0);
        assert_eq!(c.class_of(256), 0);
        assert_eq!(c.class_of(257), 1);
        assert_eq!(c.class_of(1 << 20), 6);
        assert_eq!(c.class_of(5 << 20), 7);
    }

    #[test]
    fn basic_insert_get_remove() {
        let mut c = SaLruCache::new(10_000);
        c.insert("a", 1u32, 100);
        c.insert("b", 2u32, 5_000);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"missing"), None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.used_bytes(), 5_100);
        assert_eq!(c.remove(&"b"), Some(2));
        assert_eq!(c.used_bytes(), 100);
    }

    #[test]
    fn evicts_cold_large_class_before_hot_small_class() {
        // Capacity 10 KB. Fill with small hot entries, then push large cold ones.
        let mut c = SaLruCache::new(10 << 10);
        for i in 0..40u32 {
            c.insert(format!("small{i}"), i, 100); // 4 KB of small entries
        }
        // Make the small class hot.
        for _ in 0..10 {
            for i in 0..40u32 {
                c.get(&format!("small{i}"));
            }
        }
        // Large cold entries force eviction; the large class should be the victim.
        c.insert("large0".to_string(), 0, 5 << 10);
        let evicted = c.insert("large1".to_string(), 1, 5 << 10);
        assert!(
            evicted.iter().all(|(k, _)| k.starts_with("large")),
            "evicted {evicted:?}"
        );
        // All small hot entries survive.
        for i in 0..40u32 {
            assert!(c.contains(&format!("small{i}")), "small{i} was evicted");
        }
    }

    #[test]
    fn plain_lru_would_have_evicted_small_entries() {
        // Contrast case documenting the baseline behaviour SA-LRU avoids:
        // in a byte-LRU the large inserts evict everything older.
        let mut lru = crate::lru::LruCache::new(10 << 10);
        for i in 0..40u32 {
            lru.insert(format!("small{i}"), i, 100);
        }
        lru.insert("large0".to_string(), 0, 5 << 10);
        lru.insert("large1".to_string(), 1, 5 << 10);
        let survivors = (0..40u32)
            .filter(|i| lru.contains(&format!("small{i}")))
            .count();
        assert!(survivors < 40, "plain LRU keeps all small entries?");
    }

    #[test]
    fn within_class_eviction_is_lru() {
        let mut c = SaLruCache::with_class_bounds(300, &[usize::MAX]);
        c.insert("a", 1u32, 100);
        c.insert("b", 2u32, 100);
        c.insert("c", 3u32, 100);
        c.get(&"a");
        let evicted = c.insert("d", 4u32, 100);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, "b");
    }

    #[test]
    fn resize_across_classes_moves_entry() {
        let mut c = SaLruCache::new(1 << 20);
        c.insert("k", 1u32, 100); // class 0
        c.insert("k", 2u32, 10 << 10); // class 3
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 10 << 10);
        assert_eq!(c.peek(&"k"), Some(&2));
        let infos = c.class_infos();
        assert_eq!(infos[0].entries, 0);
        assert_eq!(infos[3].entries, 1);
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut c = SaLruCache::new(100);
        c.insert("big", 0u32, 101);
        assert!(!c.contains(&"big"));
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn used_bytes_never_exceeds_capacity() {
        let mut c = SaLruCache::new(4096);
        for i in 0..1000u32 {
            let size = 1 + (i as usize * 37) % 900;
            c.insert(i, i, size);
            assert!(c.used_bytes() <= 4096, "over capacity at i={i}");
        }
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c = SaLruCache::new(1000);
        c.insert("a", 1u32, 10);
        c.get(&"a");
        c.get(&"b");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }
}
