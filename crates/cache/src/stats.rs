//! Cache hit/miss accounting.

/// Counters shared by every cache policy in this crate.
///
/// `hit_ratio()` is the quantity the paper's RU formula consumes as `E[R_hit]`
/// (§4.1) and the quantity plotted throughout Figures 4–5 and Table 2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing (or only an expired entry).
    pub misses: u64,
    /// Entries inserted (including overwrites).
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries dropped because their TTL lapsed.
    pub expired: u64,
}

impl CacheStats {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; 0 when no lookups have happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.expired += other.expired;
    }

    /// Reset all counters to zero.
    pub fn clear(&mut self) {
        *self = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_handles_empty() {
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn hit_ratio_computes() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(s.lookups(), 4);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CacheStats {
            hits: 1,
            misses: 2,
            insertions: 3,
            evictions: 4,
            expired: 5,
        };
        a.merge(&a.clone());
        assert_eq!(a.hits, 2);
        assert_eq!(a.expired, 10);
        a.clear();
        assert_eq!(a, CacheStats::default());
    }
}
