//! Figure 10 — Online rescheduling every 10 minutes.
//!
//! "Following the rescheduling algorithms, the maximum RU utilization among
//! DataNodes increasingly converged towards the average RU utilization."
//!
//! Migrations are **real data movement**, not routing flips: each move stays
//! in flight for the hours its checkpoint copy takes under the §3.3 per-disk
//! bandwidth model, and its two nodes stay blocked (`is_migrating`) until
//! that individual move completes — the same per-migration completion
//! semantics the live `MigrationEngine` enforces.

use abase_bench::{banner, pct, sparkline};
use abase_scheduler::{LoadVector, Migration, NodeState, PoolState, ReplicaLoad, Rescheduler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Modeled per-disk copy bandwidth, in storage units per hour: a migrated
/// replica of storage `s` keeps its source and destination blocked for
/// `ceil(s / COPY_UNITS_PER_HOUR)` hourly steps.
const COPY_UNITS_PER_HOUR: f64 = 600.0;

/// A move in flight: completes (unblocking exactly its two nodes) at `done_hour`.
struct InflightMove {
    migration: Migration,
    done_hour: usize,
}

fn main() {
    banner(
        "Figure 10",
        "online rescheduling (every 10 min) over 100 hours",
        "max node QPS converges toward the pool average after rescheduling starts",
    );
    let n_nodes = 50u32;
    let mut rng = StdRng::seed_from_u64(10);
    let mut pool = PoolState::new(
        (0..n_nodes)
            .map(|i| NodeState::new(i, 1_000.0, 100_000.0))
            .collect(),
    );
    // 600 replicas piled onto one third of the nodes, with diurnal phases.
    for id in 0..600u64 {
        let node = (id % (u64::from(n_nodes) / 3)) as usize;
        let peak = rng.gen_range(10.0..30.0);
        let phase_shift = rng.gen_range(0.0..std::f64::consts::TAU);
        let mut ru = [0.0f64; 24];
        for (h, slot) in ru.iter_mut().enumerate() {
            let phase = h as f64 / 24.0 * std::f64::consts::TAU + phase_shift;
            *slot = peak * (1.0 + 0.3 * phase.sin()).max(0.05);
        }
        pool.nodes[node].add_replica(ReplicaLoad::from_total(
            id,
            (id % 40) as u32,
            id,
            LoadVector(ru),
            0.7,
            rng.gen_range(100.0..900.0),
        ));
    }
    let rescheduler = Rescheduler::default();
    let mut max_series = Vec::new();
    let mut avg_series = Vec::new();
    let mut inflight: Vec<InflightMove> = Vec::new();
    let mut total_moves = 0usize;
    let mut total_units_moved = 0.0f64;
    let mut longest_copy_hours = 0usize;
    let reschedule_start_hour = 24usize;
    println!("(50 nodes, 600 replicas; rescheduling starts at hour {reschedule_start_hour})\n");
    for hour in 0..100usize {
        if hour >= reschedule_start_hour {
            // Complete exactly the moves whose modeled copy has finished;
            // everything else keeps its nodes blocked into this round.
            let (done, still): (Vec<InflightMove>, Vec<InflightMove>) =
                inflight.into_iter().partition(|m| m.done_hour <= hour);
            inflight = still;
            for m in done {
                pool.complete_migration(m.migration.from_node, m.migration.to_node);
            }
            // One displayed step aggregates the six 10-minute production
            // rounds; at most one in-flight migration per node either way.
            for migration in rescheduler.reschedule_round(&mut pool) {
                // The moved replica now sits on the destination: look its
                // storage up there to model the copy the move just started.
                let storage = pool
                    .nodes
                    .iter()
                    .find(|n| n.id == migration.to_node)
                    .and_then(|n| {
                        n.replicas
                            .iter()
                            .find(|r| r.id == migration.replica_id)
                            .map(|r| r.storage)
                    })
                    .unwrap_or(0.0);
                let copy_hours = (storage / COPY_UNITS_PER_HOUR).ceil().max(1.0) as usize;
                longest_copy_hours = longest_copy_hours.max(copy_hours);
                total_units_moved += storage;
                total_moves += 1;
                inflight.push(InflightMove {
                    migration,
                    done_hour: hour + copy_hours,
                });
            }
        }
        max_series.push(pool.max_ru_util());
        avg_series.push(pool.mean_ru_util());
    }
    println!("max  [{}]", sparkline(&max_series));
    println!("avg  [{}]", sparkline(&avg_series));
    let gap_before = max_series[reschedule_start_hour - 1] - avg_series[reschedule_start_hour - 1];
    let gap_after = max_series[99] - avg_series[99];
    println!(
        "\nhour 23: max {} avg {} (gap {})",
        pct(max_series[23]),
        pct(avg_series[23]),
        pct(gap_before)
    );
    println!(
        "hour 99: max {} avg {} (gap {})",
        pct(max_series[99]),
        pct(avg_series[99]),
        pct(gap_after)
    );
    println!(
        "gap shrank by {} (paper: max converges to average)",
        pct(1.0 - gap_after / gap_before.max(1e-12))
    );
    println!(
        "{total_moves} migrations moved {total_units_moved:.0} storage units \
         ({COPY_UNITS_PER_HOUR:.0}/h per disk; longest copy {longest_copy_hours} h; \
         {} still in flight at hour 99)",
        inflight.len()
    );
    println!("\nhour | max util | avg util");
    for hour in (0..100).step_by(10) {
        println!(
            "{hour:>4} | {:>8} | {:>8}",
            pct(max_series[hour]),
            pct(avg_series[hour])
        );
    }
}
