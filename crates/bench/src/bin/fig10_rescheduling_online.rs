//! Figure 10 — Online rescheduling every 10 minutes.
//!
//! "Following the rescheduling algorithms, the maximum RU utilization among
//! DataNodes increasingly converged towards the average RU utilization."

use abase_bench::{banner, pct, sparkline};
use abase_scheduler::{LoadVector, NodeState, PoolState, ReplicaLoad, Rescheduler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    banner(
        "Figure 10",
        "online rescheduling (every 10 min) over 100 hours",
        "max node QPS converges toward the pool average after rescheduling starts",
    );
    let n_nodes = 50u32;
    let mut rng = StdRng::seed_from_u64(10);
    let mut pool = PoolState::new(
        (0..n_nodes)
            .map(|i| NodeState::new(i, 1_000.0, 100_000.0))
            .collect(),
    );
    // 600 replicas piled onto one third of the nodes, with diurnal phases.
    for id in 0..600u64 {
        let node = (id % (u64::from(n_nodes) / 3)) as usize;
        let peak = rng.gen_range(10.0..30.0);
        let phase_shift = rng.gen_range(0.0..std::f64::consts::TAU);
        let mut ru = [0.0f64; 24];
        for (h, slot) in ru.iter_mut().enumerate() {
            let phase = h as f64 / 24.0 * std::f64::consts::TAU + phase_shift;
            *slot = peak * (1.0 + 0.3 * phase.sin()).max(0.05);
        }
        pool.nodes[node].add_replica(ReplicaLoad::from_total(
            id,
            (id % 40) as u32,
            id,
            LoadVector(ru),
            0.7,
            rng.gen_range(100.0..900.0),
        ));
    }
    let rescheduler = Rescheduler::default();
    let mut max_series = Vec::new();
    let mut avg_series = Vec::new();
    let reschedule_start_hour = 24usize;
    println!("(50 nodes, 600 replicas; rescheduling starts at hour {reschedule_start_hour})\n");
    for hour in 0..100usize {
        if hour >= reschedule_start_hour {
            // One displayed step aggregates the six 10-minute production
            // rounds; migrations are slow, so at most one in-flight migration
            // per node is carried across the hour (finish_migrations clears
            // the flags at the hour boundary).
            pool.finish_migrations();
            rescheduler.reschedule_round(&mut pool);
        }
        max_series.push(pool.max_ru_util());
        avg_series.push(pool.mean_ru_util());
    }
    println!("max  [{}]", sparkline(&max_series));
    println!("avg  [{}]", sparkline(&avg_series));
    let gap_before = max_series[reschedule_start_hour - 1] - avg_series[reschedule_start_hour - 1];
    let gap_after = max_series[99] - avg_series[99];
    println!(
        "\nhour 23: max {} avg {} (gap {})",
        pct(max_series[23]),
        pct(avg_series[23]),
        pct(gap_before)
    );
    println!(
        "hour 99: max {} avg {} (gap {})",
        pct(max_series[99]),
        pct(avg_series[99]),
        pct(gap_after)
    );
    println!(
        "gap shrank by {} (paper: max converges to average)",
        pct(1.0 - gap_after / gap_before.max(1e-12))
    );
    println!("\nhour | max util | avg util");
    for hour in (0..100).step_by(10) {
        println!(
            "{hour:>4} | {:>8} | {:>8}",
            pct(max_series[hour]),
            pct(avg_series[hour])
        );
    }
}
