//! Migration ablation: routing-flip vs live-movement rescheduling.
//!
//! The same Algorithm-2 plan applied two ways against real 3-replica
//! WAL-shipping groups, emitting one JSON object:
//!
//! 1. **Routing flip** (the pre-engine behavior): `MetaServer::move_partition`
//!    repoints the partition instantly — zero seconds, zero bytes — and the
//!    destination holds nothing. Leader reads against the new routing fail,
//!    and the meta view diverges from the group's actual leadership: the
//!    "migration" was fiction.
//! 2. **Live movement** (the `MigrationEngine` path): staged checkpoint copy
//!    throttled by the §3.3 recovery-bandwidth model, binlog catch-up,
//!    epoch-guarded cut-over — while a tenant keeps writing and reading.
//!    Reports tenant read p99 before vs during the move, observed copy
//!    bandwidth vs the modeled throttle, the cut-over lag, and zero acked
//!    writes lost.
//!
//! The move itself comes out of Algorithm 2: the pool view is built from the
//! cluster's per-replica split RU ledgers, `Rescheduler::reschedule_round`
//! picks the replica and destination, and the plan is executed as real data
//! movement. The loss-function trajectory (per-node RU-utilization std/max)
//! is reported before and after.
//!
//! Set `ABASE_BENCH_SMOKE=1` to shrink the workload for a CI smoke run — the
//! JSON shape is identical.

use abase_bench::banner;
use abase_core::cluster::{ReplicatedCluster, ReplicatedClusterConfig};
use abase_lavastore::DbConfig;
use abase_replication::{ReadConsistency, WriteConcern};
use abase_scheduler::{Rescheduler, ReschedulerConfig};
use abase_util::{LatencyHistogram, TestDir};

const NODES: u32 = 5;
/// Pool-view capacity headroom over the observed peak node load (see
/// `ReplicatedCluster::scheduler_pool_view`).
const CAPACITY_HEADROOM: f64 = 1.25;
const PARTITIONS: u64 = 5;
const VALUE_BYTES: usize = 512;
/// Modeled per-disk copy bandwidth (bytes/sec) — both the §3.3 reconstruction
/// model and the migration copy throttle.
const DISK_BW: f64 = 2e6;

struct Sizes {
    hot_keys: usize,
    cold_keys: usize,
    reads_per_phase: usize,
}

fn sizes() -> Sizes {
    let smoke = std::env::var("ABASE_BENCH_SMOKE").is_ok_and(|v| v != "0");
    if smoke {
        Sizes {
            hot_keys: 80,
            cold_keys: 10,
            reads_per_phase: 120,
        }
    } else {
        Sizes {
            hot_keys: 600,
            cold_keys: 40,
            reads_per_phase: 1_500,
        }
    }
}

/// Build a cluster whose load shape gives Algorithm 2 a feasible move: with
/// 5 partitions × 3 replicas over 5 nodes, every node misses exactly two
/// partitions — making node 0's two absent partitions *hot* leaves node 0
/// cold, co-locates two hot replicas on at least one other node, and keeps
/// each hot replica small enough to fit under the destination's share of the
/// optimal point. Returns the cluster and the hot partitions.
fn build_cluster(tag: &str, sz: &Sizes) -> (TestDir, ReplicatedCluster, Vec<u64>) {
    let dir = TestDir::new(tag);
    let mut cluster = ReplicatedCluster::new(
        dir.path(),
        NODES,
        ReplicatedClusterConfig {
            replication_factor: 3,
            write_concern: WriteConcern::Quorum,
            db: DbConfig::small_for_tests(),
            recovery_bandwidth: Some(DISK_BW),
            ..Default::default()
        },
    );
    for p in 0..PARTITIONS {
        cluster.create_partition(1, p).expect("partition placement");
    }
    let hot: Vec<u64> = (0..PARTITIONS)
        .filter(|&p| !cluster.meta().replica_set(p).expect("placed").contains(0))
        .collect();
    for p in 0..PARTITIONS {
        let keys = if hot.contains(&p) {
            sz.hot_keys
        } else {
            sz.cold_keys
        };
        for i in 0..keys {
            cluster
                .write(
                    p,
                    format!("p{p}-k{i:06}").as_bytes(),
                    &vec![7u8; VALUE_BYTES],
                    0,
                )
                .expect("seed write");
        }
    }
    cluster.tick().expect("converge followers");
    (dir, cluster, hot)
}

/// One routed `Eventual` read phase; returns (p99 µs, errors).
fn read_phase(cluster: &mut ReplicatedCluster, sz: &Sizes, partition: u64) -> (f64, usize) {
    let mut hist = LatencyHistogram::for_latency_micros();
    let mut errors = 0usize;
    for i in 0..sz.reads_per_phase {
        let key = format!("p{partition}-k{:06}", i % sz.hot_keys);
        let t0 = std::time::Instant::now();
        match cluster.read_routed(partition, key.as_bytes(), ReadConsistency::Eventual, 0) {
            Ok(_) => hist.record(t0.elapsed().as_secs_f64() * 1e6),
            Err(_) => errors += 1,
        }
    }
    (hist.quantile(0.99).unwrap_or(0.0), errors)
}

fn main() {
    banner(
        "ablation_migration",
        "routing-flip vs live-movement rescheduling on real replica groups",
        "live moves copy real bytes at the §3.3 bandwidth with zero acked-write loss",
    );
    let sz = sizes();

    // -- Plan the move with Algorithm 2 -----------------------------------
    let (_dir, mut cluster, hot) = build_cluster("abl-migr-live", &sz);
    let pool = cluster.scheduler_pool_view(CAPACITY_HEADROOM);
    let std_before = pool.ru_util_std();
    let max_before = pool.max_ru_util();
    let plan = Rescheduler::new(ReschedulerConfig {
        theta: 0.02,
        min_gain: 1e-9,
    })
    .reschedule_round(&mut cluster.scheduler_pool_view(CAPACITY_HEADROOM));
    // Fall back to the canonical hot move if the tiny smoke load is too flat
    // for the dead-band (the JSON records which path produced the plan).
    let (partition, from, to, planned_by_algorithm2) = match plan.first() {
        Some(m) => {
            let req = ReplicatedCluster::migration_request_from_plan(m);
            (req.partition, req.from, req.to, true)
        }
        None => {
            let p = hot[0];
            let set = cluster.meta().replica_set(p).expect("placed").clone();
            let spare = (0..NODES).find(|n| !set.contains(*n)).expect("spare node");
            (p, set.followers[0], spare, false)
        }
    };

    // -- Arm 1: routing flip (the pre-engine fiction) ----------------------
    let (flip_failures, flip_diverged, flip_dest_holds_data) = {
        let (_d, mut flip, _hot) = build_cluster("abl-migr-flip", &sz);
        let t = to;
        flip.meta_mut().move_partition(partition, t);
        let mut failures = 0usize;
        for i in 0..sz.reads_per_phase.min(200) {
            let key = format!("p{partition}-k{:06}", i % sz.hot_keys);
            if flip
                .read(partition, key.as_bytes(), ReadConsistency::Leader, 0)
                .is_err()
            {
                failures += 1;
            }
        }
        let diverged = flip.meta().route(partition) != flip.group(partition).unwrap().leader();
        let holds = flip.group(partition).unwrap().members().contains(&t);
        (failures, diverged, holds)
    };

    // -- Arm 2: live movement ---------------------------------------------
    let (p99_baseline_us, baseline_errors) = read_phase(&mut cluster, &sz, partition);
    cluster
        .enqueue_migration(partition, from, to)
        .expect("valid plan");
    let mut p99_during = LatencyHistogram::for_latency_micros();
    let mut reads_during = 0usize;
    let mut errors_during = 0usize;
    let mut writes_during = Vec::new();
    let mut ticks = 0usize;
    let move_started = std::time::Instant::now();
    while !cluster.migrations().idle() {
        ticks += 1;
        assert!(ticks < 100, "migration did not converge");
        // The tenant keeps writing and reading while the bytes move.
        for w in 0..4 {
            let key = format!("during-{ticks}-{w}");
            let lsn = cluster
                .write(partition, key.as_bytes(), &[3u8; 64], 0)
                .expect("write during migration");
            writes_during.push((key, lsn));
        }
        for i in 0..16 {
            let key = format!("p{partition}-k{:06}", (ticks * 16 + i) % sz.hot_keys);
            let t0 = std::time::Instant::now();
            reads_during += 1;
            match cluster.read_routed(partition, key.as_bytes(), ReadConsistency::Eventual, 0) {
                Ok(_) => p99_during.record(t0.elapsed().as_secs_f64() * 1e6),
                Err(_) => errors_during += 1,
            }
        }
        cluster.tick().expect("cluster tick");
    }
    let move_secs = move_started.elapsed().as_secs_f64();
    assert_eq!(
        cluster.migrations().completed().len(),
        1,
        "move not completed"
    );
    let report = cluster.migrations().completed()[0].clone();
    // Zero acked-write loss across copy + catch-up + cut-over, and every
    // write is fenced-readable at its own LSN.
    let mut acked_lost = 0usize;
    for (key, lsn) in &writes_during {
        let ok = cluster
            .read_routed(
                partition,
                key.as_bytes(),
                ReadConsistency::ReadYourWrites(*lsn),
                0,
            )
            .map(|r| r.result.value.is_some())
            .unwrap_or(false);
        if !ok {
            acked_lost += 1;
        }
    }
    let dest_holds_data = cluster
        .group(partition)
        .unwrap()
        .db(to)
        .map(|db| {
            (0..sz.hot_keys.min(50)).all(|i| {
                db.get(format!("p{partition}-k{i:06}").as_bytes(), 0)
                    .map(|r| r.value.is_some())
                    .unwrap_or(false)
            })
        })
        .unwrap_or(false);
    let pool_after = cluster.scheduler_pool_view(CAPACITY_HEADROOM);
    let observed_bw = report.bytes_copied as f64 / report.copy_secs.max(1e-9);

    // -- JSON report -------------------------------------------------------
    println!("{{");
    println!("  \"nodes\": {NODES},");
    println!("  \"partitions\": {PARTITIONS},");
    println!("  \"hot_keys\": {},", sz.hot_keys);
    println!("  \"value_bytes\": {VALUE_BYTES},");
    println!(
        "  \"plan\": {{\"partition\": {partition}, \"from_node\": {from}, \"to_node\": {to}, \
         \"planned_by_algorithm2\": {planned_by_algorithm2}}},"
    );
    println!("  \"routing_flip\": {{");
    println!("    \"move_secs\": 0.0,");
    println!("    \"bytes_copied\": 0,");
    println!("    \"dest_holds_data\": {flip_dest_holds_data},");
    println!("    \"leader_read_failures\": {flip_failures},");
    println!("    \"routing_diverged_from_group\": {flip_diverged}");
    println!("  }},");
    println!("  \"live_migration\": {{");
    println!("    \"move_secs\": {move_secs:.3},");
    println!("    \"copy_secs\": {:.3},", report.copy_secs);
    println!("    \"bytes_copied\": {},", report.bytes_copied);
    println!("    \"observed_copy_bandwidth_bps\": {observed_bw:.0},");
    println!("    \"modeled_bandwidth_bps\": {DISK_BW},");
    println!("    \"bandwidth_ratio\": {:.3},", observed_bw / DISK_BW);
    println!("    \"catchup_ticks\": {},", report.catchup_ticks);
    println!("    \"cutover_entry_lag\": {},", report.cutover_entry_lag);
    println!("    \"was_leader\": {},", report.was_leader);
    println!("    \"dest_holds_data\": {dest_holds_data},");
    println!("    \"acked_writes_during_move\": {},", writes_during.len());
    println!("    \"acked_writes_lost\": {acked_lost},");
    println!(
        "    \"reads\": {{\"baseline_p99_us\": {p99_baseline_us:.1}, \
         \"during_move_p99_us\": {:.1}, \"during_move_reads\": {reads_during}, \
         \"baseline_errors\": {baseline_errors}, \"during_move_errors\": {errors_during}}}",
        p99_during.quantile(0.99).unwrap_or(0.0)
    );
    println!("  }},");
    println!("  \"loss_trajectory\": {{");
    println!("    \"ru_util_std_before\": {std_before:.5},");
    println!(
        "    \"ru_util_std_after\": {:.5},",
        pool_after.ru_util_std()
    );
    println!("    \"max_ru_util_before\": {max_before:.5},");
    println!("    \"max_ru_util_after\": {:.5}", pool_after.max_ru_util());
    println!("  }}");
    println!("}}");
}
