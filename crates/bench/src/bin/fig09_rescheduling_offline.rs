//! Figure 9 — Offline rescheduling on a 1000-DataNode pool.
//!
//! "The original storage and RU utilization of the DataNodes were highly
//! dispersed … Following the application of Algorithm 2, the load
//! distribution across DataNodes was more balanced, with a 74.5 % reduction
//! in the standard deviation of RU usage and an 84.8 % decrease in storage
//! usage variance."

use abase_bench::{banner, fmt, pct, print_table};
use abase_scheduler::{LoadVector, NodeState, PoolState, ReplicaLoad, Rescheduler};
use abase_workload::TenantPopulation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_pool(n_nodes: u32, seed: u64) -> PoolState {
    let mut rng = StdRng::seed_from_u64(seed);
    let population = TenantPopulation::generate(400, seed);
    let mut nodes: Vec<NodeState> = (0..n_nodes)
        .map(|i| NodeState::new(i, 1_000.0, 10_000.0))
        .collect();
    // Skewed initial placement: replicas land on a node cluster chosen by
    // tenant id (the organic outcome of tenants being onboarded in waves).
    let mut replica_id = 0u64;
    let mut partition_id = 0u64;
    for tenant in &population.tenants {
        // Partition counts scale with tenant size so no single replica
        // exceeds ~10 % of a node (the autoscaler's split bound UP ensures
        // this in production, §5.1).
        let by_ru = (400.0 * tenant.ru / 35.0).ceil() as u32;
        let by_storage = (4_000.0 * tenant.storage / 350.0).ceil() as u32;
        let replicas = by_ru.max(by_storage).clamp(2, 128);
        let home = (tenant.id * 13) % n_nodes;
        for r in 0..replicas {
            let ru_peak = 400.0 * tenant.ru / replicas as f64;
            let mut ru = [0.0f64; 24];
            for (h, slot) in ru.iter_mut().enumerate() {
                // Diurnal peaks mostly align across tenants (consumer traffic
                // peaks in the same evening hours), with mild per-tenant
                // jitter — the pool-level pattern Figure 10 shows.
                let jitter = (tenant.id % 7) as f64 / 7.0 * 0.15;
                let phase = (h as f64 / 24.0 + jitter) * std::f64::consts::TAU;
                *slot = ru_peak * (1.0 + 0.4 * phase.sin()).max(0.1);
            }
            // Cluster of ~20 nodes around the tenant's home node.
            let node = (home + rng.gen_range(0..20u32)) % n_nodes;
            nodes[node as usize].add_replica(ReplicaLoad::from_total(
                replica_id,
                tenant.id,
                partition_id + u64::from(r / 2),
                LoadVector(ru),
                0.7,
                4_000.0 * tenant.storage / replicas as f64,
            ));
            replica_id += 1;
        }
        partition_id += u64::from(replicas / 2);
    }
    PoolState::new(nodes)
}

fn main() {
    banner(
        "Figure 9",
        "offline rescheduling of a 1000-node resource pool",
        "RU-util std −74.5%; storage-util variance −84.8%",
    );
    let mut pool = build_pool(1000, 9);
    let replicas = pool.replica_count();
    let ru_std_before = pool.ru_util_std();
    let sto_std_before = pool.storage_util_std();
    let (r, s) = pool.optimal_load();
    println!(
        "pool: 1000 nodes, {replicas} replicas, optimal load R={} S={}\n",
        fmt(r, 3),
        fmt(s, 3)
    );
    let start = std::time::Instant::now();
    let moves = Rescheduler::default().rebalance_to_convergence(&mut pool, 400);
    let elapsed = start.elapsed();
    let ru_std_after = pool.ru_util_std();
    let sto_std_after = pool.storage_util_std();
    let rows = vec![
        vec![
            "RU util std".into(),
            fmt(ru_std_before, 4),
            fmt(ru_std_after, 4),
            pct(1.0 - ru_std_after / ru_std_before),
            "74.5%".into(),
        ],
        vec![
            "storage util std".into(),
            fmt(sto_std_before, 4),
            fmt(sto_std_after, 4),
            pct(1.0 - sto_std_after / sto_std_before),
            "-".into(),
        ],
        vec![
            "storage util variance".into(),
            fmt(sto_std_before * sto_std_before, 6),
            fmt(sto_std_after * sto_std_after, 6),
            pct(1.0 - (sto_std_after * sto_std_after) / (sto_std_before * sto_std_before)),
            "84.8%".into(),
        ],
    ];
    print_table(&["metric", "before", "after", "reduction", "paper"], &rows);
    println!(
        "\n{} migrations in {:.2?} (≤400 rounds of Algorithm 2; each round's \
         moves complete individually before the next round starts)",
        moves.len(),
        elapsed
    );
    // Rescheduling is real data movement, not a routing flip: price the plan
    // under the §3.3 per-disk copy model. Sources spread across the pool, so
    // the wall-clock cost is set by the busiest source disk, not the total.
    let moved_storage: f64 = moves
        .iter()
        .filter_map(|m| {
            pool.nodes
                .iter()
                .flat_map(|n| n.replicas.iter())
                .find(|r| r.id == m.replica_id)
                .map(|r| r.storage)
        })
        .sum();
    let mut per_source: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for m in &moves {
        if let Some(r) = pool
            .nodes
            .iter()
            .flat_map(|n| n.replicas.iter())
            .find(|r| r.id == m.replica_id)
        {
            *per_source.entry(m.from_node).or_default() += r.storage;
        }
    }
    let disk_units_per_hour = 2_000.0;
    let busiest = per_source.values().copied().fold(0.0f64, f64::max);
    println!(
        "data moved: {moved_storage:.0} storage units across {} source disks; at \
         {disk_units_per_hour:.0} units/h per disk the plan drains in ≈{:.1} h \
         (serialized through one disk it would take ≈{:.1} h)",
        per_source.len(),
        busiest / disk_units_per_hour,
        moved_storage / disk_units_per_hour
    );
    // Scatter summary: utilization ranges tighten.
    let ru_utils: Vec<f64> = pool.nodes.iter().map(NodeState::ru_util).collect();
    let max = ru_utils.iter().copied().fold(0.0, f64::max);
    let min = ru_utils.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "post-rescheduling RU utilization range: [{}, {}]",
        pct(min),
        pct(max)
    );
}
