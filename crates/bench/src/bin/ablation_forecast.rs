//! Ablation — forecast ensemble vs its individual members.
//!
//! "We employ a weighted ensemble of predictions derived from both the
//! Prophet and historical average methods. … our ensemble-based approach
//! maintains comparable precision and robustness" (§5.2). This study scores
//! prophet-lite alone, historical average alone, and the full ensemble
//! (denoise + change points + PSD + blend + burst guard) on the paper's four
//! workload archetypes.

use abase_bench::{banner, fmt, print_table};
use abase_forecast::histavg::HistoricalAverage;
use abase_forecast::prophet::{ProphetConfig, ProphetModel};
use abase_forecast::psd::dominant_period;
use abase_forecast::{smape, EnsembleForecaster};
use abase_util::TimeSeries;
use abase_workload::series::{SeriesSpec, HOUR};

struct Scenario {
    name: &'static str,
    spec: SeriesSpec,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "daily cycle + trend",
            spec: SeriesSpec {
                hours: 720 + 168,
                base: 300.0,
                trend_per_hour: 0.25,
                seasonal: vec![(24.0, 80.0)],
                noise: 0.03,
                seed: 1,
                ..Default::default()
            },
        },
        Scenario {
            name: "3.5-day TTL cycle",
            spec: SeriesSpec {
                hours: 720 + 168,
                base: 500.0,
                trend_per_hour: 0.0,
                seasonal: vec![(84.0, 120.0)],
                noise: 0.03,
                seed: 2,
                ..Default::default()
            },
        },
        Scenario {
            name: "trend change mid-series",
            spec: SeriesSpec {
                hours: 720 + 168,
                base: 400.0,
                trend_per_hour: 0.0,
                seasonal: vec![(24.0, 40.0)],
                steps: vec![(500, 350.0)],
                noise: 0.03,
                seed: 3,
                ..Default::default()
            },
        },
        Scenario {
            name: "noisy with one-off spike",
            spec: SeriesSpec {
                hours: 720 + 168,
                base: 600.0,
                trend_per_hour: 0.05,
                seasonal: vec![(24.0, 60.0), (168.0, 40.0)],
                spikes: vec![(400, 3_000.0)],
                noise: 0.06,
                seed: 4,
                ..Default::default()
            },
        },
    ]
}

fn main() {
    banner(
        "Ablation: forecasting",
        "ensemble vs prophet-only vs historical-average-only (7-day horizon sMAPE)",
        "the ensemble is competitive everywhere; single models fail on some archetypes",
    );
    let horizon = 168usize;
    let mut rows = Vec::new();
    let ensemble = EnsembleForecaster::default();
    for scenario in scenarios() {
        let full = scenario.spec.build();
        let (train, test) = full.split_at(full.len() - horizon);
        let train_values = train.values().to_vec();
        let period = dominant_period(&train_values, 20.0);
        let prophet_fc = ProphetModel::fit(&train_values, period, ProphetConfig::default())
            .map(|m| m.forecast(horizon))
            .unwrap_or_else(|| vec![0.0; horizon]);
        let hist_fc = HistoricalAverage::fit(&train_values, period, 0.7).forecast(horizon);
        let train_ts = TimeSeries::new(0, HOUR, train_values);
        let ens = ensemble.forecast(&train_ts, None, horizon);
        rows.push(vec![
            scenario.name.to_string(),
            fmt(smape(test.values(), &prophet_fc), 3),
            fmt(smape(test.values(), &hist_fc), 3),
            fmt(smape(test.values(), &ens.values), 3),
            format!("{:?}", ens.model),
        ]);
    }
    print_table(
        &[
            "scenario",
            "prophet-lite",
            "historical avg",
            "ensemble",
            "ensemble path",
        ],
        &rows,
    );
    println!("\nsMAPE: lower is better. The ensemble should track the best member per row");
    println!("(and beat both when denoising or the burst guard engages).");
}
