//! Ablation — limited fan-out: sweeping the group count `n`.
//!
//! "By carefully adjusting n, tenants can optimize the balance between hit
//! ratio and hot key pressure. Because each proxy receives 1/n of the total
//! requests, a larger n results in a higher cache hit ratio for each proxy.
//! During hot key events, selecting a smaller n value facilitates load
//! distribution across a larger number of proxies (= N/n)." (§4.4)

use abase_bench::{banner, pct, print_table};
use abase_cache::aulru::AuLruConfig;
use abase_core::proxy::{ProxyDecision, ProxyPlane, ProxyPlaneConfig};
use abase_util::clock::secs;
use abase_workload::{KeyspaceConfig, RequestGen};

const N_PROXIES: u32 = 16;

/// Run a Zipf workload with one scorching hot key; returns
/// (hit ratio, share of requests landing on the single busiest proxy).
fn run(n_groups: u32) -> (f64, f64) {
    let mut plane = ProxyPlane::new(
        1,
        ProxyPlaneConfig {
            n_proxies: N_PROXIES,
            n_groups,
            tenant_quota_ru: f64::INFINITY,
            cache: AuLruConfig {
                capacity_bytes: 1 << 20,
                ttl: secs(3600),
                ..Default::default()
            },
            cache_enabled: true,
            quota_enabled: false,
        },
        0,
        7,
    );
    let mut gen = RequestGen::new(
        KeyspaceConfig {
            n_keys: 100_000,
            zipf_s: 1.4, // hot-key event: traffic concentrates hard
            read_ratio: 1.0,
            ..Default::default()
        },
        7,
    );
    let total = 300_000usize;
    let mut hits = 0u64;
    for i in 0..total {
        let spec = gen.next_request();
        let now = i as u64 * 1_000;
        match plane.submit(spec.key_rank as u64, false, now) {
            ProxyDecision::CacheHit { .. } => hits += 1,
            ProxyDecision::Forward { proxy } => {
                plane.on_read_complete(proxy, spec.key_rank as u64, spec.value_bytes, false, now);
            }
            ProxyDecision::Rejected { .. } => unreachable!(),
        }
    }
    let loads = plane.per_proxy_lookups();
    let max_load = *loads.iter().max().unwrap_or(&0) as f64;
    (hits as f64 / total as f64, max_load / total as f64)
}

fn main() {
    banner(
        "Ablation: limited fan-out",
        "group count n vs per-proxy hit ratio and hot-key pressure (N = 16)",
        "larger n ⇒ higher hit ratio; smaller n ⇒ hot key spread over N/n proxies",
    );
    let mut rows = Vec::new();
    for n_groups in [1u32, 2, 4, 8, 16] {
        let (hit, max_share) = run(n_groups);
        rows.push(vec![
            format!("{n_groups}"),
            format!("{}", N_PROXIES / n_groups),
            pct(hit),
            pct(max_share),
        ]);
    }
    print_table(
        &[
            "groups n",
            "proxies per hot key (N/n)",
            "hit ratio",
            "busiest proxy's traffic share",
        ],
        &rows,
    );
    println!("\nThe table is the paper's trade-off: read down for hit ratio, up for");
    println!("hot-key headroom; Table 2 tenants pick n per their bottleneck.");
}
