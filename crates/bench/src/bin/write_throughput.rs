//! Multi-writer durable-write throughput: striped engine vs single-lock
//! baseline.
//!
//! N writer threads issue durable puts (`sync_wal: true`) against
//! `lavastore::Db`. Two arms:
//!
//! - **striped** — the current engine: keys hash across stripes, concurrent
//!   writers append frames into the shared group-commit buffer, and one
//!   fsync covers every writer waiting in the batch. While the sync leader
//!   blocks in `sync_data`, the other writer threads keep appending, so
//!   durable throughput scales with writers even on a single core.
//! - **single-lock** — the seed engine's discipline: one stripe and a global
//!   write lock held across the entire put (WAL append + fsync + memtable
//!   apply), the way the old `RwLock<Inner>` serialized every write. Only
//!   one writer can ever be inside the engine, so every put pays a private
//!   fsync and throughput stays flat no matter how many writers pile up.
//!
//! Writes `BENCH_write.json` at the repo root. `ABASE_BENCH_SMOKE=1` shrinks
//! the op counts for CI smoke runs (the numbers are then noisy and only the
//! JSON shape is asserted).

use abase_bench::banner;
use abase_lavastore::{Db, DbConfig};
use abase_util::TestDir;
use std::sync::Arc;
use std::time::Instant;

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];
const VALUE_BYTES: usize = 256;

fn main() {
    let smoke = std::env::var("ABASE_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (ops, trials) = if smoke { (800, 1) } else { (24_000, 3) };
    banner(
        "WRITE",
        "Durable write throughput: striped group commit vs single lock",
        "one fsync covers the whole writer batch; striping wins at >= 4 writers",
    );

    let mut rows = Vec::new();
    for &threads in &THREAD_COUNTS {
        // Arms alternate per trial and the best trial wins per arm: peak
        // throughput is the least noise-contaminated estimate on a shared
        // machine.
        let mut striped = 0f64;
        let mut single = 0f64;
        for _ in 0..trials {
            striped = striped.max(run(threads, ops, 8, false, "striped"));
            single = single.max(run(threads, ops, 1, true, "single"));
        }
        println!(
            "{threads} writer(s): striped {striped:>9.0} ops/s  single-lock {single:>9.0} ops/s  speedup {:.2}x",
            striped / single
        );
        rows.push((threads, striped, single));
    }

    let results = rows
        .iter()
        .map(|(threads, striped, single)| {
            format!(
                "    {{\"threads\": {threads}, \"striped_ops_per_sec\": {striped:.1}, \
                 \"single_lock_ops_per_sec\": {single:.1}, \"speedup\": {:.3}}}",
                striped / single
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"write_throughput\",\n  \"smoke\": {smoke},\n  \
         \"ops_per_config\": {ops},\n  \"value_bytes\": {VALUE_BYTES},\n  \
         \"sync_wal\": true,\n  \"results\": [\n{results}\n  ]\n}}\n"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_write.json");
    std::fs::write(out, &json).expect("write BENCH_write.json");
    println!("wrote {out}");
}

/// `threads` writers split `ops` durable puts over disjoint key ranges;
/// returns ops/s. With `global_lock` every put runs under one process-wide
/// write lock, reproducing the seed engine's `RwLock<Inner>` serialization.
fn run(threads: usize, ops: usize, n_stripes: u32, global_lock: bool, tag: &str) -> f64 {
    let dir = TestDir::new(&format!("write-bench-{tag}-{threads}"));
    let config = DbConfig {
        n_stripes,
        sync_wal: true,
        ..DbConfig::default()
    };
    let db = Arc::new(Db::open(dir.path(), config).unwrap());
    let engine_lock = parking_lot::Mutex::new(());
    let value = vec![b'v'; VALUE_BYTES];
    let per = ops / threads;
    // Warmup outside the timed window (directory creation, first WAL frame).
    db.put(b"warmup", &value, None, 0).unwrap();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let db = Arc::clone(&db);
            let value = &value;
            let engine_lock = &engine_lock;
            scope.spawn(move || {
                for i in 0..per {
                    let key = format!("w{t:02}-{i:08}");
                    let guard = global_lock.then(|| engine_lock.lock());
                    db.put(key.as_bytes(), value, None, 0).unwrap();
                    drop(guard);
                }
            });
        }
    });
    (per * threads) as f64 / started.elapsed().as_secs_f64()
}
