//! Ablation — SA-LRU vs plain LRU under size-diverse workloads.
//!
//! DESIGN.md design choice: the DataNode cache segregates size classes and
//! evicts by hit density. This study replays a mixed workload (many small hot
//! items + a stream of large cold blobs, the Table-1 spread) through both
//! policies at identical byte capacity.

use abase_bench::{banner, pct, print_table};
use abase_cache::{LruCache, SaLruCache};
use abase_workload::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate the access stream: 95 % small-item reads (Zipf over 20k keys,
/// 128 B), 5 % large cold blobs (256 KB, rarely re-read).
fn stream(n: usize, seed: u64) -> Vec<(u64, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(20_000, 1.0);
    (0..n)
        .map(|i| {
            if rng.gen::<f64>() < 0.05 {
                // Large blobs: mostly unique (cold scans / bulk values).
                (1_000_000 + i as u64, 256 << 10)
            } else {
                (zipf.sample(&mut rng) as u64, 128)
            }
        })
        .collect()
}

fn main() {
    banner(
        "Ablation: SA-LRU",
        "size-aware vs plain LRU at equal byte capacity",
        "SA-LRU evicts large low-hit items first, protecting the small hot set",
    );
    let capacity = 4 << 20; // 4 MB: holds the whole small set OR ~16 blobs
    let accesses = stream(400_000, 5);

    let mut plain: LruCache<u64, ()> = LruCache::new(capacity);
    let mut sa: SaLruCache<u64, ()> = SaLruCache::new(capacity);
    let (mut plain_hits, mut sa_hits) = (0u64, 0u64);
    let (mut plain_small_hits, mut sa_small_hits) = (0u64, 0u64);
    let mut small_reads = 0u64;
    for &(key, size) in &accesses {
        let small = size <= 1024;
        if small {
            small_reads += 1;
        }
        if plain.get(&key).is_some() {
            plain_hits += 1;
            if small {
                plain_small_hits += 1;
            }
        } else {
            plain.insert(key, (), size);
        }
        if sa.get(&key).is_some() {
            sa_hits += 1;
            if small {
                sa_small_hits += 1;
            }
        } else {
            sa.insert(key, (), size);
        }
    }
    let n = accesses.len() as f64;
    let rows = vec![
        vec![
            "overall hit ratio".into(),
            pct(plain_hits as f64 / n),
            pct(sa_hits as f64 / n),
        ],
        vec![
            "small-item hit ratio".into(),
            pct(plain_small_hits as f64 / small_reads as f64),
            pct(sa_small_hits as f64 / small_reads as f64),
        ],
    ];
    print_table(&["metric", "plain LRU", "SA-LRU"], &rows);
    let lift = sa_hits as f64 / plain_hits.max(1) as f64;
    println!(
        "\nSA-LRU lifts the overall hit ratio by {}x on this mix.",
        abase_bench::fmt(lift, 2)
    );
}
