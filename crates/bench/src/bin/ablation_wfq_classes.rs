//! Ablation — four-class WFQ vs a single shared queue.
//!
//! "All requests are categorized into four independent dual-layer WFQs based
//! on their type (read/write) and their size (large/small). This
//! categorization … ensures closely matched request latencies within each
//! queue type" (§4.3, citing 2DFQ's heavyweight/lightweight interference).
//! This study floods a node with large reads and measures how long small
//! reads wait in each design.

use abase_bench::{banner, fmt, print_table};
use abase_wfq::{CpuTickBudget, DualWfq, DualWfqConfig, WfqItem};

/// Schedule `ticks` ticks of a mixed flood and return the mean scheduling
/// delay (in ticks) of small-read completions.
///
/// `segregated == true` gives small reads their own queue + budget share
/// (the 4-class design); `false` mixes everything into one queue with the
/// full budget (the single-queue baseline).
fn run(segregated: bool, ticks: usize) -> f64 {
    // Two queues exist in both designs; in the single-queue baseline the
    // small queue is unused and the mixed queue gets the whole budget.
    let mut small_q: DualWfq<usize> = DualWfq::new(DualWfqConfig::default());
    let mut mixed_q: DualWfq<usize> = DualWfq::new(DualWfqConfig::default());
    let total_budget = 100.0;
    let small_share = 0.4;
    let mut delays = Vec::new();
    for tick in 0..ticks {
        // Per tick, ONE tenant issues 8 large reads (cost 12) followed by 10
        // small reads (cost 0.5): the heavyweight flood oversubscribes the
        // budget, and within a tenant the WFQ is FIFO — exactly 2DFQ's
        // lightweight-behind-heavyweight interference.
        for _ in 0..8 {
            mixed_q.push_cpu(WfqItem {
                tenant: 1,
                cost: 12.0,
                weight: 0.5,
                payload: usize::MAX, // marks a large read
            });
        }
        for i in 0..10 {
            let item = WfqItem {
                tenant: 1,
                cost: 0.5,
                weight: 0.5,
                payload: tick * 100 + i,
            };
            if segregated {
                small_q.push_cpu(item);
            } else {
                mixed_q.push_cpu(item);
            }
        }
        if segregated {
            let (small_done, used) = small_q.drain_cpu(
                CpuTickBudget {
                    ru: total_budget * small_share,
                },
                false,
            );
            let _ = mixed_q.drain_cpu(
                CpuTickBudget {
                    ru: total_budget - used.min(total_budget * small_share),
                },
                false,
            );
            for item in small_done {
                delays.push((tick - item.payload / 100) as f64);
            }
        } else {
            let (done, _) = mixed_q.drain_cpu(CpuTickBudget { ru: total_budget }, false);
            for item in done {
                if item.payload != usize::MAX {
                    delays.push((tick - item.payload / 100) as f64);
                }
            }
        }
    }
    if delays.is_empty() {
        f64::INFINITY
    } else {
        delays.iter().sum::<f64>() / delays.len() as f64
    }
}

fn main() {
    banner(
        "Ablation: WFQ class split",
        "small-read scheduling delay under a large-read flood",
        "independent class queues keep lightweight requests from waiting behind heavyweight ones",
    );
    let ticks = 2_000;
    let single = run(false, ticks);
    let four_class = run(true, ticks);
    let rows = vec![vec![
        "mean small-read delay (ticks)".into(),
        fmt(single, 2),
        fmt(four_class, 2),
    ]];
    print_table(&["metric", "single queue", "4-class queues"], &rows);
    if four_class < 0.01 {
        println!(
            "\nclass segregation eliminates small-read queueing delay entirely \
             ({} ticks -> ~0) under heavyweight pressure",
            fmt(single, 1)
        );
    } else {
        println!(
            "\nclass segregation cuts small-read queueing delay by {}x under heavyweight pressure",
            fmt(single / four_class, 1)
        );
    }
}
