//! Figure 8a — A predictive scaling case.
//!
//! "Disk usage shows a 24-hour periodicity with an increasing trend. On day
//! 10, ABase predicted the usage would reach 85 % of the quota within a week,
//! prompting a proactive quota increase to keep predicted usage below 65 %.
//! This adjustment matched actual usage, effectively preventing user
//! throttling."

use abase_bench::{banner, fmt, print_table};
use abase_scheduler::{AutoscaleConfig, Autoscaler, ScalingDecision};
use abase_util::clock::days;
use abase_workload::series::fig8a_disk_usage;

fn main() {
    banner(
        "Figure 8a",
        "predictive disk-quota scaling on a growing 24h-periodic series",
        "day-10 forecast breaches 85% of quota ⇒ quota raised to peak/0.65; no throttling",
    );
    // The full 21-day ground truth; the autoscaler sees a growing prefix.
    let truth = fig8a_disk_usage(21, 8);
    let mut autoscaler = Autoscaler::new(AutoscaleConfig {
        partition_quota_upper: f64::INFINITY, // storage quotas do not split here
        ..Default::default()
    });
    let mut quota = 950.0; // initial tenant storage quota
    let mut rows = Vec::new();
    let mut scaled_on_day = None;
    let mut throttled_days = 0u32;
    for day in 3..21 {
        let (observed, _) = truth.split_at(day * 24);
        let day_max = observed.values()[(day - 1) * 24..]
            .iter()
            .copied()
            .fold(0.0, f64::max);
        if day_max > quota {
            throttled_days += 1;
        }
        let (decision, output) =
            autoscaler.forecast_and_decide(1, days(day as u64), &observed, None, quota, 8);
        let mut action = "-".to_string();
        if let ScalingDecision::ScaleUp {
            new_tenant_quota, ..
        } = decision
        {
            action = format!("scale up -> {}", fmt(new_tenant_quota, 0));
            if scaled_on_day.is_none() {
                scaled_on_day = Some(day);
            }
            quota = new_tenant_quota;
        }
        rows.push(vec![
            format!("{day}"),
            fmt(day_max, 0),
            fmt(quota, 0),
            fmt(output.peak, 0),
            fmt(output.peak / quota, 2),
            action,
        ]);
    }
    print_table(
        &[
            "day",
            "actual max",
            "quota",
            "7d forecast peak",
            "forecast/quota",
            "action",
        ],
        &rows,
    );
    println!();
    match scaled_on_day {
        Some(day) => println!(
            "Proactive upscale fired on day {day} (paper: day 10); throttled days: {throttled_days} (paper: 0)"
        ),
        None => println!("No upscale fired — forecast never breached 85% (unexpected)"),
    }
    // Post-scaling check: actual usage stayed under the final quota.
    let final_max = truth.values().iter().copied().fold(0.0, f64::max);
    println!(
        "Final actual peak {} vs final quota {} — headroom {}",
        fmt(final_max, 0),
        fmt(quota, 0),
        fmt(quota - final_max, 0)
    );
}
