//! Figure 5 — Tenant latency is stable amid workload fluctuations during the
//! Double-11 Shopping Festival.
//!
//! Six panels (QPS / cache hit / latency per tenant), each reproducing one
//! dynamism pattern:
//!   (a) QPS increases, cache hit stays ~100 %
//!   (b) QPS increases, cache hit decreases (key dispersion)
//!   (c) QPS and cache hit both increase (hot keys)
//!   (d) QPS stable, cache hit decreases (cold scans)
//!   (e) short QPS peak with hit collapse (ad-hoc cold reads)
//!   (f) pool level: aggregate stays stable
//!
//! The pool-level claim — "the latency for all tenants remained stable, still
//! fully meeting the SLA" — is checked at the end.

use abase_bench::{banner, fmt, pct, sparkline};
use abase_core::cluster::{IsolationExperiment, MinutePoint, TenantSpec};
use abase_core::node::{DataNodeConfig, DataNodeSim};
use abase_core::proxy::ProxyPlaneConfig;
use abase_workload::{KeyspaceConfig, TrafficShape};

const DAY_SECS: u64 = 10; // one reported "day" = 10 virtual seconds
const WARMUP_DAYS: u64 = 6;
const FESTIVAL_DAYS: u64 = 6;
const COOLDOWN_DAYS: u64 = 3;

fn spec(id: u32, qps: f64, n_keys: usize, zipf: f64) -> TenantSpec {
    TenantSpec {
        id,
        tenant_quota_ru: 12_000.0,
        partition: u64::from(id) * 10,
        partition_quota_ru: 6_000.0,
        shape: TrafficShape::Steady(qps),
        keyspace: KeyspaceConfig {
            n_keys,
            zipf_s: zipf,
            read_ratio: 0.95,
            ..Default::default()
        },
        proxy: ProxyPlaneConfig {
            n_proxies: 4,
            n_groups: 2,
            cache: abase_cache::aulru::AuLruConfig {
                capacity_bytes: 4 << 20,
                ..Default::default()
            },
            ..Default::default()
        },
    }
}

fn main() {
    banner(
        "Figure 5",
        "Double-11 dynamism: six tenant panels over a 15-day window",
        "QPS surges, hit-ratio swings, hot keys — all with stable latency",
    );
    let node = DataNodeSim::new(
        1,
        DataNodeConfig {
            cpu_ru_per_sec: 60_000.0,
            cache_bytes: 64 << 20,
            ..Default::default()
        },
    );
    let specs = vec![
        spec(1, 1_000.0, 2_000, 1.2),   // (a) small hot set: hit immune to QPS
        spec(2, 1_000.0, 300_000, 1.0), // (b) will disperse during festival
        spec(3, 1_000.0, 300_000, 0.9), // (c) will concentrate on hot keys
        spec(4, 1_000.0, 300_000, 1.1), // (d) stable QPS, daily cold scans
        spec(5, 1_000.0, 500_000, 1.0), // (e) short burst of near-uniform reads
    ];
    let mut exp = IsolationExperiment::new(node, specs, 2024);
    exp.set_minute_secs(DAY_SECS);

    let mut all: Vec<MinutePoint> = Vec::new();
    // Warm-up: steady traffic, caches converge.
    all.extend(exp.run_minutes(WARMUP_DAYS));
    // Festival begins.
    exp.set_shape(1, TrafficShape::Steady(3_000.0));
    exp.set_shape(2, TrafficShape::Steady(3_000.0));
    exp.gen_mut(2).set_skew(0.3); // (b) dispersed keys
    exp.set_shape(3, TrafficShape::Steady(3_000.0));
    exp.gen_mut(3).set_skew(1.7); // (c) hot-key concentration
    for day in 0..FESTIVAL_DAYS {
        // (d): a cold scan shifts its window every festival day.
        exp.gen_mut(4).shift_window(100_000);
        // (b): dispersion also wanders so the cache never converges.
        exp.gen_mut(2).shift_window(60_000);
        // (e): three-day burst of nearly uniform reads mid-festival.
        if day == 2 {
            exp.set_shape(5, TrafficShape::Steady(4_000.0));
            exp.gen_mut(5).set_skew(0.02);
        }
        if day == 5 {
            exp.set_shape(5, TrafficShape::Steady(1_000.0));
            exp.gen_mut(5).set_skew(1.0);
        }
        all.extend(exp.run_minutes(1));
    }
    // Festival ends.
    for t in 1..=3 {
        exp.set_shape(t, TrafficShape::Steady(1_000.0));
    }
    exp.gen_mut(2).set_skew(1.0);
    exp.gen_mut(3).set_skew(0.9);
    all.extend(exp.run_minutes(COOLDOWN_DAYS));

    let total_days = WARMUP_DAYS + FESTIVAL_DAYS + COOLDOWN_DAYS;
    let festival_mid = WARMUP_DAYS + 3;
    let panels = [
        (1u32, "(a) QPS up, hit stable"),
        (2, "(b) QPS up, hit drops"),
        (3, "(c) QPS up, hit rises (hot keys)"),
        (4, "(d) QPS stable, hit drops"),
        (5, "(e) short burst, hit collapses"),
    ];
    let series = |tenant: u32, f: &dyn Fn(&MinutePoint) -> f64| -> Vec<f64> {
        all.iter().filter(|p| p.tenant == tenant).map(f).collect()
    };
    for (tenant, title) in panels {
        let qps = series(tenant, &|p| p.success_qps);
        let hit = series(tenant, &|p| p.cache_hit_ratio);
        let lat = series(tenant, &|p| p.p99_latency_ms);
        println!("\n{title}");
        println!(
            "  qps  [{}] baseline {} peak {}",
            sparkline(&qps),
            fmt(qps[WARMUP_DAYS as usize - 1], 0),
            fmt(qps.iter().copied().fold(0.0, f64::max), 0)
        );
        println!(
            "  hit  [{}] pre {} | festival {} | post {}",
            sparkline(&hit),
            pct(hit[WARMUP_DAYS as usize - 1]),
            pct(hit[festival_mid as usize]),
            pct(hit[total_days as usize - 1])
        );
        println!(
            "  lat  [{}] max p99 {} ms",
            sparkline(&lat),
            fmt(lat.iter().copied().fold(0.0, f64::max), 2)
        );
    }

    // (f) pool level.
    let mut pool_qps = Vec::new();
    let mut pool_hit = Vec::new();
    let mut worst_lat: f64 = 0.0;
    for day in 0..total_days {
        let pts: Vec<_> = all.iter().filter(|p| p.minute == day).collect();
        let qps: f64 = pts.iter().map(|p| p.success_qps).sum();
        let hits: f64 = pts.iter().map(|p| p.cache_hit_ratio * p.success_qps).sum();
        pool_qps.push(qps);
        pool_hit.push(if qps > 0.0 { hits / qps } else { 0.0 });
        worst_lat = worst_lat.max(pts.iter().map(|p| p.p99_latency_ms).fold(0.0, f64::max));
    }
    println!("\n(f) resource-pool level");
    println!(
        "  qps  [{}] hit  [{}] (pool hit swing: {} .. {})",
        sparkline(&pool_qps),
        sparkline(&pool_hit),
        pct(pool_hit.iter().copied().fold(f64::INFINITY, f64::min)),
        pct(pool_hit.iter().copied().fold(0.0, f64::max))
    );
    println!(
        "\nSLA check (paper: latency stable, fully meeting SLA): worst tenant p99 {} ms {}",
        fmt(worst_lat, 2),
        if worst_lat < 50.0 {
            "< 50 ms SLA ✓"
        } else {
            "exceeds 50 ms ✗"
        }
    );
}
