//! Connection-scaling: the epoll front end vs thread-per-connection.
//!
//! Holds a mostly-idle fleet of clients (1k, then 10k) against an in-process
//! `RespServer` while a hot subset round-trips SET/GETs, and records:
//!
//! - hot-path ops/s and p50/p99 latency with the idle fleet attached,
//! - RSS and OS-thread deltas for carrying the fleet (the event loop adds
//!   ~zero threads; the thread-per-conn baseline adds one per client),
//! - pipelined vs serial throughput on a single connection (the batch
//!   executor + one vectored write per batch must clear 2x).
//!
//! The thread-per-conn arm only runs at the 1k tier — 10k threads is the
//! failure mode this PR deletes, not a configuration worth timing.
//!
//! Writes `BENCH_conn.json` at the repo root. `ABASE_BENCH_SMOKE=1` shrinks
//! fleet sizes and op counts for CI smoke runs (numbers are then noisy and
//! only the JSON shape is asserted).

use abase_bench::banner;
use abase_core::{RespServer, TableEngine};
use abase_lavastore::DbConfig;
use abase_util::poller::raise_nofile_limit;
use abase_util::TestDir;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

const PIPELINE_BATCH: usize = 64;

struct ArmResult {
    arm: &'static str,
    idle_conns: usize,
    hot_clients: usize,
    ops_per_sec: f64,
    p50_micros: u64,
    p99_micros: u64,
    rss_delta_kb: i64,
    thread_delta: i64,
}

fn main() {
    let smoke = std::env::var("ABASE_BENCH_SMOKE").is_ok_and(|v| v == "1");
    banner(
        "CONN",
        "Connection scaling: epoll event-loop workers vs thread-per-connection",
        "10k mostly-idle clients ride on a fixed worker pool; pipelining >= 2x serial",
    );

    // Each client costs two fds in this single process (client + server end).
    // Lift RLIMIT_NOFILE toward the hard cap and size the fleet to fit.
    // Reserve headroom for the engine's WAL/SST files, epoll/eventfd pairs,
    // and the hot clients before splitting the rest two-fds-per-connection.
    let nofile = raise_nofile_limit(65_536).unwrap_or(1_024);
    let fd_budget = (nofile.saturating_sub(2_048) / 2) as usize;
    let mut idle_tiers: Vec<usize> = if smoke {
        vec![50, 200]
    } else {
        vec![1_000, 10_000]
    };
    for tier in &mut idle_tiers {
        if *tier > fd_budget {
            eprintln!("nofile limit {nofile}: shrinking idle tier {tier} -> {fd_budget}");
            *tier = fd_budget;
        }
    }
    let (hot_clients, hot_ops) = if smoke { (4, 100) } else { (16, 1_500) };
    let pipeline_ops = if smoke { 2_048 } else { 64_000 };

    let mut results = Vec::new();
    for (i, &idle) in idle_tiers.iter().enumerate() {
        results.push(run_arm("event_loop", idle, hot_clients, hot_ops));
        // Baseline only at the smallest tier.
        if i == 0 {
            results.push(run_arm("thread_per_conn", idle, hot_clients, hot_ops));
        }
    }
    for r in &results {
        println!(
            "{:>16} idle={:>6}: {:>9.0} ops/s  p50 {:>5}us  p99 {:>6}us  rss +{:>7} kB  threads {:+}",
            r.arm, r.idle_conns, r.ops_per_sec, r.p50_micros, r.p99_micros, r.rss_delta_kb, r.thread_delta
        );
    }

    let (pipelined, serial) = run_pipeline_comparison(pipeline_ops);
    let speedup = pipelined / serial;
    println!(
        "pipelined {pipelined:>9.0} ops/s  serial {serial:>9.0} ops/s  speedup {speedup:.2}x (batch {PIPELINE_BATCH})"
    );

    let rows = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"arm\": \"{}\", \"idle_conns\": {}, \"hot_clients\": {}, \
                 \"ops_per_sec\": {:.1}, \"p50_micros\": {}, \"p99_micros\": {}, \
                 \"rss_delta_kb\": {}, \"thread_delta\": {}}}",
                r.arm,
                r.idle_conns,
                r.hot_clients,
                r.ops_per_sec,
                r.p50_micros,
                r.p99_micros,
                r.rss_delta_kb,
                r.thread_delta
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"conn_scaling\",\n  \"smoke\": {smoke},\n  \
         \"nofile_limit\": {nofile},\n  \"hot_ops_per_client\": {hot_ops},\n  \
         \"pipeline\": {{\"batch\": {PIPELINE_BATCH}, \"ops\": {pipeline_ops}, \
         \"pipelined_ops_per_sec\": {pipelined:.1}, \"serial_ops_per_sec\": {serial:.1}, \
         \"speedup\": {speedup:.3}}},\n  \"results\": [\n{rows}\n  ]\n}}\n"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_conn.json");
    std::fs::write(out, &json).expect("write BENCH_conn.json");
    println!("wrote {out}");
}

/// One serving arm: start a server, attach `idle` silent clients, then time
/// `hot_clients` serial SET/GET round-trip loops against it.
fn run_arm(arm: &'static str, idle: usize, hot_clients: usize, hot_ops: usize) -> ArmResult {
    let dir = TestDir::new(&format!("conn-bench-{arm}-{idle}"));
    // Default (not small_for_tests) config: big memtables keep the SST count
    // — and so the engine's fd usage — near zero at 10k connections.
    let engine = Arc::new(TableEngine::open(dir.path(), DbConfig::default()).unwrap());
    let mut server = RespServer::bind(engine, "127.0.0.1:0")
        .unwrap()
        .max_clients(idle + hot_clients + 64);
    if arm == "thread_per_conn" {
        server = server.thread_per_conn();
    }
    let addr = server.local_addr().unwrap();
    let handle = server.shutdown_handle();
    let runner = std::thread::spawn(move || server.run());

    let (rss_before, threads_before) = proc_status();
    let fleet = connect_fleet(addr, idle);
    // Every idle client PINGs once so each one is registered with a worker
    // (or owns its thread, in the baseline) before measurement starts.
    let (rss_after, threads_after) = proc_status();

    // Hot subset: dedicated connections doing serial SET/GET round-trips,
    // per-op latency recorded client-side.
    let started = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..hot_clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut conn = client(addr);
                    let mut lat = Vec::with_capacity(hot_ops);
                    for i in 0..hot_ops {
                        let set = encode(&["SET", &format!("h{c}-{i}"), "v"]);
                        let get = encode(&["GET", &format!("h{c}-{i}")]);
                        let t0 = Instant::now();
                        roundtrip(&mut conn, &set, b"+OK\r\n");
                        roundtrip(&mut conn, &get, b"$1\r\nv\r\n");
                        lat.push(t0.elapsed().as_micros() as u64);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    let result = ArmResult {
        arm,
        idle_conns: idle,
        hot_clients,
        // Each latency sample covers a SET + a GET: two commands.
        ops_per_sec: (hot_clients * hot_ops * 2) as f64 / elapsed,
        p50_micros: pct(0.50),
        p99_micros: pct(0.99),
        rss_delta_kb: rss_after - rss_before,
        thread_delta: threads_after - threads_before,
    };
    drop(fleet);
    handle.shutdown();
    let _ = runner.join();
    result
}

/// Same total ops through one connection, pipelined in `PIPELINE_BATCH`-deep
/// flights vs strictly serial request/response. Returns (pipelined, serial)
/// ops/s.
fn run_pipeline_comparison(ops: usize) -> (f64, f64) {
    let dir = TestDir::new("conn-bench-pipeline");
    let engine = Arc::new(TableEngine::open(dir.path(), DbConfig::default()).unwrap());
    let server = RespServer::bind(engine, "127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.shutdown_handle();
    let runner = std::thread::spawn(move || server.run());

    let mut conn = client(addr);
    roundtrip(&mut conn, &encode(&["SET", "pk", "pv"]), b"+OK\r\n");
    let get = encode(&["GET", "pk"]);
    let get_reply: &[u8] = b"$2\r\npv\r\n";

    // Serial: one command in flight at a time.
    let started = Instant::now();
    for _ in 0..ops {
        roundtrip(&mut conn, &get, get_reply);
    }
    let serial = ops as f64 / started.elapsed().as_secs_f64();

    // Pipelined: PIPELINE_BATCH commands per write, one read pass per batch.
    let mut batch = Vec::with_capacity(get.len() * PIPELINE_BATCH);
    for _ in 0..PIPELINE_BATCH {
        batch.extend_from_slice(&get);
    }
    let flights = ops / PIPELINE_BATCH;
    let started = Instant::now();
    for _ in 0..flights {
        conn.write_all(&batch).unwrap();
        read_reply_bytes(&mut conn, get_reply.len() * PIPELINE_BATCH);
    }
    let pipelined = (flights * PIPELINE_BATCH) as f64 / started.elapsed().as_secs_f64();

    drop(conn);
    handle.shutdown();
    let _ = runner.join();
    (pipelined, serial)
}

/// Open `n` connections, PING each once, and keep them all alive (idle).
fn connect_fleet(addr: SocketAddr, n: usize) -> Vec<TcpStream> {
    let openers = 8.min(n.max(1));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..openers)
            .map(|o| {
                let per = n / openers + usize::from(o < n % openers);
                scope.spawn(move || {
                    let mut conns = Vec::with_capacity(per);
                    for _ in 0..per {
                        let mut conn = client(addr);
                        roundtrip(&mut conn, &encode(&["PING"]), b"+PONG\r\n");
                        conns.push(conn);
                    }
                    conns
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    })
}

fn client(addr: SocketAddr) -> TcpStream {
    // EMFILE/backlog pressure at 10k: retry briefly instead of giving up.
    for _ in 0..50 {
        match TcpStream::connect(addr) {
            Ok(conn) => {
                conn.set_nodelay(true).unwrap();
                return conn;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    }
    panic!("could not connect to {addr}");
}

fn encode(parts: &[&str]) -> Vec<u8> {
    let mut out = format!("*{}\r\n", parts.len()).into_bytes();
    for p in parts {
        out.extend_from_slice(format!("${}\r\n{p}\r\n", p.len()).as_bytes());
    }
    out
}

/// Write `request` and read back exactly `reply` (every command in this
/// bench has a fixed, known reply — byte-exact reads keep the timing loop
/// free of parsing and immune to reply-boundary splits).
fn roundtrip(conn: &mut TcpStream, request: &[u8], reply: &[u8]) {
    conn.write_all(request).unwrap();
    let mut buf = vec![0u8; reply.len()];
    conn.read_exact(&mut buf).unwrap();
    assert_eq!(&buf[..], reply, "unexpected reply");
}

/// Drain exactly `total` reply bytes (a pipelined batch's worth).
fn read_reply_bytes(conn: &mut TcpStream, mut total: usize) {
    let mut chunk = [0u8; 64 * 1024];
    while total > 0 {
        let got = conn.read(&mut chunk[..total.min(64 * 1024)]).unwrap();
        assert!(got > 0, "server closed with {total} reply bytes pending");
        total -= got;
    }
}

/// (VmRSS kB, thread count) from /proc/self/status.
fn proc_status() -> (i64, i64) {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    let field = |key: &str| {
        status
            .lines()
            .find(|l| l.starts_with(key))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    (field("VmRSS:"), field("Threads:"))
}
