//! Figure 6 — Effectiveness of proxy quota.
//!
//! Timeline (paper): two tenants on one DataNode, proxy quota disabled.
//! Minute 10: tenant 1 bursts far beyond its tenant quota; the node rejects
//! the excess at the partition quota but burns CPU doing so, and tenant 2's
//! success QPS collapses toward zero. Minute 35: tenant 1's proxy quota is
//! switched on; the proxy intercepts the excess, the node recovers, and both
//! tenants return to low latency.

use abase_bench::{banner, fmt, print_table};
use abase_core::cluster::{IsolationExperiment, TenantSpec};
use abase_core::node::{DataNodeConfig, DataNodeSim};
use abase_core::proxy::ProxyPlaneConfig;
use abase_workload::{KeyspaceConfig, TrafficShape};

fn main() {
    banner(
        "Figure 6",
        "proxy quota shields co-tenants from burst traffic",
        "T1 burst at min 10 starves T2 (success→~0); proxy on at min 35 restores both",
    );
    let node = DataNodeSim::new(
        1,
        DataNodeConfig {
            cpu_ru_per_sec: 2_000.0,
            rejection_cost_ru: 0.5,
            cache_bytes: 16 << 20,
            ..Default::default()
        },
    );
    // Tenant 1's burst is cache-unfriendly (broad, barely skewed keyspace):
    // bursts of cheap cache hits would legitimately fit in the RU quota, but
    // the figure studies *resource-consuming* excess traffic.
    let keyspace = |seed_prefix: &str, n_keys: usize, zipf: f64| KeyspaceConfig {
        n_keys,
        zipf_s: zipf,
        read_ratio: 1.0,
        key_prefix: seed_prefix.to_string(),
        ..Default::default()
    };
    let t1 = TenantSpec {
        id: 1,
        tenant_quota_ru: 800.0,
        partition: 10,
        partition_quota_ru: 800.0,
        shape: TrafficShape::StepBurst {
            base: 200.0,
            burst: 8_000.0,
            start: 10 * 10_000_000, // minute 10 (compressed: 10 s/min)
            end: 45 * 10_000_000,
        },
        keyspace: keyspace("t1", 200_000, 0.3),
        proxy: ProxyPlaneConfig {
            n_proxies: 4,
            n_groups: 2,
            quota_enabled: false, // the experiment's starting state
            cache_enabled: false,
            ..Default::default()
        },
    };
    let t2 = TenantSpec {
        id: 2,
        tenant_quota_ru: 800.0,
        partition: 20,
        partition_quota_ru: 800.0,
        shape: TrafficShape::Steady(400.0),
        keyspace: keyspace("t2", 20_000, 0.9),
        proxy: ProxyPlaneConfig {
            n_proxies: 4,
            n_groups: 2,
            quota_enabled: true,
            cache_enabled: false,
            ..Default::default()
        },
    };
    let mut exp = IsolationExperiment::new(node, vec![t1, t2], 66);
    exp.set_minute_secs(10);

    let mut all = exp.run_minutes(35);
    println!("\n[minute 35] turning ON tenant 1's proxy quota restriction\n");
    exp.plane_mut(1).set_quota_enabled(true);
    all.extend(exp.run_minutes(10));

    let mut rows = Vec::new();
    for minute in [0, 5, 9, 11, 15, 25, 34, 36, 40, 44] {
        let p1 = all
            .iter()
            .find(|p| p.minute == minute && p.tenant == 1)
            .expect("point");
        let p2 = all
            .iter()
            .find(|p| p.minute == minute && p.tenant == 2)
            .expect("point");
        rows.push(vec![
            format!(
                "{minute}{}",
                if minute == 9 {
                    " (pre-burst)"
                } else if minute == 11 {
                    " (burst)"
                } else if minute == 36 {
                    " (proxy on)"
                } else {
                    ""
                }
            ),
            fmt(p1.success_qps, 0),
            fmt(p1.error_qps, 0),
            fmt(p1.p99_latency_ms, 1),
            fmt(p2.success_qps, 0),
            fmt(p2.error_qps, 0),
            fmt(p2.p99_latency_ms, 1),
        ]);
    }
    print_table(
        &[
            "minute",
            "T1 ok qps",
            "T1 err qps",
            "T1 p99 ms",
            "T2 ok qps",
            "T2 err qps",
            "T2 p99 ms",
        ],
        &rows,
    );

    let t2_at = |minute: u64| {
        all.iter()
            .find(|p| p.minute == minute && p.tenant == 2)
            .map(|p| p.success_qps)
            .unwrap_or(0.0)
    };
    println!("\nShape checks (paper: T2 → ~0 during burst; recovery after proxy on):");
    println!("  T2 pre-burst  (min 9) : {} qps", fmt(t2_at(9), 0));
    println!("  T2 mid-burst  (min 25): {} qps", fmt(t2_at(25), 0));
    println!("  T2 recovered  (min 44): {} qps", fmt(t2_at(44), 0));
    let starved = t2_at(25) < t2_at(9) * 0.2;
    let recovered = t2_at(44) > t2_at(9) * 0.8;
    println!("  starvation during burst: {starved}; recovery after proxy on: {recovered}");
}
