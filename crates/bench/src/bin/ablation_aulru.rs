//! Ablation — AU-LRU active refresh vs passive TTL expiry.
//!
//! DESIGN.md design choice: "an active-update mechanism is applied to address
//! potential spikes in requests due to expired cache entries." This study
//! hammers a hot key set through a TTL'd proxy cache and counts the back-end
//! misses with and without active refresh — the passive cache shows a miss
//! spike every TTL period, the active one refreshes ahead of expiry.

use abase_bench::{banner, fmt, print_table, sparkline};
use abase_cache::aulru::{AuLruCache, AuLruConfig};
use abase_util::clock::secs;
use abase_workload::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Simulate `seconds` of 1000 req/s over 200 hot keys; returns per-second
/// backend misses.
fn run(active_refresh: bool, seconds: u64) -> Vec<u64> {
    let mut cache: AuLruCache<u64, ()> = AuLruCache::new(AuLruConfig {
        capacity_bytes: 10 << 20,
        ttl: secs(30),
        refresh_window: secs(3),
        hot_threshold: 5,
    });
    let zipf = Zipf::new(200, 0.9);
    let mut rng = StdRng::seed_from_u64(99);
    let mut misses_per_sec = Vec::with_capacity(seconds as usize);
    for sec in 0..seconds {
        let mut misses = 0u64;
        for i in 0..1000u64 {
            let now = secs(sec) + i * 1000;
            let key = zipf.sample(&mut rng) as u64;
            if cache.get(&key, now).is_none() {
                misses += 1;
                // Backend fetch + insert.
                cache.insert(key, (), 512, now);
            }
        }
        if active_refresh {
            // The proxy's refresh loop runs once a second.
            for cand in cache.refresh_candidates(secs(sec + 1)) {
                cache.update(cand.key, (), 512, secs(sec + 1));
            }
        }
        misses_per_sec.push(misses);
    }
    misses_per_sec
}

fn main() {
    banner(
        "Ablation: AU-LRU",
        "active refresh vs passive TTL expiry on a hot key set",
        "passive caches spike misses every TTL period; active refresh flattens them",
    );
    let seconds = 120;
    let passive = run(false, seconds);
    let active = run(true, seconds);
    println!("backend misses per second (after warm-up):");
    println!(
        "  passive [{}]",
        sparkline(&passive.iter().map(|&m| m as f64).collect::<Vec<_>>())
    );
    println!(
        "  active  [{}]",
        sparkline(&active.iter().map(|&m| m as f64).collect::<Vec<_>>())
    );
    // Steady-state window: skip the first TTL period.
    let steady = 30usize;
    let stats = |xs: &[u64]| {
        let window = &xs[steady..];
        let total: u64 = window.iter().sum();
        let peak = *window.iter().max().unwrap_or(&0);
        (total, peak)
    };
    let (p_total, p_peak) = stats(&passive);
    let (a_total, a_peak) = stats(&active);
    let rows = vec![
        vec![
            "total backend misses".into(),
            format!("{p_total}"),
            format!("{a_total}"),
        ],
        vec![
            "peak misses in 1 s (expiry spike)".into(),
            format!("{p_peak}"),
            format!("{a_peak}"),
        ],
    ];
    print_table(
        &["metric (steady state)", "passive TTL", "active refresh"],
        &rows,
    );
    println!(
        "\nexpiry-spike reduction: {}x",
        fmt(p_peak as f64 / a_peak.max(1) as f64, 1)
    );
}
