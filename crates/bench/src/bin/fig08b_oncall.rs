//! Figure 8b — Oncall (urgent contact) amount decreases by 65 %.
//!
//! "We tracked the change in the number of upscaling oncalls over
//! approximately six months before and after the deployment … After
//! deployment, the number of oncalls decreased by approximately 65 %."

use abase_bench::{banner, fmt, sparkline};
use abase_core::oncall::{run_oncall_study, OncallStudyConfig, ScalingMode};

fn main() {
    banner(
        "Figure 8b",
        "weekly up-scaling oncall tickets, reactive vs. predictive",
        "~65% reduction after deploying predictive autoscaling",
    );
    let config = OncallStudyConfig {
        tenants: 200,
        weeks: 28,
        ..Default::default()
    };
    // Pre-deployment half: reactive; post-deployment half: predictive —
    // spliced into one timeline like the paper's before/after plot.
    let reactive = run_oncall_study(&config, ScalingMode::Reactive);
    let predictive = run_oncall_study(&config, ScalingMode::Predictive);
    let half = config.weeks / 2;
    let timeline: Vec<u32> = reactive.weekly[..half]
        .iter()
        .chain(&predictive.weekly[half..])
        .copied()
        .collect();
    println!("(200 tenants, 28 weeks, autoscaling deployed at week {half})\n");
    println!(
        "weekly oncalls: [{}]",
        sparkline(&timeline.iter().map(|&c| f64::from(c)).collect::<Vec<_>>())
    );
    for (week, count) in timeline.iter().enumerate() {
        let marker = if week == half {
            "  <-- deploy autoscaling"
        } else {
            ""
        };
        println!("  week {week:>2}: {}{marker}", "#".repeat(*count as usize));
    }
    let before: f64 = timeline[..half].iter().map(|&c| f64::from(c)).sum::<f64>() / half as f64;
    let after: f64 =
        timeline[half..].iter().map(|&c| f64::from(c)).sum::<f64>() / (config.weeks - half) as f64;
    let reduction = 1.0 - after / before.max(1e-9);
    println!(
        "\nmean weekly oncalls: before {} after {} -> reduction {}%",
        fmt(before, 1),
        fmt(after, 1),
        fmt(reduction * 100.0, 0)
    );
    println!("paper: ~65% reduction");
}
