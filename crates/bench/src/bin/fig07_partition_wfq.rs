//! Figure 7 — Effectiveness of partition quota and dual-layer WFQ.
//!
//! Timeline (paper): partition quota disabled. Minute 10: tenant 1 directs a
//! skewed burst at one partition — within its *tenant* quota, so the proxy
//! passes it. The dual-layer WFQ keeps tenant 2's latency flat (success QPS
//! dips ~25 %), but tenant 1 — processed without node-side limits — sees a
//! ~20× latency increase. Minute 37: partition quota enabled; tenant 1's
//! success drops to the partition cap (excess rejected as errors), tenant 2
//! recovers fully, and success latencies stay low for both.

use abase_bench::{banner, fmt, print_table};
use abase_core::cluster::{IsolationExperiment, TenantSpec};
use abase_core::node::{DataNodeConfig, DataNodeSim};
use abase_core::proxy::ProxyPlaneConfig;
use abase_workload::{KeyspaceConfig, TrafficShape};

fn main() {
    banner(
        "Figure 7",
        "partition quota + dual-layer WFQ under a skewed partition burst",
        "WFQ holds T2 latency flat (QPS −25%); T1 latency ×20; quota at min 37 caps T1, T2 recovers",
    );
    let node = DataNodeSim::new(
        1,
        DataNodeConfig {
            cpu_ru_per_sec: 1_200.0,
            rejection_cost_ru: 0.02, // quota rejections at the queue entry are cheap
            max_queue_per_tenant: 2_000,
            cache_bytes: 16 << 20,
            ..Default::default()
        },
    );
    let keyspace = |prefix: &str, n: usize, zipf: f64| KeyspaceConfig {
        n_keys: n,
        zipf_s: zipf,
        read_ratio: 1.0,
        value_size: abase_workload::LogNormal::from_median_p90(1024.0, 2.0),
        key_prefix: prefix.to_string(),
    };
    let t1 = TenantSpec {
        id: 1,
        tenant_quota_ru: 100_000.0, // never the binding constraint here
        partition: 10,
        partition_quota_ru: 250.0,
        shape: TrafficShape::StepBurst {
            base: 200.0,
            burst: 2_400.0,
            start: 10 * 10_000_000,
            end: 45 * 10_000_000,
        },
        keyspace: keyspace("t1", 200_000, 0.4),
        proxy: ProxyPlaneConfig {
            n_proxies: 4,
            n_groups: 2,
            quota_enabled: false, // proxy does not intervene in this figure
            cache_enabled: false,
            ..Default::default()
        },
    };
    let t2 = TenantSpec {
        id: 2,
        tenant_quota_ru: 100_000.0,
        partition: 20,
        partition_quota_ru: 300.0,
        shape: TrafficShape::Steady(300.0),
        keyspace: keyspace("t2", 4_000, 1.1),
        proxy: ProxyPlaneConfig {
            n_proxies: 4,
            n_groups: 2,
            quota_enabled: false,
            cache_enabled: false,
            ..Default::default()
        },
    };
    let mut exp = IsolationExperiment::new(node, vec![t1, t2], 77);
    exp.set_minute_secs(10);
    // Phase 1: partition quota disabled.
    exp.node_mut().set_partition_quota_enabled(10, false);
    exp.node_mut().set_partition_quota_enabled(20, false);

    let mut all = exp.run_minutes(37);
    println!("\n[minute 37] turning ON the partition quota\n");
    exp.node_mut().set_partition_quota_enabled(10, true);
    exp.node_mut().set_partition_quota_enabled(20, true);
    all.extend(exp.run_minutes(8));

    let mut rows = Vec::new();
    for minute in [0, 5, 9, 11, 15, 25, 36, 38, 42, 44] {
        let p1 = all
            .iter()
            .find(|p| p.minute == minute && p.tenant == 1)
            .expect("point");
        let p2 = all
            .iter()
            .find(|p| p.minute == minute && p.tenant == 2)
            .expect("point");
        rows.push(vec![
            format!(
                "{minute}{}",
                if minute == 9 {
                    " (pre-burst)"
                } else if minute == 11 {
                    " (burst)"
                } else if minute == 38 {
                    " (quota on)"
                } else {
                    ""
                }
            ),
            fmt(p1.success_qps, 0),
            fmt(p1.error_qps, 0),
            fmt(p1.p99_latency_ms, 1),
            fmt(p2.success_qps, 0),
            fmt(p2.p99_latency_ms, 1),
        ]);
    }
    print_table(
        &[
            "minute",
            "T1 ok qps",
            "T1 err qps",
            "T1 p99 ms",
            "T2 ok qps",
            "T2 p99 ms",
        ],
        &rows,
    );

    let at = |minute: u64, tenant: u32| {
        all.iter()
            .find(|p| p.minute == minute && p.tenant == tenant)
            .cloned()
            .expect("point")
    };
    let t1_pre = at(9, 1);
    let t1_mid = at(25, 1);
    let t1_post = at(42, 1);
    let t2_pre = at(9, 2);
    let t2_mid = at(25, 2);
    let t2_post = at(42, 2);
    println!("\nShape checks:");
    println!(
        "  T2 success dip during burst: {} -> {} qps ({}%)",
        fmt(t2_pre.success_qps, 0),
        fmt(t2_mid.success_qps, 0),
        fmt(
            (1.0 - t2_mid.success_qps / t2_pre.success_qps.max(1e-9)) * 100.0,
            0
        )
    );
    println!(
        "  T2 p99 stays flat: {} -> {} ms",
        fmt(t2_pre.p99_latency_ms, 1),
        fmt(t2_mid.p99_latency_ms, 1)
    );
    println!(
        "  T1 latency blow-up without node limits: {} -> {} ms ({}x)",
        fmt(t1_pre.p99_latency_ms, 1),
        fmt(t1_mid.p99_latency_ms, 1),
        fmt(t1_mid.p99_latency_ms / t1_pre.p99_latency_ms.max(1e-9), 0)
    );
    println!(
        "  After quota on: T1 capped at {} qps (errors {} qps), T2 back to {} qps, T1 p99 {} ms",
        fmt(t1_post.success_qps, 0),
        fmt(t1_post.error_qps, 0),
        fmt(t2_post.success_qps, 0),
        fmt(t1_post.p99_latency_ms, 1)
    );
}
