//! Replication ablation: write-concern cost and recovery parallelism.
//!
//! Two experiments over real 3-replica WAL-shipping groups, emitting one JSON
//! object so downstream tooling can diff runs:
//!
//! 1. **Write concern** — identical write streams against `Async`, `Quorum`,
//!    and `All` groups; reports throughput and latency percentiles. `Async`
//!    acks at the leader WAL, `Quorum` ships to one follower synchronously,
//!    `All` to both — the classic durability/latency trade.
//! 2. **Recovery parallelism** — reconstruct a failed node's replicas from
//!    one source disk vs. in parallel from N survivors under the same
//!    modeled per-disk bandwidth, next to the §3.3 closed-form
//!    [`RecoveryModel`] prediction the measurement should reproduce.

use abase_bench::banner;
use abase_core::meta::RecoveryModel;
use abase_lavastore::{Db, DbConfig};
use abase_replication::{
    reconstruct_parallel, reconstruct_single_source, GroupConfig, ReconstructionTask, ReplicaGroup,
    WriteConcern,
};
use abase_util::LatencyHistogram;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const WRITES: usize = 400;
const VALUE_BYTES: usize = 256;
/// Modeled per-node disk bandwidth for the recovery experiment (bytes/sec).
const DISK_BW: f64 = 4e6;
/// Surviving source nodes in the recovery experiment.
const SURVIVORS: usize = 3;

struct ConcernResult {
    name: &'static str,
    throughput: f64,
    p50_us: f64,
    p99_us: f64,
    acked_all: bool,
}

fn bench_concern(base: &Path, concern: WriteConcern, name: &'static str) -> ConcernResult {
    let dir = base.join(name);
    std::fs::remove_dir_all(&dir).ok();
    let mut group = ReplicaGroup::bootstrap(
        1,
        &dir,
        &[1, 2, 3],
        GroupConfig::new(concern, DbConfig::default()),
    )
    .expect("bootstrap group");
    let value = vec![7u8; VALUE_BYTES];
    let mut latencies = LatencyHistogram::for_latency_micros();
    let started = Instant::now();
    let mut last_lsn = 0;
    for i in 0..WRITES {
        let key = format!("key-{i:06}");
        let t0 = Instant::now();
        last_lsn = group
            .put(key.as_bytes(), &value, None, 0)
            .expect("replicated write");
        latencies.record(t0.elapsed().as_secs_f64() * 1e6);
    }
    let elapsed = started.elapsed().as_secs_f64();
    // Async leaves followers behind by design; verify convergence afterwards.
    group.tick().expect("final pump");
    let acked_all = group.acked_count(last_lsn) == 3;
    std::fs::remove_dir_all(&dir).ok();
    ConcernResult {
        name,
        throughput: WRITES as f64 / elapsed,
        p50_us: latencies.quantile(0.50).unwrap_or(0.0),
        p99_us: latencies.quantile(0.99).unwrap_or(0.0),
        acked_all,
    }
}

fn seeded_source(dir: &Path, keys: usize) -> Arc<Db> {
    let db = Db::open(dir, DbConfig::default()).expect("open source");
    for i in 0..keys {
        db.put(format!("key-{i:06}").as_bytes(), &[3u8; 512], None, 0)
            .expect("seed put");
    }
    db.flush().expect("seed flush");
    Arc::new(db)
}

fn recovery_tasks(base: &Path, sources: &[Arc<Db>], tag: &str) -> Vec<ReconstructionTask> {
    sources
        .iter()
        .enumerate()
        .map(|(i, src)| ReconstructionTask {
            partition: i as u64,
            source: Arc::clone(src),
            source_node: i as u32,
            dest_dir: base.join(format!("rebuilt-{tag}-{i}")),
        })
        .collect()
}

fn main() {
    banner(
        "ablation_replication",
        "write-concern cost and §3.3 recovery parallelism",
        "parallel reconstruction across N survivors is ≈N× faster than a single replacement node",
    );
    let base: PathBuf = std::env::temp_dir().join(format!("abase-ablrepl-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    std::fs::create_dir_all(&base).expect("create bench dir");

    // -- Experiment 1: write concerns ------------------------------------
    let concerns = [
        bench_concern(&base, WriteConcern::Async, "async"),
        bench_concern(&base, WriteConcern::Quorum, "quorum"),
        bench_concern(&base, WriteConcern::All, "all"),
    ];

    // -- Experiment 2: recovery parallelism ------------------------------
    let sources: Vec<Arc<Db>> = (0..SURVIVORS)
        .map(|i| seeded_source(&base.join(format!("src-{i}")), 800))
        .collect();
    let single =
        reconstruct_single_source(recovery_tasks(&base, &sources, "single"), Some(DISK_BW))
            .expect("single-source reconstruction");
    let parallel = reconstruct_parallel(recovery_tasks(&base, &sources, "par"), Some(DISK_BW))
        .expect("parallel reconstruction");
    let measured_speedup = single.elapsed.as_secs_f64() / parallel.elapsed.as_secs_f64();
    let model = RecoveryModel {
        failed_node_bytes: single.bytes_copied as f64,
        per_node_bandwidth: DISK_BW,
        surviving_nodes: SURVIVORS as u32,
    };
    let model_speedup = model.single_node_recovery_secs() / model.parallel_recovery_secs();

    // -- JSON report ------------------------------------------------------
    println!("{{");
    println!("  \"writes\": {WRITES},");
    println!("  \"value_bytes\": {VALUE_BYTES},");
    println!("  \"write_concerns\": {{");
    for (i, c) in concerns.iter().enumerate() {
        let comma = if i + 1 < concerns.len() { "," } else { "" };
        println!(
            "    \"{}\": {{\"throughput_wps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"converged\": {}}}{comma}",
            c.name, c.throughput, c.p50_us, c.p99_us, c.acked_all
        );
    }
    println!("  }},");
    println!("  \"recovery\": {{");
    println!("    \"disk_bandwidth_bytes_per_sec\": {DISK_BW},");
    println!(
        "    \"bytes_per_replica\": {},",
        single.bytes_copied / SURVIVORS as u64
    );
    println!("    \"total_bytes\": {},", single.bytes_copied);
    println!(
        "    \"single_source_secs\": {:.3},",
        single.elapsed.as_secs_f64()
    );
    println!(
        "    \"parallel_secs\": {:.3},",
        parallel.elapsed.as_secs_f64()
    );
    println!("    \"parallel_sources\": {},", parallel.distinct_sources);
    println!("    \"measured_speedup\": {measured_speedup:.2},");
    println!("    \"model_speedup\": {model_speedup:.2},");
    println!(
        "    \"model_single_secs\": {:.3},",
        model.single_node_recovery_secs()
    );
    println!(
        "    \"model_parallel_secs\": {:.3}",
        model.parallel_recovery_secs()
    );
    println!("  }}");
    println!("}}");
    std::fs::remove_dir_all(&base).ok();
}
