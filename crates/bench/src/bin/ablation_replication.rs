//! Replication ablation: write-concern cost, recovery parallelism, and
//! follower-read routing.
//!
//! Three experiments over real 3-replica WAL-shipping groups, emitting one
//! JSON object so downstream tooling can diff runs:
//!
//! 1. **Write concern** — identical write streams against `Async`, `Quorum`,
//!    and `All` groups; reports throughput and latency percentiles. `Async`
//!    acks at the leader WAL, `Quorum` ships to one follower synchronously,
//!    `All` to both — the classic durability/latency trade.
//! 2. **Recovery parallelism** — reconstruct a failed node's replicas from
//!    one source disk vs. in parallel from N survivors under the same
//!    modeled per-disk bandwidth, next to the §3.3 closed-form
//!    [`RecoveryModel`] prediction the measurement should reproduce.
//! 3. **Follower reads** — the read-routing ablation: the same read stream
//!    against the leader replica only vs. routed across every replica,
//!    reporting read throughput, p50/p99, per-replica-count scaling, and the
//!    observed staleness (LSN lag at read time) of `Eventual` routed reads
//!    under an async write trickle.
//!
//! Set `ABASE_BENCH_SMOKE=1` to shrink every workload for a CI smoke run —
//! the JSON shape is identical, only the sample counts drop.

use abase_bench::banner;
use abase_core::cluster::{ReplicatedCluster, ReplicatedClusterConfig};
use abase_core::meta::RecoveryModel;
use abase_core::node::DataNodeConfig;
use abase_lavastore::{Db, DbConfig};
use abase_replication::{
    reconstruct_parallel, reconstruct_single_source, GroupConfig, ReadConsistency,
    ReconstructionTask, ReplicaGroup, WriteConcern,
};
use abase_util::LatencyHistogram;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const VALUE_BYTES: usize = 256;
/// Modeled per-node disk bandwidth for the recovery experiment (bytes/sec).
const DISK_BW: f64 = 4e6;
/// Surviving source nodes in the recovery experiment.
const SURVIVORS: usize = 3;
/// Replicas in the follower-read experiment's group.
const READ_REPLICAS: usize = 3;

/// Workload sizes, shrunk under `ABASE_BENCH_SMOKE=1`.
struct Sizes {
    writes: usize,
    recovery_keys: usize,
    read_keys: usize,
    reads_per_thread: usize,
    staleness_writes: usize,
}

fn sizes() -> Sizes {
    let smoke = std::env::var("ABASE_BENCH_SMOKE").is_ok_and(|v| v != "0");
    if smoke {
        Sizes {
            writes: 60,
            recovery_keys: 120,
            read_keys: 200,
            reads_per_thread: 1_000,
            staleness_writes: 40,
        }
    } else {
        Sizes {
            writes: 400,
            recovery_keys: 800,
            read_keys: 2_000,
            reads_per_thread: 20_000,
            staleness_writes: 200,
        }
    }
}

struct ConcernResult {
    name: &'static str,
    throughput: f64,
    p50_us: f64,
    p99_us: f64,
    acked_all: bool,
}

fn bench_concern(
    base: &Path,
    concern: WriteConcern,
    name: &'static str,
    writes: usize,
) -> ConcernResult {
    let dir = base.join(name);
    std::fs::remove_dir_all(&dir).ok();
    let mut group = ReplicaGroup::bootstrap(
        1,
        &dir,
        &[1, 2, 3],
        GroupConfig::new(concern, DbConfig::default()),
    )
    .expect("bootstrap group");
    let value = vec![7u8; VALUE_BYTES];
    let mut latencies = LatencyHistogram::for_latency_micros();
    let started = Instant::now();
    let mut last_lsn = 0;
    for i in 0..writes {
        let key = format!("key-{i:06}");
        let t0 = Instant::now();
        last_lsn = group
            .put(key.as_bytes(), &value, None, 0)
            .expect("replicated write");
        latencies.record(t0.elapsed().as_secs_f64() * 1e6);
    }
    let elapsed = started.elapsed().as_secs_f64();
    // Async leaves followers behind by design; verify convergence afterwards.
    group.tick().expect("final pump");
    let acked_all = group.acked_count(last_lsn) == 3;
    std::fs::remove_dir_all(&dir).ok();
    ConcernResult {
        name,
        throughput: writes as f64 / elapsed,
        p50_us: latencies.quantile(0.50).unwrap_or(0.0),
        p99_us: latencies.quantile(0.99).unwrap_or(0.0),
        acked_all,
    }
}

/// Measured outcome of one read-routing mode.
struct ReadModeResult {
    throughput: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Hammer `dbs` with `threads` concurrent readers (thread `t` pinned to
/// replica `t % dbs.len()` — leader-only passes a single-element slice) and
/// report aggregate throughput plus latency percentiles.
fn bench_reads(
    dbs: &[Arc<Db>],
    threads: usize,
    keys: usize,
    reads_per_thread: usize,
) -> ReadModeResult {
    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let db = Arc::clone(&dbs[t % dbs.len()]);
            std::thread::spawn(move || {
                let mut hist = LatencyHistogram::for_latency_micros();
                for i in 0..reads_per_thread {
                    let key = format!("key-{:06}", (i * 31 + t * 7) % keys);
                    let t0 = Instant::now();
                    let r = db.get(key.as_bytes(), 0).expect("replica read");
                    assert!(r.value.is_some(), "seeded key missing on replica");
                    hist.record(t0.elapsed().as_secs_f64() * 1e6);
                }
                hist
            })
        })
        .collect();
    let mut merged = LatencyHistogram::for_latency_micros();
    for handle in handles {
        merged.merge(&handle.join().expect("reader thread"));
    }
    let elapsed = started.elapsed().as_secs_f64();
    ReadModeResult {
        throughput: (threads * reads_per_thread) as f64 / elapsed,
        p50_us: merged.quantile(0.50).unwrap_or(0.0),
        p99_us: merged.quantile(0.99).unwrap_or(0.0),
    }
}

/// Modeled sustainable read throughput for one routing mode: route `reads`
/// through a real cluster, then divide a node's RU/s budget by the *hottest*
/// replica's share of the read RU — the node that saturates first caps the
/// aggregate. Leader-only routing pins every read on one node; routed
/// `Eventual` reads spread over the followers, so capacity grows with the
/// replica count.
fn modeled_read_capacity(base: &Path, replicas: u32, reads: usize, leader_only: bool) -> f64 {
    let dir = base.join(format!(
        "capacity-{replicas}-{}",
        if leader_only { "leader" } else { "routed" }
    ));
    std::fs::remove_dir_all(&dir).ok();
    let mut cluster = ReplicatedCluster::new(
        &dir,
        replicas,
        ReplicatedClusterConfig {
            replication_factor: replicas as usize,
            write_concern: WriteConcern::All,
            db: DbConfig::small_for_tests(),
            recovery_bandwidth: None,
            ..Default::default()
        },
    );
    cluster.create_partition(1, 0).expect("partition");
    let keys = 64usize;
    for i in 0..keys {
        cluster
            .write(0, format!("key-{i:03}").as_bytes(), &[5u8; 128], 0)
            .expect("seed write");
    }
    cluster.tick().expect("converge");
    let consistency = if leader_only {
        ReadConsistency::Leader
    } else {
        ReadConsistency::Eventual
    };
    for i in 0..reads {
        cluster
            .read_routed(0, format!("key-{:03}", i % keys).as_bytes(), consistency, 0)
            .expect("routed read");
    }
    let members = cluster.meta().replica_set(0).expect("set").members();
    let max_node_read_ru = members
        .iter()
        .map(|&n| cluster.node(n).expect("node").replica_ru_split(0).read_ru)
        .fold(0.0f64, f64::max);
    let node_ru_per_sec = DataNodeConfig::default().cpu_ru_per_sec;
    std::fs::remove_dir_all(&dir).ok();
    node_ru_per_sec * reads as f64 / max_node_read_ru.max(1e-9)
}

/// Observed staleness of `Eventual` routed reads under an async write
/// trickle: after each un-pumped write, one routed read records the serving
/// replica's LSN lag. After a final pump the lag must collapse to zero.
struct StalenessResult {
    reads: usize,
    mean_lag: f64,
    max_lag: u64,
    lag_after_converge: u64,
}

fn bench_staleness(base: &Path, writes: usize) -> StalenessResult {
    let dir = base.join("staleness");
    std::fs::remove_dir_all(&dir).ok();
    let mut group = ReplicaGroup::bootstrap(
        1,
        &dir,
        &[1, 2, 3],
        GroupConfig::new(WriteConcern::Async, DbConfig::default()),
    )
    .expect("bootstrap group");
    let mut lag_sum = 0u64;
    let mut max_lag = 0u64;
    for i in 0..writes {
        group
            .put(format!("s-{i:06}").as_bytes(), &[3u8; 64], None, 0)
            .expect("async write");
        let routed = group
            .read_routed(b"s-000000", ReadConsistency::Eventual, 0)
            .expect("routed read");
        lag_sum += routed.lag;
        max_lag = max_lag.max(routed.lag);
    }
    group.tick().expect("converge");
    let after = group
        .read_routed(b"s-000000", ReadConsistency::Eventual, 0)
        .expect("routed read after converge");
    std::fs::remove_dir_all(&dir).ok();
    StalenessResult {
        reads: writes,
        mean_lag: lag_sum as f64 / writes.max(1) as f64,
        max_lag,
        lag_after_converge: after.lag,
    }
}

fn seeded_source(dir: &Path, keys: usize) -> Arc<Db> {
    let db = Db::open(dir, DbConfig::default()).expect("open source");
    for i in 0..keys {
        db.put(format!("key-{i:06}").as_bytes(), &[3u8; 512], None, 0)
            .expect("seed put");
    }
    db.flush().expect("seed flush");
    Arc::new(db)
}

fn recovery_tasks(base: &Path, sources: &[Arc<Db>], tag: &str) -> Vec<ReconstructionTask> {
    sources
        .iter()
        .enumerate()
        .map(|(i, src)| ReconstructionTask {
            partition: i as u64,
            source: Arc::clone(src),
            source_node: i as u32,
            dest_dir: base.join(format!("rebuilt-{tag}-{i}")),
        })
        .collect()
}

fn main() {
    banner(
        "ablation_replication",
        "write-concern cost, §3.3 recovery parallelism, follower-read routing",
        "parallel reconstruction is ≈N× faster; routed reads scale with replica count",
    );
    let sz = sizes();
    let base: PathBuf = std::env::temp_dir().join(format!("abase-ablrepl-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    std::fs::create_dir_all(&base).expect("create bench dir");

    // -- Experiment 1: write concerns ------------------------------------
    let concerns = [
        bench_concern(&base, WriteConcern::Async, "async", sz.writes),
        bench_concern(&base, WriteConcern::Quorum, "quorum", sz.writes),
        bench_concern(&base, WriteConcern::All, "all", sz.writes),
    ];

    // -- Experiment 2: recovery parallelism ------------------------------
    let sources: Vec<Arc<Db>> = (0..SURVIVORS)
        .map(|i| seeded_source(&base.join(format!("src-{i}")), sz.recovery_keys))
        .collect();
    let single =
        reconstruct_single_source(recovery_tasks(&base, &sources, "single"), Some(DISK_BW))
            .expect("single-source reconstruction");
    let parallel = reconstruct_parallel(recovery_tasks(&base, &sources, "par"), Some(DISK_BW))
        .expect("parallel reconstruction");
    let measured_speedup = single.elapsed.as_secs_f64() / parallel.elapsed.as_secs_f64();
    let model = RecoveryModel {
        failed_node_bytes: single.bytes_copied as f64,
        per_node_bandwidth: DISK_BW,
        surviving_nodes: SURVIVORS as u32,
    };
    let model_speedup = model.single_node_recovery_secs() / model.parallel_recovery_secs();

    // -- Experiment 3: follower-read routing ------------------------------
    // Seed a fully converged group (All: every put lands on every replica),
    // then run the identical read stream leader-only vs routed.
    let read_dir = base.join("follower-reads");
    let mut read_group = ReplicaGroup::bootstrap(
        1,
        &read_dir,
        &[1, 2, 3],
        GroupConfig::new(WriteConcern::All, DbConfig::default()),
    )
    .expect("bootstrap read group");
    for i in 0..sz.read_keys {
        read_group
            .put(
                format!("key-{i:06}").as_bytes(),
                &[9u8; VALUE_BYTES],
                None,
                0,
            )
            .expect("seed write");
    }
    let replica_dbs: Vec<Arc<Db>> = [1, 2, 3]
        .iter()
        .map(|&id| read_group.db(id).expect("replica db"))
        .collect();
    let leader_only = bench_reads(
        &replica_dbs[..1],
        READ_REPLICAS,
        sz.read_keys,
        sz.reads_per_thread,
    );
    let routed = bench_reads(
        &replica_dbs,
        READ_REPLICAS,
        sz.read_keys,
        sz.reads_per_thread,
    );
    drop(read_group);
    // Scaling curve (cost model): sustainable aggregate read throughput
    // before the hottest replica saturates its node's RU budget, at growing
    // replica counts — routed `Eventual` reads spread over the followers, so
    // the capacity grows where leader-only routing stays flat.
    let capacity_reads = sz.staleness_writes * 6;
    let leader_capacity = modeled_read_capacity(&base, 3, capacity_reads, true);
    let scaling: Vec<(u32, f64)> = [2u32, 3, 4]
        .iter()
        .map(|&n| (n, modeled_read_capacity(&base, n, capacity_reads, false)))
        .collect();
    let staleness = bench_staleness(&base, sz.staleness_writes);

    // -- JSON report ------------------------------------------------------
    println!("{{");
    println!("  \"writes\": {},", sz.writes);
    println!("  \"value_bytes\": {VALUE_BYTES},");
    println!("  \"write_concerns\": {{");
    for (i, c) in concerns.iter().enumerate() {
        let comma = if i + 1 < concerns.len() { "," } else { "" };
        println!(
            "    \"{}\": {{\"throughput_wps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"converged\": {}}}{comma}",
            c.name, c.throughput, c.p50_us, c.p99_us, c.acked_all
        );
    }
    println!("  }},");
    println!("  \"recovery\": {{");
    println!("    \"disk_bandwidth_bytes_per_sec\": {DISK_BW},");
    println!(
        "    \"bytes_per_replica\": {},",
        single.bytes_copied / SURVIVORS as u64
    );
    println!("    \"total_bytes\": {},", single.bytes_copied);
    println!(
        "    \"single_source_secs\": {:.3},",
        single.elapsed.as_secs_f64()
    );
    println!(
        "    \"parallel_secs\": {:.3},",
        parallel.elapsed.as_secs_f64()
    );
    println!("    \"parallel_sources\": {},", parallel.distinct_sources);
    println!("    \"measured_speedup\": {measured_speedup:.2},");
    println!("    \"model_speedup\": {model_speedup:.2},");
    println!(
        "    \"model_single_secs\": {:.3},",
        model.single_node_recovery_secs()
    );
    println!(
        "    \"model_parallel_secs\": {:.3}",
        model.parallel_recovery_secs()
    );
    println!("  }},");
    println!("  \"follower_reads\": {{");
    println!("    \"replicas\": {READ_REPLICAS},");
    println!(
        "    \"reads_per_mode\": {},",
        READ_REPLICAS * sz.reads_per_thread
    );
    println!(
        "    \"leader_only\": {{\"read_throughput_rps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}},",
        leader_only.throughput, leader_only.p50_us, leader_only.p99_us
    );
    println!(
        "    \"routed\": {{\"read_throughput_rps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}},",
        routed.throughput, routed.p50_us, routed.p99_us
    );
    println!("    \"model_leader_only_capacity_rps\": {leader_capacity:.1},");
    println!("    \"scaling_read_capacity_rps\": {{");
    for (i, (n, throughput)) in scaling.iter().enumerate() {
        let comma = if i + 1 < scaling.len() { "," } else { "" };
        println!("      \"{n}\": {throughput:.1}{comma}");
    }
    println!("    }},");
    println!(
        "    \"observed_staleness\": {{\"reads\": {}, \"mean_lag_records\": {:.2}, \
         \"max_lag_records\": {}, \"lag_after_converge\": {}}}",
        staleness.reads, staleness.mean_lag, staleness.max_lag, staleness.lag_after_converge
    );
    println!("  }}");
    println!("}}");
    std::fs::remove_dir_all(&base).ok();
}
