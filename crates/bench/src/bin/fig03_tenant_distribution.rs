//! Figure 3 — Distribution of tenants by RU, storage, and read ratio.
//!
//! "Each circle represents a tenant … tenants with higher RU tend to have
//! larger storage capacities, yet there are numerous cases exhibiting diverse
//! RU/storage characteristics. Tenants with a larger ratio of RU to storage
//! tend to indicate a read-heavy workload."

use abase_bench::{banner, fmt, pct, print_table};
use abase_workload::TenantPopulation;

fn main() {
    banner(
        "Figure 3",
        "tenant scatter over (RU, storage), colored by read ratio",
        "positive RU-storage correlation; lower-right (high RU/storage) is read-heavy",
    );
    let seed = 1;
    let population = TenantPopulation::generate(200, seed);
    println!("(seed {seed}, 200 tenants, normalized by median as in the paper)\n");

    // Correlation structure.
    let ru_storage = population.correlation(|t| t.ru.ln(), |t| t.storage.ln());
    let ratio_read = population.correlation(|t| (t.ru / t.storage).ln(), |t| t.read_ratio);
    println!(
        "corr(log RU, log storage)          = {}",
        fmt(ru_storage, 3)
    );
    println!(
        "corr(log RU/storage, read ratio)   = {}\n",
        fmt(ratio_read, 3)
    );

    // Read ratio by RU/storage quartile — the "lower right is darker" claim.
    let mut ratios: Vec<(f64, f64)> = population
        .tenants
        .iter()
        .map(|t| ((t.ru / t.storage).ln(), t.read_ratio))
        .collect();
    ratios.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let quartile = ratios.len() / 4;
    let mut rows = Vec::new();
    for q in 0..4 {
        let lo = q * quartile;
        let hi = if q == 3 {
            ratios.len()
        } else {
            (q + 1) * quartile
        };
        let slice = &ratios[lo..hi];
        let mean_read = slice.iter().map(|(_, r)| r).sum::<f64>() / slice.len() as f64;
        rows.push(vec![
            format!(
                "Q{} (RU/storage {})",
                q + 1,
                ["lowest", "low", "high", "highest"][q]
            ),
            pct(mean_read),
        ]);
    }
    print_table(&["RU/storage quartile", "mean read ratio"], &rows);

    // A sample of the scatter itself.
    println!("\nSample of the scatter (20 tenants):");
    let mut rows = Vec::new();
    for t in population.tenants.iter().take(20) {
        rows.push(vec![
            format!("tenant-{:03}", t.id),
            fmt(t.ru, 2),
            fmt(t.storage, 2),
            pct(t.read_ratio),
            pct(t.cache_hit_ratio),
        ]);
    }
    print_table(
        &[
            "tenant",
            "RU (norm)",
            "storage (norm)",
            "read ratio",
            "hit ratio",
        ],
        &rows,
    );
}
