//! Observability overhead bench: what does the metrics plane cost?
//!
//! Runs the same RESP workloads against two servers — one with the registry
//! recording (the default), one with the no-op registry
//! (`abase_obs::set_enabled(false)`) — and reports ops/s plus the relative
//! overhead. Each arm gets a fresh store and server so LSM state (flushes,
//! compactions) cannot bias whichever arm runs second.
//!
//! Workloads:
//!
//! * `write_heavy` — pipelined `SET`s with ~1 KB values (the WAL-append /
//!   span / per-command-counter path the issue bounds at ≤ 5 % overhead).
//! * `pipelined_read` — batched `GET`s over a prepopulated keyspace (the
//!   read span + RU-charging path; no replication wait).
//!
//! Writes `BENCH_obs.json` at the repo root. `ABASE_BENCH_SMOKE=1` shrinks
//! the op counts for CI smoke runs (the overhead numbers are then noisy and
//! only the JSON shape is asserted).

use abase_bench::banner;
use abase_core::{RespServer, TableEngine};
use abase_lavastore::DbConfig;
use abase_proto::RespValue;
use abase_util::TestDir;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

struct Arm {
    /// ops/s with the registry recording.
    enabled: f64,
    /// ops/s with the no-op registry.
    disabled: f64,
}

impl Arm {
    /// Relative cost of instrumentation: `(1 - enabled/disabled) · 100`.
    /// Negative values are measurement noise (enabled ran faster).
    fn overhead_pct(&self) -> f64 {
        (1.0 - self.enabled / self.disabled) * 100.0
    }
}

fn main() {
    let smoke = std::env::var("ABASE_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (writes, reads, trials) = if smoke {
        (500, 2_000, 1)
    } else {
        (20_000, 100_000, 5)
    };
    banner(
        "OBS",
        "Observability overhead: enabled vs no-op registry",
        "instrumentation is one relaxed atomic per event; write-path overhead <= 5%",
    );

    // Arms alternate within each trial and the best trial wins per arm:
    // peak throughput is the least noise-contaminated estimate of each
    // configuration's cost on a shared machine.
    let write_heavy = best_of(trials, |enabled| run_write_heavy(writes, enabled));
    let pipelined_read = best_of(trials, |enabled| run_pipelined_read(reads, enabled));
    abase_obs::set_enabled(true);

    println!(
        "write_heavy:    enabled {:>10.0} ops/s  disabled {:>10.0} ops/s  overhead {:+.2}%",
        write_heavy.enabled,
        write_heavy.disabled,
        write_heavy.overhead_pct()
    );
    println!(
        "pipelined_read: enabled {:>10.0} ops/s  disabled {:>10.0} ops/s  overhead {:+.2}%",
        pipelined_read.enabled,
        pipelined_read.disabled,
        pipelined_read.overhead_pct()
    );

    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"smoke\": {smoke},\n  \"workloads\": [\n    \
         {{\"name\": \"write_heavy\", \"ops\": {writes}, \"enabled_ops_per_sec\": {:.1}, \
         \"disabled_ops_per_sec\": {:.1}, \"overhead_pct\": {:.3}}},\n    \
         {{\"name\": \"pipelined_read\", \"ops\": {reads}, \"enabled_ops_per_sec\": {:.1}, \
         \"disabled_ops_per_sec\": {:.1}, \"overhead_pct\": {:.3}}}\n  ]\n}}\n",
        write_heavy.enabled,
        write_heavy.disabled,
        write_heavy.overhead_pct(),
        pipelined_read.enabled,
        pipelined_read.disabled,
        pipelined_read.overhead_pct(),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(out, &json).expect("write BENCH_obs.json");
    println!("wrote {out}");
}

/// Run `trials` interleaved enabled/disabled passes; keep each arm's best.
fn best_of(trials: usize, mut run: impl FnMut(bool) -> f64) -> Arm {
    let mut arm = Arm {
        enabled: 0.0,
        disabled: 0.0,
    };
    for _ in 0..trials {
        arm.enabled = arm.enabled.max(run(true));
        arm.disabled = arm.disabled.max(run(false));
    }
    arm
}

/// A fresh engine + RESP server; returns a connected client.
fn fresh_server(tag: &str) -> (TestDir, TcpStream) {
    let dir = TestDir::new(tag);
    let engine = Arc::new(TableEngine::open(dir.path(), DbConfig::default()).unwrap());
    let server = RespServer::bind(engine, "127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run());
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    (dir, stream)
}

fn set_frame(key: &str, value: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(value.len() + 64);
    f.extend_from_slice(b"*3\r\n$3\r\nSET\r\n");
    f.extend_from_slice(format!("${}\r\n{key}\r\n", key.len()).as_bytes());
    f.extend_from_slice(format!("${}\r\n", value.len()).as_bytes());
    f.extend_from_slice(value);
    f.extend_from_slice(b"\r\n");
    f
}

fn get_frame(key: &str) -> Vec<u8> {
    format!("*2\r\n$3\r\nGET\r\n${}\r\n{key}\r\n", key.len()).into_bytes()
}

/// Send `batch` frames in one write, then parse exactly `batch` replies.
fn roundtrip_batch(stream: &mut TcpStream, request: &[u8], batch: usize) {
    stream.write_all(request).unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 16384];
    let mut replies = 0;
    while replies < batch {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "server closed mid-bench");
        buf.extend_from_slice(&chunk[..n]);
        while let Some((value, used)) = RespValue::parse(&buf).unwrap() {
            assert!(
                !matches!(value, RespValue::Error(_)),
                "bench op failed: {value:?}"
            );
            buf.drain(..used);
            replies += 1;
        }
    }
}

/// Pipelined ~1 KB `SET`s in batches of 16; returns ops/s.
fn run_write_heavy(ops: usize, enabled: bool) -> f64 {
    abase_obs::set_enabled(enabled);
    let tag = format!("obs-bench-w-{enabled}");
    let (_dir, mut stream) = fresh_server(&tag);
    let value = vec![b'v'; 1024];
    const BATCH: usize = 16;
    // Warmup outside the timed window (connection, memtable, lazy metrics).
    roundtrip_batch(&mut stream, &set_frame("warmup", &value), 1);
    let started = Instant::now();
    let mut sent = 0usize;
    while sent < ops {
        let batch = BATCH.min(ops - sent);
        let mut request = Vec::with_capacity(batch * (value.len() + 64));
        for i in 0..batch {
            request.extend_from_slice(&set_frame(&format!("k{:08}", sent + i), &value));
        }
        roundtrip_batch(&mut stream, &request, batch);
        sent += batch;
    }
    ops as f64 / started.elapsed().as_secs_f64()
}

/// Pipelined `GET`s (batches of 100) over 1024 prepopulated keys; ops/s.
fn run_pipelined_read(ops: usize, enabled: bool) -> f64 {
    abase_obs::set_enabled(enabled);
    let tag = format!("obs-bench-r-{enabled}");
    let (_dir, mut stream) = fresh_server(&tag);
    let value = vec![b'v'; 256];
    const KEYS: usize = 1024;
    const BATCH: usize = 100;
    for i in 0..KEYS {
        roundtrip_batch(&mut stream, &set_frame(&format!("k{i:08}"), &value), 1);
    }
    let started = Instant::now();
    let mut sent = 0usize;
    while sent < ops {
        let batch = BATCH.min(ops - sent);
        let mut request = Vec::with_capacity(batch * 32);
        for i in 0..batch {
            request.extend_from_slice(&get_frame(&format!("k{:08}", (sent + i) % KEYS)));
        }
        roundtrip_batch(&mut stream, &request, batch);
        sent += batch;
    }
    ops as f64 / started.elapsed().as_secs_f64()
}
