//! Table 2 — Benefit summary by proxy cache.
//!
//! Six tenants (three social-media, three e-commerce). "After activating the
//! proxy cache and dividing the N proxies into groups, the cache hit ratio
//! increased (5 %→86 %, 5 %→67 %, 10 %→33 %, 24 %→60 % ×3), saving 38–85 % of
//! RU." The *before* state is the original random routing: every proxy sees
//! the whole keyspace, so a small per-proxy cache yields single-digit hit
//! ratios; grouping concentrates each key on `N/n` proxies.

use abase_bench::{banner, pct, print_table};
use abase_cache::aulru::AuLruConfig;
use abase_core::proxy::{ProxyDecision, ProxyPlane, ProxyPlaneConfig};
use abase_util::clock::secs;
use abase_workload::{KeyspaceConfig, RequestGen};

struct Case {
    name: &'static str,
    /// Paper's proxy fleet size (we scale by /25 to keep the sim light; the
    /// hit ratio depends on keys-per-proxy, which the scaling preserves).
    n_proxies: u32,
    n_groups: u32,
    paper_before: f64,
    paper_after: f64,
    paper_saving: f64,
    n_keys: usize,
    zipf: f64,
}

const CASES: &[Case] = &[
    // Group counts are the paper's (#Group column); keyspace size and skew
    // are calibrated so the *before* hit ratio lands at the paper's baseline.
    Case {
        name: "Social Media 1",
        n_proxies: 150,
        n_groups: 75,
        paper_before: 0.05,
        paper_after: 0.86,
        paper_saving: 0.85,
        n_keys: 189_000,
        zipf: 0.34,
    },
    Case {
        name: "Social Media 2",
        n_proxies: 64,
        n_groups: 32,
        paper_before: 0.05,
        paper_after: 0.67,
        paper_saving: 0.70,
        n_keys: 109_000,
        zipf: 0.25,
    },
    Case {
        name: "Social Media 3",
        n_proxies: 30,
        n_groups: 15,
        paper_before: 0.10,
        paper_after: 0.33,
        paper_saving: 0.38,
        n_keys: 380_000,
        zipf: 0.56,
    },
    Case {
        name: "E-Commerce 1",
        n_proxies: 30,
        n_groups: 15,
        paper_before: 0.24,
        paper_after: 0.60,
        paper_saving: 0.61,
        n_keys: 137_000,
        zipf: 0.66,
    },
    Case {
        name: "E-Commerce 2",
        n_proxies: 60,
        n_groups: 15,
        paper_before: 0.24,
        paper_after: 0.60,
        paper_saving: 0.57,
        n_keys: 137_000,
        zipf: 0.66,
    },
    Case {
        name: "E-Commerce 3",
        n_proxies: 168,
        n_groups: 15,
        paper_before: 0.24,
        paper_after: 0.60,
        paper_saving: 0.79,
        n_keys: 137_000,
        zipf: 0.66,
    },
];

/// Run one configuration and return (hit ratio, ru saved fraction).
fn run(case: &Case, n_groups: u32, seed: u64) -> (f64, f64) {
    let mut plane = ProxyPlane::new(
        1,
        ProxyPlaneConfig {
            n_proxies: case.n_proxies,
            n_groups,
            tenant_quota_ru: f64::INFINITY,
            cache: AuLruConfig {
                capacity_bytes: 2 << 20, // small per-proxy cache (paper: <10GB total)
                ttl: secs(3600),
                ..Default::default()
            },
            cache_enabled: true,
            quota_enabled: false,
        },
        0,
        seed,
    );
    let mut gen = RequestGen::new(
        KeyspaceConfig {
            n_keys: case.n_keys,
            zipf_s: case.zipf,
            read_ratio: 1.0,
            value_size: abase_workload::LogNormal::from_median_p90(1024.0, 1.2),
            ..Default::default()
        },
        seed,
    );
    let warmup = 600_000usize;
    let measured = 400_000usize;
    let mut hits = 0u64;
    let mut ru_without_cache = 0.0f64;
    let mut ru_with_cache = 0.0f64;
    for i in 0..warmup + measured {
        let in_measurement = i >= warmup;
        let spec = gen.next_request();
        let now = i as u64 * 1_000; // 1 ms apart
        let per_read_ru = spec.value_bytes as f64 / 2048.0;
        if in_measurement {
            ru_without_cache += per_read_ru;
        }
        match plane.submit(spec.key_rank as u64, false, now) {
            ProxyDecision::CacheHit { .. } => {
                if in_measurement {
                    hits += 1;
                }
            }
            ProxyDecision::Forward { proxy } => {
                if in_measurement {
                    ru_with_cache += per_read_ru;
                }
                plane.on_read_complete(proxy, spec.key_rank as u64, spec.value_bytes, false, now);
            }
            ProxyDecision::Rejected { .. } => unreachable!("quota disabled"),
        }
    }
    (
        hits as f64 / measured as f64,
        1.0 - ru_with_cache / ru_without_cache,
    )
}

fn main() {
    banner(
        "Table 2",
        "proxy cache benefit: hit ratio and RU saving per tenant",
        "hit 5%→86% … 24%→60%; RU savings 38%–85%",
    );
    println!("(proxy fleets scaled down vs production; keys-per-group ratios preserved)\n");
    let mut rows = Vec::new();
    for (i, case) in CASES.iter().enumerate() {
        // Before: random routing — one group spanning every proxy, so each
        // proxy sees the whole keyspace (the paper's 5–24 % baseline).
        let (before_hit, _) = run(case, 1, 1000 + i as u64);
        // After: the Table-2 grouping concentrates each key on N/n proxies.
        let (after_hit, saving) = run(case, case.n_groups, 2000 + i as u64);
        rows.push(vec![
            case.name.to_string(),
            format!("{}", case.n_proxies),
            format!("{}", case.n_groups),
            format!("{} -> {}", pct(before_hit), pct(after_hit)),
            format!("{} -> {}", pct(case.paper_before), pct(case.paper_after)),
            pct(saving),
            pct(case.paper_saving),
        ]);
    }
    print_table(
        &[
            "Tenant",
            "#Proxy",
            "#Group",
            "hit (measured)",
            "hit (paper)",
            "RU saved",
            "RU saved (paper)",
        ],
        &rows,
    );
    println!("\nMechanism check: grouping multiplies per-proxy keyspace locality by N/n;");
    println!("the before-state floor comes from each proxy seeing the full keyspace.");
}
