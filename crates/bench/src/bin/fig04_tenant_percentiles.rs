//! Figure 4 — Metric values across tenant percentiles.
//!
//! Paper reference points: latency-to-SLA max 66.0 % / p90 24.0 % / p50
//! 11.2 %; cache hit p99 100 % / p90 99.9 % / p50 93.5 %; read ratio p99
//! 99.9 % / p90 97.6 % / p50 39.3 %; KV size p99 308 KB / p90 50 KB / p50
//! 0.12 KB.
//!
//! The hit-ratio, read-ratio, and KV-size rows come from the calibrated
//! tenant population; the latency row derives each tenant's P99 latency from
//! the DataNode cost model (dispatch + miss I/O + transfer) and reports it
//! against a 10 ms SLA. The paper's latency/SLA ratios also depend on
//! per-tenant SLA tiers we have no data for, so the row reproduces the
//! *claim* (every tenant well under SLA, long tail spanning ~6×) rather than
//! the exact percentages.

use abase_bench::{banner, fmt, pct, print_table};
use abase_workload::TenantPopulation;

/// P99 latency from the DataNode cost model: 0.3 ms dispatch, 2 ms disk read
/// on a miss (P99 sees a miss once misses exceed 1 %), plus value transfer at
/// ~128 KB/ms.
fn p99_latency_ms(hit_ratio: f64, kv_bytes: f64) -> f64 {
    let base = 0.3;
    let io = 2.0;
    let transfer = kv_bytes / (128.0 * 1024.0);
    if hit_ratio >= 0.99 {
        base + transfer
    } else {
        base + io + transfer
    }
}

const SLA_MS: f64 = 16.0;

fn main() {
    banner(
        "Figure 4",
        "per-tenant distributions: latency-to-SLA, cache hit, read ratio, KV size",
        "lat/SLA max 66%, p90 24%, p50 11.2%; hit p50 93.5%; read p50 39.3%; KV p50 0.12KB p90 50KB p99 308KB",
    );
    let population = TenantPopulation::generate(2_000, 2);
    println!("(2000 tenants, seed 2, uniform SLA = {SLA_MS} ms)\n");

    let lat_ratio =
        |t: &abase_workload::Tenant| p99_latency_ms(t.cache_hit_ratio, t.kv_bytes) / SLA_MS;
    let rows = vec![
        vec![
            "latency / SLA".to_string(),
            pct(population.percentile(0.50, lat_ratio)),
            pct(population.percentile(0.90, lat_ratio)),
            pct(population.percentile(0.99, lat_ratio)),
            pct(population.percentile(1.0, lat_ratio)),
            "p50 11.2%, p90 24.0%, max 66.0%".to_string(),
        ],
        vec![
            "cache hit ratio".to_string(),
            pct(population.percentile(0.50, |t| t.cache_hit_ratio)),
            pct(population.percentile(0.90, |t| t.cache_hit_ratio)),
            pct(population.percentile(0.99, |t| t.cache_hit_ratio)),
            pct(population.percentile(1.0, |t| t.cache_hit_ratio)),
            "p50 93.5%, p90 99.9%, p99 100%".to_string(),
        ],
        vec![
            "read ratio".to_string(),
            pct(population.percentile(0.50, |t| t.read_ratio)),
            pct(population.percentile(0.90, |t| t.read_ratio)),
            pct(population.percentile(0.99, |t| t.read_ratio)),
            pct(population.percentile(1.0, |t| t.read_ratio)),
            "p50 39.3%, p90 97.6%, p99 99.9%".to_string(),
        ],
        vec![
            "KV size (KB)".to_string(),
            fmt(population.percentile(0.50, |t| t.kv_bytes) / 1024.0, 2),
            fmt(population.percentile(0.90, |t| t.kv_bytes) / 1024.0, 1),
            fmt(population.percentile(0.99, |t| t.kv_bytes) / 1024.0, 0),
            fmt(population.percentile(1.0, |t| t.kv_bytes) / 1024.0, 0),
            "p50 0.12KB, p90 50KB, p99 308KB".to_string(),
        ],
    ];
    print_table(
        &["metric", "p50", "p90", "p99", "max", "paper reference"],
        &rows,
    );

    // The headline claim: every tenant under SLA, with a long latency tail.
    let max_ratio = population.percentile(1.0, lat_ratio);
    let p50_ratio = population.percentile(0.50, lat_ratio);
    println!(
        "\nAll tenants below SLA: {} (worst at {} of SLA; p50/max spread {}x)",
        max_ratio < 1.0,
        pct(max_ratio),
        fmt(max_ratio / p50_ratio, 1)
    );
}
