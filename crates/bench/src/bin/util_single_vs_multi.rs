//! §6.4 — Resource utilization: single-tenant ABase-Pre vs multi-tenant ABase.
//!
//! "The average utilization rates of CPU, Memory, and Disk for each machine in
//! ABase-Pre were only 17 %, 52 %, and 27 %. After upgrading to ABase, these
//! rates increased to 44 %, 63 %, and 46 %."

use abase_bench::{banner, pct, print_table};
use abase_core::meta::RecoveryModel;
use abase_core::placement::{multi_tenant_utilization, single_tenant_utilization, MachineSpec};
use abase_workload::TenantPopulation;

fn main() {
    banner(
        "§6.4",
        "per-machine utilization: dedicated vs pooled deployment",
        "CPU 17%→44%, Memory 52%→63%, Disk 27%→46%",
    );
    let population = TenantPopulation::generate(400, 64);
    let machine = MachineSpec::default();
    let single = single_tenant_utilization(&population, machine);
    let multi = multi_tenant_utilization(&population, machine, 0.2, 1.7);
    let rows = vec![
        vec![
            "CPU".into(),
            pct(single.cpu),
            pct(multi.cpu),
            "17% -> 44%".into(),
        ],
        vec![
            "Memory".into(),
            pct(single.memory),
            pct(multi.memory),
            "52% -> 63%".into(),
        ],
        vec![
            "Disk".into(),
            pct(single.disk),
            pct(multi.disk),
            "27% -> 46%".into(),
        ],
        vec![
            "machines".into(),
            format!("{}", single.machines),
            format!("{}", multi.machines),
            "-".into(),
        ],
    ];
    print_table(
        &[
            "resource",
            "ABase-Pre (dedicated)",
            "ABase (pooled)",
            "paper",
        ],
        &rows,
    );
    println!("\n§3.3 robustness bounds that drive the gap:");
    println!(
        "  single-tenant 3-replica utilization cap: {}",
        pct(RecoveryModel::single_tenant_max_utilization())
    );
    println!(
        "  multi-tenant N-node cap at N=20: {} (load spreads 1/N on failure)",
        pct(RecoveryModel::multi_tenant_max_utilization(20))
    );
    let model = RecoveryModel {
        failed_node_bytes: 2e12,
        per_node_bandwidth: 200e6,
        surviving_nodes: 20,
    };
    println!(
        "  recovery of a 2 TB node: single replacement {}s vs parallel {}s",
        model.single_node_recovery_secs(),
        model.parallel_recovery_secs()
    );
}
