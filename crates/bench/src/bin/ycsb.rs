//! YCSB-style macro benchmark: the six core workloads (A–F) against an
//! in-process `RespServer`, run twice — block cache **on** vs **off** — to
//! put a number on the read-path win from the sharded SA-LRU block cache.
//!
//! Workload mixes (key popularity is zipfian, s = 0.99, YCSB's default):
//!
//! | workload | mix                                                    |
//! |----------|--------------------------------------------------------|
//! | A        | 50% GET / 50% SET (update heavy)                       |
//! | B        | 95% GET / 5% SET (read mostly)                         |
//! | C        | 100% GET (read only)                                   |
//! | D        | 95% GET over a *latest* distribution / 5% insert       |
//! | E        | 95% HGETALL over hash bins (short scans) / 5% HSET     |
//! | F        | 50% GET / 50% GET+SET of the same key (read-mod-write) |
//!
//! Both arms share one storage layout (same load, flush, and compaction
//! schedule); the only difference is `DbConfig::block_cache_bytes`.
//!
//! Methodology notes, in the interest of measuring the *engine's* read path
//! rather than the harness:
//!
//! - Clients are pipelined (depth-64 flights over `threads` connections) and
//!   every flight's wire bytes are **pre-generated before the clock starts**,
//!   so the timed loop is write/drain only. Latency percentiles are per
//!   flight round trip, not per command.
//! - Reply draining uses a zero-allocation RESP frame scanner (it counts and
//!   validates frames without materializing values), so client-side parsing
//!   does not dilute the server-side difference on small machines.
//! - Workload D's "latest" reads sample backwards from the insert high-water
//!   mark as of generation time, and D flushes the memtable every
//!   `flush_every` inserts, so recency reads exercise the block layer the
//!   way a continuously-flushing production engine would.
//! - The memtable is flushed after each warm pass, so measured reads hit
//!   SSTs (cache or disk), not the write buffer.
//!
//! Writes `BENCH_ycsb.json` at the repo root. `ABASE_BENCH_SMOKE=1` shrinks
//! the dataset and op counts for CI smoke runs — numbers are then noisy and
//! only the JSON shape (six workloads x two arms, a warm workload-C hit
//! rate) is asserted.

use abase_bench::banner;
use abase_core::{RespServer, TableEngine};
use abase_lavastore::{Db, DbConfig};
use abase_util::TestDir;
use abase_workload::dist::Zipf;
use rand::{Rng, SeedableRng, StdRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const WORKLOADS: [(char, &str); 6] = [
    ('A', "50% read / 50% update"),
    ('B', "95% read / 5% update"),
    ('C', "100% read"),
    ('D', "95% read-latest / 5% insert"),
    ('E', "95% scan (HGETALL bin) / 5% insert (HSET)"),
    ('F', "50% read / 50% read-modify-write"),
];
const ZIPF_S: f64 = 0.99;
const FIELDS_PER_BIN: u64 = 10;

/// Everything that scales between the full run and the CI smoke run.
struct Sizes {
    records: usize,
    ops: usize,
    value_bytes: usize,
    threads: usize,
    depth: usize,
    bins: usize,
    cache_bytes: usize,
    block_bytes: usize,
    memtable_bytes: usize,
    flush_every: u64,
}

impl Sizes {
    fn new(smoke: bool) -> Self {
        if smoke {
            Self {
                records: 2_000,
                ops: 1_000,
                value_bytes: 64,
                threads: 2,
                depth: 16,
                bins: 50,
                cache_bytes: 8 << 20,
                block_bytes: 8 << 10,
                memtable_bytes: 64 << 10,
                flush_every: 16,
            }
        } else {
            Self {
                records: 50_000,
                // YCSB-standard small records; the data-block size is the
                // read-path unit of work, so blocks are sized like an
                // analytics-leaning store (64 KiB) and records stay small.
                ops: 40_000,
                value_bytes: 100,
                threads: 2,
                depth: 64,
                bins: 500,
                cache_bytes: 64 << 20,
                block_bytes: 64 << 10,
                memtable_bytes: 8 << 20,
                flush_every: 512,
            }
        }
    }
}

/// State shared by every client thread of one arm: the key-popularity
/// scramble, the samplers, and the insert high-water marks.
struct Shared {
    /// Maps zipf rank -> key id, so the hot set is scattered across the
    /// keyspace (YCSB hashes ranks for the same reason).
    perm: Vec<u32>,
    zipf: Zipf,
    zipf_bins: Zipf,
    /// Next key id for workload-D inserts; doubles as the recency
    /// high-water mark for its "latest" reads.
    next_insert: AtomicU64,
    /// Next field id for workload-E inserts.
    next_field: AtomicU64,
    /// Workload-D inserts since start, for the flush cadence.
    insert_count: AtomicU64,
    flush_every: u64,
}

/// One pre-generated pipelined flight: raw wire bytes, the reply-frame count
/// to drain, and whether a memtable flush follows (workload D's cadence).
struct Flight {
    bytes: Vec<u8>,
    expect: usize,
    flush_after: bool,
}

struct ArmRun {
    ops_per_sec: f64,
    p50_micros: u64,
    p99_micros: u64,
    cache_hits: u64,
    cache_misses: u64,
    hit_rate: f64,
    disk_block_reads: u64,
}

fn main() {
    let smoke = std::env::var("ABASE_BENCH_SMOKE").is_ok_and(|v| v == "1");
    banner(
        "YCSB",
        "YCSB A-F against the RESP server: block cache on vs off",
        "paper 4.4: SA-LRU block caching carries the read path; warm B/C/D should clear 2x",
    );
    let sizes = Sizes::new(smoke);
    println!(
        "records={} value={}B ops/workload={} threads={} depth={} cache={}MiB block={}KiB",
        sizes.records,
        sizes.value_bytes,
        sizes.ops,
        sizes.threads,
        sizes.depth,
        sizes.cache_bytes >> 20,
        sizes.block_bytes >> 10
    );

    let off = run_arm("cache_off", 0, &sizes);
    let on = run_arm("cache_on", sizes.cache_bytes, &sizes);

    let mut rows = Vec::new();
    for (i, &(w, mix)) in WORKLOADS.iter().enumerate() {
        let speedup = on[i].ops_per_sec / off[i].ops_per_sec;
        println!(
            "{w}: off {:>9.0} ops/s  on {:>9.0} ops/s  ({speedup:.2}x)  hit rate {:.1}%",
            off[i].ops_per_sec,
            on[i].ops_per_sec,
            on[i].hit_rate * 100.0
        );
        rows.push(format!(
            "    {{\"workload\": \"{w}\", \"mix\": \"{mix}\", \"speedup\": {speedup:.3}, \
             \"arms\": [\n{},\n{}\n    ]}}",
            arm_json("cache_off", &off[i]),
            arm_json("cache_on", &on[i])
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"ycsb\",\n  \"smoke\": {smoke},\n  \"records\": {},\n  \
         \"value_bytes\": {},\n  \"ops_per_workload\": {},\n  \"threads\": {},\n  \
         \"pipeline_depth\": {},\n  \"block_bytes\": {},\n  \"zipf_s\": {ZIPF_S},\n  \
         \"workloads\": [\n{}\n  ]\n}}\n",
        sizes.records,
        sizes.value_bytes,
        sizes.ops,
        sizes.threads,
        sizes.depth,
        sizes.block_bytes,
        rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ycsb.json");
    std::fs::write(out, &json).expect("write BENCH_ycsb.json");
    println!("wrote {out}");
}

fn arm_json(arm: &str, r: &ArmRun) -> String {
    format!(
        "      {{\"arm\": \"{arm}\", \"ops_per_sec\": {:.1}, \"p50_micros\": {}, \
         \"p99_micros\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
         \"hit_rate\": {:.4}, \"disk_block_reads\": {}}}",
        r.ops_per_sec,
        r.p50_micros,
        r.p99_micros,
        r.cache_hits,
        r.cache_misses,
        r.hit_rate,
        r.disk_block_reads
    )
}

/// One arm: fresh store, identical load + flush + compaction, then a warmed,
/// timed pass of every workload in order.
fn run_arm(arm: &'static str, cache_bytes: usize, sizes: &Sizes) -> Vec<ArmRun> {
    let dir = TestDir::new(&format!("ycsb-{arm}"));
    let config = DbConfig {
        block_bytes: sizes.block_bytes,
        memtable_bytes: sizes.memtable_bytes,
        block_cache_bytes: cache_bytes,
        ..DbConfig::default()
    };
    let engine = Arc::new(TableEngine::open(dir.path(), config).unwrap());
    let db = engine.db();
    let server = RespServer::bind(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.shutdown_handle();
    let runner = std::thread::spawn(move || server.run());

    load(addr, sizes);
    // Settle the load into sorted, immutable SSTs so every workload starts
    // from the same on-disk layout and reads actually reach the block layer.
    db.flush().unwrap();
    db.compact_to_quiescence(0).unwrap();

    let shared = Arc::new(Shared {
        perm: scramble(sizes.records),
        zipf: Zipf::new(sizes.records, ZIPF_S),
        zipf_bins: Zipf::new(sizes.bins, ZIPF_S),
        next_insert: AtomicU64::new(sizes.records as u64),
        next_field: AtomicU64::new(FIELDS_PER_BIN),
        insert_count: AtomicU64::new(0),
        flush_every: sizes.flush_every,
    });

    let mut results = Vec::new();
    for (i, &(w, _)) in WORKLOADS.iter().enumerate() {
        let seed = 0xABA5_E000 + i as u64;
        // Warm pass: fills the block cache (and the OS page cache, for the
        // off arm — both arms measure warm steady state). Discarded.
        drive(addr, &db, w, sizes, &shared, sizes.ops / 4, seed ^ 0x5EED);
        // Empty the write buffer so measured reads are served by SSTs
        // (through the cache, when there is one), not the memtable.
        db.flush().unwrap();
        let (cache_before, disk_before) = counters(&db);
        let (ops_per_sec, mut lat) = drive(addr, &db, w, sizes, &shared, sizes.ops, seed);
        let (cache_after, disk_after) = counters(&db);
        lat.sort_unstable();
        let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
        let (hits, misses) = (
            cache_after.0 - cache_before.0,
            cache_after.1 - cache_before.1,
        );
        results.push(ArmRun {
            ops_per_sec,
            p50_micros: pct(0.50),
            p99_micros: pct(0.99),
            cache_hits: hits,
            cache_misses: misses,
            hit_rate: hits as f64 / (hits + misses).max(1) as f64,
            disk_block_reads: disk_after - disk_before,
        });
    }
    handle.shutdown();
    let _ = runner.join();
    assert_eq!(results.len(), WORKLOADS.len());
    results
}

/// ((cache hits, cache misses), disk block reads) — cumulative counters.
fn counters(db: &Db) -> ((u64, u64), u64) {
    let cache = db
        .block_cache()
        .map(|c| {
            let s = c.stats();
            (s.hits, s.misses)
        })
        .unwrap_or((0, 0));
    (cache, db.stats().block_reads)
}

/// A seeded Fisher-Yates permutation of `0..n`: rank -> key id.
fn scramble(n: usize) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(0x5CAB_B1E5);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.gen_range(0..i + 1));
    }
    perm
}

/// Run `ops` operations of workload `w` across `sizes.threads` pipelined
/// connections. Flights are generated before the clock starts; the timed
/// loop is pure write/drain. Returns (ops/s, per-flight latencies, micros).
fn drive(
    addr: SocketAddr,
    db: &Arc<Db>,
    w: char,
    sizes: &Sizes,
    shared: &Arc<Shared>,
    ops: usize,
    seed: u64,
) -> (f64, Vec<u64>) {
    // Generation pass (untimed): every thread's flights, wire-ready.
    let plans: Vec<Vec<Flight>> = (0..sizes.threads)
        .map(|t| {
            let per = ops / sizes.threads + usize::from(t < ops % sizes.threads);
            let mut rng = StdRng::seed_from_u64(seed ^ ((t as u64 + 1) << 40));
            gen_flights(w, sizes, shared, per, &mut rng)
        })
        .collect();

    let started = Instant::now();
    let latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .into_iter()
            .map(|flights| {
                let db = Arc::clone(db);
                scope.spawn(move || {
                    let mut conn = client(addr);
                    let mut lat = Vec::with_capacity(flights.len());
                    let mut reply = Vec::new();
                    for flight in &flights {
                        let t0 = Instant::now();
                        conn.write_all(&flight.bytes).unwrap();
                        drain(&mut conn, flight.expect, &mut reply);
                        lat.push(t0.elapsed().as_micros() as u64);
                        if flight.flush_after {
                            db.flush().unwrap();
                        }
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    (ops as f64 / started.elapsed().as_secs_f64(), latencies)
}

/// Generate `per` ops of workload `w` as depth-`sizes.depth` flights.
fn gen_flights(
    w: char,
    sizes: &Sizes,
    shared: &Shared,
    per: usize,
    rng: &mut StdRng,
) -> Vec<Flight> {
    // D's "latest" reads sample backwards from the high-water mark as of
    // generation time — everything below it is durably applied before the
    // timed pass starts, so recency reads never chase in-flight inserts.
    let latest_floor = shared.next_insert.load(Ordering::Relaxed);
    let mut flights = Vec::with_capacity(per / sizes.depth + 1);
    let mut done = 0;
    while done < per {
        let n = sizes.depth.min(per - done);
        let mut flight = Flight {
            bytes: Vec::new(),
            expect: 0,
            flush_after: false,
        };
        for _ in 0..n {
            append_op(&mut flight, w, rng, shared, sizes, latest_floor);
        }
        flights.push(flight);
        done += n;
    }
    flights
}

/// Append one workload op's command(s) to the flight.
fn append_op(
    flight: &mut Flight,
    w: char,
    rng: &mut StdRng,
    shared: &Shared,
    sizes: &Sizes,
    latest_floor: u64,
) {
    let out = &mut flight.bytes;
    flight.expect += match w {
        'A' | 'B' | 'C' | 'F' => {
            let id = u64::from(shared.perm[shared.zipf.sample(rng)]);
            let key = user_key(id);
            if w == 'F' && rng.gen_bool(0.5) {
                // Read-modify-write: GET, then SET the mutated value back.
                encode_into(out, &["GET", &key]);
                encode_into(out, &["SET", &key, &value_for(id + 1, sizes.value_bytes)]);
                2
            } else {
                let read_frac = match w {
                    'A' => 0.5,
                    'B' => 0.95,
                    _ => 1.0,
                };
                if rng.gen_bool(read_frac) {
                    encode_into(out, &["GET", &key]);
                } else {
                    encode_into(out, &["SET", &key, &value_for(id, sizes.value_bytes)]);
                }
                1
            }
        }
        'D' => {
            if rng.gen_bool(0.05) {
                let id = shared.next_insert.fetch_add(1, Ordering::Relaxed);
                encode_into(
                    out,
                    &["SET", &user_key(id), &value_for(id, sizes.value_bytes)],
                );
                // Keep "latest" keys on disk: flush on a fixed insert cadence
                // so reads exercise the block layer, not the memtable.
                let inserted = shared.insert_count.fetch_add(1, Ordering::Relaxed) + 1;
                if inserted.is_multiple_of(shared.flush_every) {
                    flight.flush_after = true;
                }
            } else {
                let back = (shared.zipf.sample(rng) as u64).min(latest_floor - 1);
                encode_into(out, &["GET", &user_key(latest_floor - 1 - back)]);
            }
            1
        }
        'E' => {
            let bin = bin_key(shared.zipf_bins.sample(rng) as u64);
            if rng.gen_bool(0.05) {
                let f = shared.next_field.fetch_add(1, Ordering::Relaxed);
                encode_into(
                    out,
                    &[
                        "HSET",
                        &bin,
                        &format!("f{f}"),
                        &value_for(f, sizes.value_bytes),
                    ],
                );
            } else {
                encode_into(out, &["HGETALL", &bin]);
            }
            1
        }
        other => unreachable!("unknown workload {other}"),
    };
}

/// Load phase: `records` string keys plus `bins` hash bins of
/// `FIELDS_PER_BIN` fields each, pipelined over one connection.
fn load(addr: SocketAddr, sizes: &Sizes) {
    let mut conn = client(addr);
    let mut reply = Vec::new();
    let mut buf = Vec::new();
    let mut pending = 0;
    let mut push = |conn: &mut TcpStream, buf: &mut Vec<u8>, pending: &mut usize, flush: bool| {
        if *pending >= 256 || (flush && *pending > 0) {
            conn.write_all(buf).unwrap();
            drain(conn, *pending, &mut reply);
            buf.clear();
            *pending = 0;
        }
    };
    for id in 0..sizes.records as u64 {
        encode_into(
            &mut buf,
            &["SET", &user_key(id), &value_for(id, sizes.value_bytes)],
        );
        pending += 1;
        push(&mut conn, &mut buf, &mut pending, false);
    }
    for bin in 0..sizes.bins as u64 {
        for f in 0..FIELDS_PER_BIN {
            encode_into(
                &mut buf,
                &[
                    "HSET",
                    &bin_key(bin),
                    &format!("f{f}"),
                    &value_for(f, sizes.value_bytes),
                ],
            );
            pending += 1;
            push(&mut conn, &mut buf, &mut pending, false);
        }
    }
    push(&mut conn, &mut buf, &mut pending, true);
}

fn user_key(id: u64) -> String {
    format!("user{id:08}")
}

fn bin_key(bin: u64) -> String {
    format!("bin{bin:06}")
}

/// A deterministic value: the key id in hex, padded to `len` bytes.
fn value_for(id: u64, len: usize) -> String {
    let mut v = format!("{id:016x}");
    while v.len() < len {
        v.push('x');
    }
    v.truncate(len);
    v
}

fn client(addr: SocketAddr) -> TcpStream {
    let conn = TcpStream::connect(addr).expect("connect to bench server");
    conn.set_nodelay(true).unwrap();
    conn
}

fn encode_into(out: &mut Vec<u8>, parts: &[&str]) {
    out.extend_from_slice(format!("*{}\r\n", parts.len()).as_bytes());
    for p in parts {
        out.extend_from_slice(format!("${}\r\n{p}\r\n", p.len()).as_bytes());
    }
}

/// Read until `expect` complete reply frames have arrived. Frames are
/// *scanned*, not parsed into values — the client must not spend its one
/// core allocating `RespValue`s while the server is the thing under test.
/// Panics on any RESP error frame (a failure must not be measured as work).
fn drain(conn: &mut TcpStream, expect: usize, buf: &mut Vec<u8>) {
    buf.clear();
    let mut off = 0;
    let mut got = 0;
    let mut chunk = [0u8; 64 * 1024];
    while got < expect {
        let k = conn.read(&mut chunk).unwrap();
        assert!(k > 0, "server closed with {} frames pending", expect - got);
        buf.extend_from_slice(&chunk[..k]);
        while got < expect {
            match skip_frame(&buf[off..]) {
                Some(n) => {
                    off += n;
                    got += 1;
                }
                None => break,
            }
        }
    }
    assert_eq!(off, buf.len(), "more reply bytes than commands in flight");
}

/// Length of the complete RESP frame at the head of `buf`, or `None` if the
/// frame is still partial. Panics on error frames and malformed input.
fn skip_frame(buf: &[u8]) -> Option<usize> {
    let head = find_crlf(buf)?;
    match buf.first()? {
        b'+' | b':' => Some(head + 2),
        b'-' => panic!(
            "server error reply: {}",
            String::from_utf8_lossy(&buf[1..head])
        ),
        b'$' => {
            let n = ascii_int(&buf[1..head]);
            if n < 0 {
                Some(head + 2)
            } else {
                let total = head + 2 + n as usize + 2;
                (buf.len() >= total).then_some(total)
            }
        }
        b'*' => {
            let n = ascii_int(&buf[1..head]);
            let mut off = head + 2;
            for _ in 0..n.max(0) {
                off += skip_frame(&buf[off..])?;
            }
            Some(off)
        }
        other => panic!("unexpected RESP frame byte {other:#x}"),
    }
}

/// Position of the first `\r\n` in `buf`, or `None`.
fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

fn ascii_int(digits: &[u8]) -> i64 {
    let mut v: i64 = 0;
    let mut neg = false;
    for &d in digits {
        match d {
            b'-' => neg = true,
            b'0'..=b'9' => v = v * 10 + i64::from(d - b'0'),
            other => panic!("bad digit {other:#x} in RESP length"),
        }
    }
    if neg {
        -v
    } else {
        v
    }
}
