//! Table 1 — Diverse application scenarios and workload characteristics.
//!
//! Prints the seven business profiles and validates each empirically: a
//! request stream generated from the profile is measured for read mix and
//! mean KV size, and replayed through a node-sized SA-LRU cache to confirm
//! the hit-ratio ordering the paper reports.

use abase_bench::{banner, fmt, pct, print_table};
use abase_cache::SaLruCache;
use abase_workload::{KeyspaceConfig, LogNormal, RequestGen, TABLE1_PROFILES};

fn main() {
    banner(
        "Table 1",
        "workload diversity across ByteDance business lines",
        "throughput:storage from 25:678 to 1500:63; hit ratios 0%..99%; KV 0.1KB..5MB",
    );
    let mut rows = Vec::new();
    for (i, p) in TABLE1_PROFILES.iter().enumerate() {
        // Build a keyed stream matching the profile. The hit ratio is induced
        // by cache-to-working-set sizing: high-hit profiles have small hot
        // sets relative to cache, the 0%-hit LLM profile bypasses caching.
        let n_keys = 40_000;
        let mut gen = RequestGen::new(
            KeyspaceConfig {
                n_keys,
                zipf_s: 0.99,
                read_ratio: p.read_ratio,
                value_size: LogNormal::from_median_p90(p.mean_kv_bytes as f64, 3.0),
                key_prefix: format!("t{i}"),
            },
            42 + i as u64,
        );
        let requests = gen.take(60_000);
        let measured_read =
            requests.iter().filter(|r| !r.is_write).count() as f64 / requests.len() as f64;
        let measured_kv =
            requests.iter().map(|r| r.value_bytes as f64).sum::<f64>() / requests.len() as f64;
        // Cache sized so the configured hit ratio is attainable: capacity
        // covers `hit_ratio` of the hot working set.
        let working_set = n_keys as f64 * p.mean_kv_bytes as f64;
        let capacity = if p.cache_hit_ratio == 0.0 {
            1 // LLM KV-cache: bypass (paper: "LLM's cache ratio is 0")
        } else {
            (working_set * p.cache_hit_ratio * 0.6) as usize
        };
        let mut cache: SaLruCache<usize, ()> = SaLruCache::new(capacity.max(1));
        let mut hits = 0u64;
        let mut reads = 0u64;
        for r in &requests {
            if r.is_write {
                cache.insert(r.key_rank, (), r.value_bytes);
            } else {
                reads += 1;
                if cache.get(&r.key_rank).is_some() {
                    hits += 1;
                } else {
                    cache.insert(r.key_rank, (), r.value_bytes);
                }
            }
        }
        let measured_hit = if reads == 0 {
            0.0
        } else {
            hits as f64 / reads as f64
        };
        rows.push(vec![
            p.business_line.to_string(),
            p.workload.to_string(),
            fmt(p.norm_throughput, 0),
            fmt(p.norm_storage, 0),
            pct(p.cache_hit_ratio),
            pct(measured_hit),
            pct(p.read_ratio),
            pct(measured_read),
            format!("{:.1}KB", p.mean_kv_bytes as f64 / 1024.0),
            format!("{:.1}KB", measured_kv / 1024.0),
            match p.common_ttl {
                None => "-".to_string(),
                Some(ttl) => format!("{}h", ttl / 3_600_000_000),
            },
        ]);
    }
    print_table(
        &[
            "Business line",
            "Workload",
            "Thpt",
            "Stor",
            "Hit(paper)",
            "Hit(meas)",
            "Read(paper)",
            "Read(meas)",
            "KV(paper)",
            "KV(meas)",
            "TTL",
        ],
        &rows,
    );
    println!();
    println!("Shape checks:");
    let dm = &TABLE1_PROFILES[1];
    let search = &TABLE1_PROFILES[3];
    println!(
        "  - storage-heavy DM ratio {:.3} vs throughput-heavy Search ratio {:.1}",
        dm.throughput_storage_ratio(),
        search.throughput_storage_ratio()
    );
    println!(
        "  - LLM profile: {} normalized throughput, {} normalized storage, cache bypassed",
        TABLE1_PROFILES[6].norm_throughput, TABLE1_PROFILES[6].norm_storage
    );
}
