//! # abase-bench
//!
//! The benchmark harness: one binary per table/figure of the paper's
//! evaluation (§6) plus ablation studies, and criterion micro-benchmarks.
//!
//! Run a figure regenerator with e.g.
//! `cargo run --release -p abase-bench --bin fig06_proxy_quota`, or all
//! criterion micro-benches with `cargo bench -p abase-bench`.
//!
//! Every binary prints the paper's reference numbers next to the measured
//! ones; EXPERIMENTS.md records a captured run.

#![deny(missing_docs)]

/// Print a fixed-width ASCII table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |ch: char| {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&ch.to_string().repeat(w + 2));
            s.push('+');
        }
        s
    };
    println!("{}", line('-'));
    let mut head = String::from("|");
    for (h, w) in headers.iter().zip(&widths) {
        head.push_str(&format!(" {h:<w$} |"));
    }
    println!("{head}");
    println!("{}", line('='));
    for row in rows {
        let mut out = String::from("|");
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:<w$} |"));
        }
        println!("{out}");
    }
    println!("{}", line('-'));
}

/// Render a compact unicode sparkline for a series (for time-series figures).
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

/// Format a float with `digits` decimals.
pub fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Format a ratio as a percentage string.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Standard experiment banner.
pub fn banner(id: &str, title: &str, paper_claim: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("paper: {paper_claim}");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_maps_extremes() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s.chars().count(), 2);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().last(), Some('█'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(pct(0.935), "93.5%");
    }

    #[test]
    fn table_prints_without_panic() {
        print_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["33".into(), "4".into()]],
        );
    }
}
