//! Criterion micro-benchmarks for ABase's hot paths.
//!
//! Run with `cargo bench -p abase-bench`. These cover the per-request-cost
//! components (cache ops, WFQ scheduling, quota checks, RESP parsing, RU
//! math) and the heavier periodic jobs (storage engine ops, forecasting fit,
//! rescheduling rounds).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use abase_cache::aulru::{AuLruCache, AuLruConfig};
use abase_cache::{LruCache, SaLruCache};
use abase_forecast::prophet::{ProphetConfig, ProphetModel};
use abase_forecast::psd::dominant_period;
use abase_lavastore::{Db, DbConfig};
use abase_proto::{Command, RespValue};
use abase_quota::{RuEstimator, TokenBucket};
use abase_scheduler::{LoadVector, NodeState, PoolState, ReplicaLoad, Rescheduler};
use abase_wfq::{CpuTickBudget, DualWfq, DualWfqConfig, WfqItem};
use abase_workload::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_caches(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.bench_function("lru_insert_get", |b| {
        let mut cache: LruCache<u64, u64> = LruCache::new(1 << 20);
        let mut i = 0u64;
        b.iter(|| {
            cache.insert(i % 10_000, i, 64);
            black_box(cache.get(&((i * 7) % 10_000)));
            i += 1;
        });
    });
    group.bench_function("salru_insert_get", |b| {
        let mut cache: SaLruCache<u64, u64> = SaLruCache::new(1 << 20);
        let mut i = 0u64;
        b.iter(|| {
            cache.insert(i % 10_000, i, 64 + (i % 5_000) as usize);
            black_box(cache.get(&((i * 7) % 10_000)));
            i += 1;
        });
    });
    group.bench_function("aulru_get_hit", |b| {
        let mut cache: AuLruCache<u64, u64> = AuLruCache::new(AuLruConfig::default());
        for k in 0..1_000u64 {
            cache.insert(k, k, 64, 0);
        }
        let mut i = 0u64;
        b.iter(|| {
            black_box(cache.get(&(i % 1_000), 1_000));
            i += 1;
        });
    });
    group.finish();
}

fn bench_wfq(c: &mut Criterion) {
    let mut group = c.benchmark_group("wfq");
    group.bench_function("push_pop_cycle", |b| {
        let mut q: DualWfq<u64> = DualWfq::new(DualWfqConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            q.push_cpu(WfqItem {
                tenant: (i % 8) as u32,
                cost: 1.0,
                weight: 0.125,
                payload: i,
            });
            if i % 16 == 15 {
                black_box(q.drain_cpu(CpuTickBudget { ru: 16.0 }, false));
            }
            i += 1;
        });
    });
    group.finish();
}

fn bench_quota(c: &mut Criterion) {
    let mut group = c.benchmark_group("quota");
    group.bench_function("token_bucket_admit", |b| {
        let mut bucket = TokenBucket::new(1e9, 1e9, 0);
        let mut now = 0u64;
        b.iter(|| {
            now += 10;
            black_box(bucket.try_consume(now, 1.0));
        });
    });
    group.bench_function("ru_estimate_and_record", |b| {
        let mut est = RuEstimator::default();
        let mut i = 0usize;
        b.iter(|| {
            est.record_read(1024 + i % 2048, abase_quota::ru::ReadOutcome::Miss);
            black_box(est.estimate_read_ru());
            i += 1;
        });
    });
    group.finish();
}

fn bench_resp(c: &mut Criterion) {
    let mut group = c.benchmark_group("resp");
    let wire = Command::Set {
        key: "user:12345".into(),
        value: bytes::Bytes::from(vec![7u8; 512]),
        ttl_secs: Some(60),
    }
    .to_resp()
    .to_bytes();
    group.bench_function("parse_set_command", |b| {
        b.iter(|| {
            let (value, _) = RespValue::parse(black_box(&wire)).unwrap().unwrap();
            black_box(Command::from_resp(&value).unwrap());
        });
    });
    group.finish();
}

fn bench_lavastore(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("abase-bench-db-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let db = Db::open(&dir, DbConfig::default()).unwrap();
    for i in 0..10_000u64 {
        let key = format!("key-{i:08}");
        db.put(key.as_bytes(), &[0u8; 256], None, 0).unwrap();
    }
    db.flush().unwrap();
    db.compact_to_quiescence(0).unwrap();
    let mut group = c.benchmark_group("lavastore");
    group.bench_function("point_get_sst", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("key-{:08}", (i * 37) % 10_000);
            black_box(db.get(key.as_bytes(), 0).unwrap());
            i += 1;
        });
    });
    group.bench_function("put_memtable", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("put-{:08}", i % 4_096);
            db.put(key.as_bytes(), &[1u8; 256], None, 0).unwrap();
            i += 1;
        });
    });
    group.finish();
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_forecast(c: &mut Criterion) {
    let values: Vec<f64> = (0..720)
        .map(|t| 100.0 + 0.1 * t as f64 + 30.0 * (t as f64 * std::f64::consts::TAU / 24.0).sin())
        .collect();
    let mut group = c.benchmark_group("forecast");
    group.sample_size(20);
    group.bench_function("psd_dominant_period_720", |b| {
        b.iter(|| black_box(dominant_period(&values, 20.0)));
    });
    group.bench_function("prophet_fit_720", |b| {
        b.iter(|| {
            black_box(ProphetModel::fit(
                &values,
                Some(24),
                ProphetConfig::default(),
            ))
        });
    });
    group.finish();
}

fn bench_rescheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("rescheduler");
    group.sample_size(20);
    group.bench_function("round_100_nodes", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter_batched(
            || {
                let mut pool = PoolState::new(
                    (0..100)
                        .map(|i| NodeState::new(i, 1_000.0, 10_000.0))
                        .collect(),
                );
                for id in 0..800u64 {
                    let node = (id % 30) as usize;
                    pool.nodes[node].add_replica(ReplicaLoad::from_total(
                        id,
                        (id % 50) as u32,
                        id,
                        LoadVector::flat(rng.gen_range(5.0..40.0)),
                        0.7,
                        rng.gen_range(50.0..400.0),
                    ));
                }
                pool
            },
            |mut pool| {
                black_box(Rescheduler::default().reschedule_round(&mut pool));
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_zipf(c: &mut Criterion) {
    let zipf = Zipf::new(1_000_000, 0.99);
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("zipf_sample_1m_keys", |b| {
        b.iter(|| black_box(zipf.sample(&mut rng)));
    });
}

criterion_group!(
    benches,
    bench_caches,
    bench_wfq,
    bench_quota,
    bench_resp,
    bench_lavastore,
    bench_forecast,
    bench_rescheduler,
    bench_zipf
);
criterion_main!(benches);
