//! The binlog: a tail-reading cursor over a leader's WAL segment files.
//!
//! LavaStore names its WAL segments `wal-<id>.log` with ids from one
//! monotonic allocator, so ascending id is chronological. A [`Binlog`]
//! remembers `(segment, byte offset)` and each [`Binlog::poll`] returns every
//! record the leader fully framed since the last poll, advancing across
//! rotated segments. When the cursor's segment has been rotated *away*
//! (deleted after a memtable flush) before the follower finished it, the
//! missed records now live only in SSTs — the poll reports [`Poll::Gap`] and
//! the follower must full-resync from a leader checkpoint
//! ([`abase_lavastore::Db::checkpoint_with`]), exactly like a Redis replica
//! falling off the backlog and taking a full sync.

use crate::Result;
use abase_lavastore::record::Record;
use abase_lavastore::wal::Wal;
use abase_lavastore::Error as StorageError;
use std::path::{Path, PathBuf};

/// Outcome of one poll.
#[derive(Debug)]
pub enum Poll {
    /// Newly shipped records, possibly empty (nothing appended since).
    Records(Vec<Record>),
    /// The cursor fell behind segment rotation; a full resync is required.
    Gap,
}

/// A persistent read cursor over a WAL directory.
#[derive(Debug)]
pub struct Binlog {
    dir: PathBuf,
    /// Current segment id; `None` until the first poll finds one.
    segment: Option<u64>,
    /// Byte offset of the next unread frame within `segment`.
    offset: u64,
}

impl Binlog {
    /// Attach to `dir`, positioned at the start of the oldest live segment.
    pub fn attach(dir: impl AsRef<Path>) -> Self {
        Self {
            dir: dir.as_ref().to_path_buf(),
            segment: None,
            offset: 0,
        }
    }

    /// Reposition the cursor (used after a full resync: the checkpoint tells
    /// the follower exactly where the copied state ends in the log).
    pub fn seek(&mut self, segment: u64, offset: u64) {
        self.segment = Some(segment);
        self.offset = offset;
    }

    /// The directory being tailed.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current `(segment, offset)` position, if attached to a segment yet.
    pub fn position(&self) -> Option<(u64, u64)> {
        self.segment.map(|s| (s, self.offset))
    }

    /// Read every record fully framed since the last poll.
    ///
    /// A torn frame at the tail (the leader's buffered writer flushed
    /// mid-frame) parks the cursor before it; the next poll retries. Reports
    /// [`Poll::Gap`] when the cursor's segment no longer exists.
    pub fn poll(&mut self) -> Result<Poll> {
        // Chaos sites: a stalled tail reader (returns empty without moving the
        // cursor) or a forced gap (as if the cursor's segment rotated away).
        if abase_util::failpoint::enabled() {
            match abase_util::failpoint::check("binlog.poll", &self.dir.display().to_string()) {
                Some(abase_util::failpoint::FaultAction::Stall) => {
                    return Ok(Poll::Records(Vec::new()))
                }
                Some(abase_util::failpoint::FaultAction::Gap) => return Ok(Poll::Gap),
                _ => {}
            }
        }
        // The poll sits on the synchronous-replication write path, so keep
        // the directory traffic minimal: one listing per poll iteration (to
        // decide segment advancement), and one only at first attach.
        if self.segment.is_none() {
            let ids = Wal::list_segments(&self.dir)?;
            let Some(&oldest) = ids.first() else {
                return Ok(Poll::Records(Vec::new()));
            };
            self.segment = Some(oldest);
            self.offset = 0;
        }
        let mut out = Vec::new();
        loop {
            let Some(segment) = self.segment else {
                return Ok(Poll::Records(out));
            };
            let path = Wal::segment_path(&self.dir, segment);
            match Wal::replay_from(&path, self.offset) {
                Ok((records, cursor)) => {
                    out.extend(records);
                    self.offset = cursor;
                }
                Err(StorageError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                    return Ok(Poll::Gap);
                }
                Err(e) => return Err(e.into()),
            }
            // A segment is closed exactly when a newer one exists; only then
            // may the cursor advance. Listing *after* the read also catches a
            // rotation that happened while reading, within this same poll.
            let ids = Wal::list_segments(&self.dir)?;
            match ids.iter().find(|&&id| id > segment) {
                Some(&next) => {
                    self.segment = Some(next);
                    self.offset = 0;
                }
                None => break,
            }
        }
        Ok(Poll::Records(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abase_lavastore::{Db, DbConfig};
    use abase_util::TestDir;

    fn expect_records(poll: Poll) -> Vec<Record> {
        match poll {
            Poll::Records(r) => r,
            Poll::Gap => panic!("unexpected gap"),
        }
    }

    #[test]
    fn tails_live_writes() {
        let dir = TestDir::new("tail");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        let mut binlog = Binlog::attach(dir.path());
        db.put(b"a", b"1", None, 0).unwrap();
        db.put(b"b", b"2", None, 0).unwrap();
        db.flush_wal().unwrap();
        let records = expect_records(binlog.poll().unwrap());
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].key, &b"a"[..]);
        assert_eq!(records[0].seq, 1);
        // Nothing new: empty batch, cursor stable.
        assert!(expect_records(binlog.poll().unwrap()).is_empty());
        db.delete(b"a", 0).unwrap();
        db.flush_wal().unwrap();
        let records = expect_records(binlog.poll().unwrap());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].seq, 3);
    }

    #[test]
    fn follows_rotation_across_segments() {
        let dir = TestDir::new("rotate");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        let mut binlog = Binlog::attach(dir.path());
        db.put(b"before", b"x", None, 0).unwrap();
        db.flush_wal().unwrap();
        assert_eq!(expect_records(binlog.poll().unwrap()).len(), 1);
        // Flush rotates the WAL; the cursor's (now consumed) segment is
        // deleted but everything in it was already read — no gap.
        db.flush().unwrap();
        db.put(b"after", b"y", None, 0).unwrap();
        db.flush_wal().unwrap();
        let records = expect_records(binlog.poll().unwrap());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].key, &b"after"[..]);
    }

    #[test]
    fn rotation_before_read_is_a_gap() {
        let dir = TestDir::new("gap");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        let mut binlog = Binlog::attach(dir.path());
        db.put(b"k1", b"v", None, 0).unwrap();
        db.flush_wal().unwrap();
        // The follower reads the first batch, then stalls while the leader
        // rotates past the retention backlog: the cursor's segment vanishes.
        assert_eq!(expect_records(binlog.poll().unwrap()).len(), 1);
        let backlog = db.config().wal_retention_segments;
        for i in 0..backlog + 2 {
            db.put(format!("k{i}").as_bytes(), b"v", None, 0).unwrap();
            db.flush().unwrap();
        }
        match binlog.poll().unwrap() {
            Poll::Gap => {}
            Poll::Records(r) => panic!("expected gap, got {} records", r.len()),
        }
    }

    #[test]
    fn seek_resumes_after_checkpoint() {
        let dir = TestDir::new("seek");
        let clone_dir = TestDir::new("seek-clone");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        db.put(b"a", b"1", None, 0).unwrap();
        db.put(b"b", b"2", None, 0).unwrap();
        let info = db.checkpoint(clone_dir.path()).unwrap();
        // A cursor seeked to the checkpoint boundary sees only post-snapshot
        // writes.
        let mut binlog = Binlog::attach(dir.path());
        binlog.seek(info.wal_segment, info.wal_offset);
        db.put(b"c", b"3", None, 0).unwrap();
        db.flush_wal().unwrap();
        let records = expect_records(binlog.poll().unwrap());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].key, &b"c"[..]);
        assert_eq!(records[0].seq, info.last_seq + 1);
    }
}
