//! Transport abstraction over "where do a follower's log records come from".
//!
//! A [`ReplicaGroup`](crate::ReplicaGroup) follower does not care whether the
//! records it applies were read straight off the leader's WAL files (the
//! in-process [`Binlog`] transport) or shipped over a TCP connection by a
//! leader in another OS process (the
//! [`SocketTransport`](crate::socket::SocketTransport)). [`LogTransport`]
//! captures the three things the pump loop needs — poll for new records,
//! reposition after a checkpoint install, report the cursor — plus the
//! transport-specific half of gap recovery: a filesystem transport lets the
//! group run its staged [`ResyncTicket`](crate::ResyncTicket) copy against
//! the local leader `Db`, while a socket transport *pulls* the checkpoint
//! from the remote leader (`PSYNC ? -1` → `FULLRESYNC` → file stream) into
//! the same staging-directory-then-rename install path.

use crate::binlog::{Binlog, Poll};
use crate::Result;
use abase_lavastore::CheckpointInfo;
use std::path::Path;

/// A follower's source of leader log records. Implemented by the filesystem
/// [`Binlog`] (replicas sharing a machine) and by
/// [`SocketTransport`](crate::socket::SocketTransport) (replicas in
/// different processes, frames shipped over the leader's RESP port).
pub trait LogTransport: Send {
    /// Read every record fully framed since the last poll, or report a gap
    /// (the cursor fell off the leader's retention and a full resync is
    /// required before shipping can continue).
    fn poll(&mut self) -> Result<Poll>;

    /// Reposition the cursor (after a full resync: the checkpoint says
    /// exactly where the copied state ends in the leader's log).
    fn seek(&mut self, segment: u64, offset: u64);

    /// Current `(segment, offset)` position, if attached to one yet.
    fn position(&self) -> Option<(u64, u64)>;

    /// Acknowledge that the follower durably applied records up to `lsn`.
    /// Filesystem transports do nothing — the leader reads the follower's
    /// `Db::last_seq` directly; a socket transport sends `REPLCONF ACK
    /// <lsn>` back to the leader, feeding its remote-follower accounting.
    fn ack(&mut self, lsn: u64) -> Result<()> {
        let _ = lsn;
        Ok(())
    }

    /// Is the transport's link to the leader currently alive? Filesystem
    /// transports read the leader's log in place and are always "up"; a
    /// socket transport reports whether it holds a live connection (a
    /// severed one reads as down until the self-healing reconnect lands).
    /// This is what a follower's `INFO replication` surfaces as
    /// `link_status` — polling results cannot carry it, because a dead
    /// socket polls as "no records", indistinguishable from an idle leader.
    fn link_up(&self) -> bool {
        true
    }

    /// The leader's LSN as most recently advertised through the transport's
    /// own channel (socket keepalive pings). Everything at or below it was
    /// put on the wire *before* the advertisement, so a consumer that has
    /// drained the transport and still trails the hint knows frames were
    /// lost and triggers gap recovery. Filesystem transports read the log
    /// in place and cannot lose frames: `None`.
    fn leader_lsn_hint(&self) -> Option<u64> {
        None
    }

    /// Transport-side full resync: pull a complete leader checkpoint into
    /// `staging` and leave the cursor at the checkpoint's edge. Returns
    /// `Ok(None)` when the transport has no way to fetch one (the filesystem
    /// transport — its caller stages a [`ResyncTicket`](crate::ResyncTicket)
    /// copy from the local leader instead).
    fn fetch_checkpoint(&mut self, staging: &Path) -> Result<Option<CheckpointInfo>> {
        let _ = staging;
        Ok(None)
    }
}

impl LogTransport for Binlog {
    fn poll(&mut self) -> Result<Poll> {
        Binlog::poll(self)
    }

    fn seek(&mut self, segment: u64, offset: u64) {
        Binlog::seek(self, segment, offset);
    }

    fn position(&self) -> Option<(u64, u64)> {
        Binlog::position(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abase_lavastore::{Db, DbConfig};
    use abase_util::TestDir;

    #[test]
    fn binlog_implements_the_transport_contract() {
        let dir = TestDir::new("transport-binlog");
        let db = Db::open(dir.path(), DbConfig::small_for_tests()).unwrap();
        let mut transport: Box<dyn LogTransport> = Box::new(Binlog::attach(dir.path()));
        assert_eq!(transport.position(), None);
        db.put(b"a", b"1", None, 0).unwrap();
        db.flush_wal().unwrap();
        match transport.poll().unwrap() {
            Poll::Records(r) => assert_eq!(r.len(), 1),
            Poll::Gap => panic!("unexpected gap"),
        }
        assert!(transport.position().is_some());
        // Acks are a no-op and checkpoint fetching defers to the group.
        transport.ack(1).unwrap();
        assert!(transport
            .fetch_checkpoint(&dir.path().join("staging"))
            .unwrap()
            .is_none());
        let (seg, off) = transport.position().unwrap();
        transport.seek(seg, off);
        assert_eq!(transport.position(), Some((seg, off)));
    }
}
