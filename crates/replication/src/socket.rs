//! WAL shipping over real sockets: the PSYNC wire protocol.
//!
//! This is the network half of the replication plane — replica groups that
//! span OS processes. A follower process connects to the leader's RESP port,
//! performs the `REPLCONF listening-port/replica-id` handshake, and issues
//! `PSYNC <segment> <offset>`; the leader switches the connection into
//! replica-streaming mode and ships framed binlog records (the storage
//! engine's own [`Record`] encoding inside RESP bulk frames). Acks flow back
//! on the same socket as `REPLCONF ACK <lsn>` and feed the leader group's
//! remote-follower accounting, so `WAIT` and write concerns count cross-
//! process replicas exactly like local ones.
//!
//! Wire frames (all RESP2 values, so both ends reuse the incremental parser):
//!
//! | frame | direction | meaning |
//! |---|---|---|
//! | `PSYNC seg off` / `PSYNC ? -1` | follower → leader | resume at a position / request a full resync |
//! | `REPLCONF ack <lsn>` | follower → leader | durably applied up to `lsn` (no reply) |
//! | `+CONTINUE` | leader → follower | incremental stream follows from the asked position |
//! | `+FULLRESYNC` | leader → follower | the asked position fell off retention; to a `PSYNC ? -1` it is followed by the checkpoint file stream |
//! | `BATCH seg off payload` | leader → follower | framed records; `(seg, off)` is the cursor *after* the batch |
//! | `FILE name chunk` | leader → follower | checkpoint file bytes, appended in order |
//! | `CKPT last_seq seg off bytes` | leader → follower | checkpoint stream end: [`CheckpointInfo`] |
//!
//! A follower that receives `+FULLRESYNC` pulls the checkpoint into a
//! staging directory and installs it through the same staged
//! swap-and-reopen path the in-process [`ResyncTicket`](crate::ResyncTicket)
//! machinery uses, then re-issues `PSYNC` at the checkpoint's edge.
//!
//! Chaos sites: `socket.ship` (leader's outbound batch frames — drop,
//! duplicate, reorder, disconnect) and `socket.ack` (follower's outbound
//! acks — drop, disconnect), both keyed by a `replica-<id>` context.

use crate::binlog::{Binlog, Poll};
use crate::group::{install_staged, RemoteFollowerState};
use crate::transport::LogTransport;
use crate::{Error, Result};
use abase_lavastore::record::Record;
use abase_lavastore::wal::Wal;
use abase_lavastore::{CheckpointInfo, Db, DbConfig};
use abase_proto::{Command, RespValue};
use abase_util::failpoint::{self, FaultAction};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Records per BATCH frame: bounds frame size (and makes drop/reorder chaos
/// meaningful — a fault hits a bounded slice of the stream, not all of it).
const BATCH_RECORDS: usize = 256;
/// Checkpoint FILE frame chunk size.
const FILE_CHUNK: usize = 64 << 10;
/// How long a handshake reply (OK/CONTINUE/FULLRESYNC) may take.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);
/// Overall budget for pulling one full checkpoint.
const FETCH_TIMEOUT: Duration = Duration::from_secs(60);

fn transport_err(context: &str, e: impl std::fmt::Display) -> Error {
    Error::Transport(format!("{context}: {e}"))
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

fn bulk(data: &[u8]) -> RespValue {
    RespValue::bulk(bytes::Bytes::copy_from_slice(data))
}

/// `BATCH seg off payload` — `(seg, off)` is the shipping cursor *after*
/// these records, so the follower can resume there on reconnect.
pub fn batch_frame(segment: u64, offset: u64, records: &[Record]) -> RespValue {
    let mut payload = Vec::new();
    for r in records {
        r.encode(&mut payload);
    }
    RespValue::array(vec![
        bulk(b"BATCH"),
        RespValue::Integer(segment as i64),
        RespValue::Integer(offset as i64),
        bulk(&payload),
    ])
}

/// `FILE name chunk` — checkpoint bytes appended to `name` in arrival order.
pub fn file_frame(name: &str, chunk: &[u8]) -> RespValue {
    RespValue::array(vec![bulk(b"FILE"), bulk(name.as_bytes()), bulk(chunk)])
}

/// `PING lsn` — leader keepalive carrying its current LSN, sent when the
/// stream idles. A follower that trails it with nothing left in flight
/// knows frames were lost (TCP never reorders, but a buggy/chaos sender can
/// drop) and recovers through a full resync instead of waiting for traffic
/// that will never come.
pub fn ping_frame(lsn: u64) -> RespValue {
    RespValue::array(vec![bulk(b"PING"), RespValue::Integer(lsn as i64)])
}

/// `CKPT last_seq seg off bytes` — end of a checkpoint stream.
pub fn ckpt_frame(info: &CheckpointInfo) -> RespValue {
    RespValue::array(vec![
        bulk(b"CKPT"),
        RespValue::Integer(info.last_seq as i64),
        RespValue::Integer(info.wal_segment as i64),
        RespValue::Integer(info.wal_offset as i64),
        RespValue::Integer(info.bytes_copied as i64),
    ])
}

/// A decoded leader→follower stream frame.
#[derive(Debug)]
pub enum StreamFrame {
    /// Shipped records plus the cursor position after them.
    Batch {
        /// WAL segment of the cursor after this batch.
        segment: u64,
        /// Byte offset of the cursor after this batch.
        offset: u64,
        /// The records, in log order.
        records: Vec<Record>,
    },
    /// A checkpoint file chunk.
    File {
        /// File name within the checkpoint (no path separators).
        name: String,
        /// Bytes to append.
        chunk: bytes::Bytes,
    },
    /// Checkpoint stream end.
    Ckpt(CheckpointInfo),
    /// `+CONTINUE`: incremental stream follows.
    Continue,
    /// `+FULLRESYNC`: the follower must pull a checkpoint.
    FullResync,
    /// Leader keepalive: its LSN when the stream idled.
    Ping(u64),
}

/// Decode one leader→follower frame; `Err` on malformed frames, so a
/// corrupted stream surfaces instead of being skipped.
pub fn decode_stream_frame(value: &RespValue) -> Result<StreamFrame> {
    let as_int = |v: &RespValue| -> Result<u64> {
        match v {
            RespValue::Integer(i) if *i >= 0 => Ok(*i as u64),
            other => Err(Error::Transport(format!(
                "expected non-negative integer, got {other:?}"
            ))),
        }
    };
    match value {
        RespValue::Simple(s) if s == "CONTINUE" => Ok(StreamFrame::Continue),
        RespValue::Simple(s) if s == "FULLRESYNC" => Ok(StreamFrame::FullResync),
        RespValue::Array(Some(items)) if !items.is_empty() => {
            let RespValue::Bulk(Some(tag)) = &items[0] else {
                return Err(Error::Transport(format!(
                    "stream frame without a tag: {:?}",
                    items[0]
                )));
            };
            match tag.as_ref() {
                b"BATCH" if items.len() == 4 => {
                    let RespValue::Bulk(Some(payload)) = &items[3] else {
                        return Err(Error::Transport("BATCH without payload".into()));
                    };
                    let mut records = Vec::new();
                    let mut pos = 0usize;
                    while pos < payload.len() {
                        records.push(
                            Record::decode(payload, &mut pos)
                                .map_err(|e| transport_err("BATCH payload", e))?,
                        );
                    }
                    Ok(StreamFrame::Batch {
                        segment: as_int(&items[1])?,
                        offset: as_int(&items[2])?,
                        records,
                    })
                }
                b"FILE" if items.len() == 3 => {
                    let (RespValue::Bulk(Some(name)), RespValue::Bulk(Some(chunk))) =
                        (&items[1], &items[2])
                    else {
                        return Err(Error::Transport("malformed FILE frame".into()));
                    };
                    let name = std::str::from_utf8(name)
                        .map_err(|e| transport_err("FILE name", e))?
                        .to_string();
                    // A hostile or corrupted name must never escape staging.
                    if name.contains('/') || name.contains('\\') || name.contains("..") {
                        return Err(Error::Transport(format!(
                            "FILE name escapes the staging dir: {name}"
                        )));
                    }
                    Ok(StreamFrame::File {
                        name,
                        chunk: chunk.clone(),
                    })
                }
                b"PING" if items.len() == 2 => Ok(StreamFrame::Ping(as_int(&items[1])?)),
                b"CKPT" if items.len() == 5 => Ok(StreamFrame::Ckpt(CheckpointInfo {
                    last_seq: as_int(&items[1])?,
                    wal_segment: as_int(&items[2])?,
                    wal_offset: as_int(&items[3])?,
                    bytes_copied: as_int(&items[4])?,
                })),
                other => Err(Error::Transport(format!(
                    "unknown stream frame tag {:?} ({} items)",
                    String::from_utf8_lossy(other),
                    items.len()
                ))),
            }
        }
        other => Err(Error::Transport(format!(
            "unexpected stream frame: {other:?}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Shared socket plumbing
// ---------------------------------------------------------------------------

/// Read one RESP frame from `stream` via `buffer`, waiting up to `timeout`.
/// `Ok(None)` means no complete frame arrived in time.
fn read_frame(
    stream: &mut TcpStream,
    buffer: &mut Vec<u8>,
    timeout: Duration,
) -> std::io::Result<Option<RespValue>> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some((value, used)) = RespValue::parse(buffer)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
        {
            buffer.drain(..used);
            return Ok(Some(value));
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Ok(None);
        }
        stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
        let mut chunk = [0u8; 16 << 10];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed the replication stream",
                ))
            }
            Ok(n) => buffer.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(None)
            }
            Err(e) => return Err(e),
        }
    }
}

/// Like [`read_frame`] but never waits: parse what is buffered, pull in
/// whatever bytes the socket already holds, and return `None` the moment
/// nothing more is immediately available.
fn read_frame_nonblocking(
    stream: &mut TcpStream,
    buffer: &mut Vec<u8>,
) -> std::io::Result<Option<RespValue>> {
    loop {
        if let Some((value, used)) = RespValue::parse(buffer)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
        {
            buffer.drain(..used);
            return Ok(Some(value));
        }
        stream.set_nonblocking(true)?;
        let mut chunk = [0u8; 16 << 10];
        let read = stream.read(&mut chunk);
        stream.set_nonblocking(false)?;
        match read {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed the replication stream",
                ))
            }
            Ok(n) => buffer.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(None),
            Err(e) => return Err(e),
        }
    }
}

// ---------------------------------------------------------------------------
// Leader side: serving a replica connection
// ---------------------------------------------------------------------------

/// What a leader-side replica connection streams from: the leader's store
/// (for checkpoints) and its WAL directory (for the binlog cursor). Cloned
/// out of the group under its lock once; the stream itself then runs with
/// the group *unlocked*, exactly like the staged checkpoint copies.
#[derive(Debug, Clone)]
pub struct ReplicaSource {
    /// The leader's database handle.
    pub db: Arc<Db>,
    /// The directory whose WAL segments are shipped.
    pub wal_dir: PathBuf,
}

/// Outbound batch shipper with the `socket.ship` chaos site: frames can be
/// dropped, duplicated, reordered, or the connection severed.
struct Shipper<'a> {
    stream: &'a mut TcpStream,
    tag: String,
    /// A frame held back by a reorder fault; sent *after* the next frame.
    held: Option<Vec<u8>>,
}

impl Shipper<'_> {
    fn ship(&mut self, frame: Vec<u8>) -> std::io::Result<()> {
        if failpoint::enabled() {
            match failpoint::check("socket.ship", &self.tag) {
                Some(FaultAction::Drop) | Some(FaultAction::Stall) => return Ok(()),
                Some(FaultAction::Duplicate) => {
                    self.stream.write_all(&frame)?;
                    self.stream.write_all(&frame)?;
                    return self.flush_held();
                }
                Some(FaultAction::Reorder) if self.held.is_none() => {
                    self.held = Some(frame);
                    return Ok(());
                }
                Some(FaultAction::Disconnect) => {
                    let _ = self.stream.shutdown(std::net::Shutdown::Both);
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionReset,
                        "injected fault: replication link severed",
                    ));
                }
                _ => {}
            }
        }
        self.stream.write_all(&frame)?;
        self.flush_held()
    }

    fn flush_held(&mut self) -> std::io::Result<()> {
        if let Some(held) = self.held.take() {
            self.stream.write_all(&held)?;
        }
        Ok(())
    }
}

/// Serve one replica connection on the leader: stream framed binlog records
/// from `source`, absorb `REPLCONF ACK` frames into `state` (under the
/// registration `generation`, so a superseded connection's late acks are
/// discarded), and run the `FULLRESYNC` checkpoint dance when the
/// follower's position fell off retention. Runs until the peer disconnects.
/// The group lock is *not* held anywhere in here — `source` was cloned out
/// once, acks land in shared atomics, and checkpoints stream from pinned
/// files.
pub fn serve_replica_stream(
    mut stream: TcpStream,
    mut buffer: Vec<u8>,
    source: &ReplicaSource,
    state: &RemoteFollowerState,
    generation: u64,
    first_psync: Option<(u64, u64)>,
    tag: &str,
) -> std::io::Result<()> {
    // Small frames on a long-lived stream: Nagle + delayed-ACK would park
    // each batch for tens of milliseconds, and commit latency rides on it.
    stream.set_nodelay(true).ok();
    /// Keepalive cadence on an idle stream.
    const PING_EVERY: Duration = Duration::from_millis(20);
    let io_other = |e: Error| std::io::Error::other(e.to_string());
    // `None` while awaiting a (re-)PSYNC; `Some` while streaming.
    let mut cursor: Option<Binlog> = None;
    let mut held: Option<Vec<u8>> = None;
    let mut pending_psync = Some(first_psync);
    let mut last_send = Instant::now();
    // Highest record LSN this connection has put on the wire (or dropped at
    // the chaos site — which is the point). Keepalives advertise *this*,
    // never `db.last_seq()`: the live LSN includes records still sitting in
    // the leader's WAL buffer, unpolled and unshipped, and advertising
    // those would make a healthy follower look like it lost frames.
    let mut shipped_lsn: u64 = 0;
    // The store LSN as of the last WAL flush this connection performed.
    let mut flushed_lsn: Option<u64> = None;
    loop {
        // 1. Handle an inbound PSYNC (initial, after FULLRESYNC, or a
        //    follower restart on a kept-alive connection).
        if let Some(position) = pending_psync.take() {
            match position {
                Some((segment, offset)) if Wal::segment_path(&source.wal_dir, segment).exists() => {
                    let mut binlog = Binlog::attach(&source.wal_dir);
                    binlog.seek(segment, offset);
                    stream.write_all(&RespValue::Simple("CONTINUE".into()).to_bytes())?;
                    cursor = Some(binlog);
                }
                Some(_) => {
                    // Fell off retention: the follower must pull a checkpoint.
                    crate::metrics::FULLRESYNCS.inc();
                    stream.write_all(&RespValue::Simple("FULLRESYNC".into()).to_bytes())?;
                    cursor = None;
                }
                None => {
                    // `PSYNC ? -1`: stream a full checkpoint now.
                    crate::metrics::FULLRESYNCS.inc();
                    stream.write_all(&RespValue::Simple("FULLRESYNC".into()).to_bytes())?;
                    send_checkpoint(&mut stream, source).map_err(io_other)?;
                    cursor = None; // follower re-PSYNCs at the edge
                }
            }
        }
        // 2. Drain inbound frames: acks update the shared state, a PSYNC
        //    restarts the handshake above. Strictly non-blocking: a read
        //    timeout here (however small) is rounded up to kernel tick
        //    granularity, and a follower acking every few milliseconds would
        //    keep every read inside the window — the drain would starve the
        //    ship path for entire commit windows.
        while let Some(frame) = read_frame_nonblocking(&mut stream, &mut buffer)? {
            match Command::from_resp(&frame) {
                Ok(cmd) => {
                    if let Some(lsn) = cmd.replconf_ack_lsn() {
                        state.record_ack(generation, lsn);
                    } else if let Command::PSync { position } = cmd {
                        pending_psync = Some(position);
                    }
                }
                Err(_) => {
                    stream.write_all(
                        &RespValue::Error("ERR expected REPLCONF/PSYNC on a replica stream".into())
                            .to_bytes(),
                    )?;
                }
            }
        }
        if pending_psync.is_some() {
            continue;
        }
        // 3. Ship newly framed records.
        let mut progressed = false;
        if let Some(binlog) = cursor.as_mut() {
            // Flush only when the store's LSN moved since the last flush —
            // an idle connection must not hammer the leader Db's write lock
            // once per loop iteration per replica.
            let live_lsn = source.db.last_seq();
            if flushed_lsn != Some(live_lsn) {
                source.db.flush_wal().map_err(|e| io_other(e.into()))?;
                flushed_lsn = Some(live_lsn);
            }
            let pre_poll = binlog.position();
            match LogTransport::poll(binlog).map_err(io_other)? {
                Poll::Records(records) if !records.is_empty() => {
                    let (segment, offset) = binlog.position().ok_or_else(|| {
                        io_other(Error::Transport(
                            "binlog cursor lost its position after returning records".into(),
                        ))
                    })?;
                    let resume = pre_poll.unwrap_or((segment, offset));
                    let mut shipper = Shipper {
                        stream: &mut stream,
                        tag: tag.to_string(),
                        held: held.take(),
                    };
                    let chunks = records.chunks(BATCH_RECORDS);
                    let n_chunks = chunks.len();
                    for (i, slice) in chunks.enumerate() {
                        // Only the final chunk advances the advertised
                        // cursor; intermediate chunks under-report with the
                        // pre-poll position, so a disconnect mid-ship makes
                        // the follower re-receive (and dedup) records —
                        // never skip ones it was owed.
                        let (seg, off) = if i + 1 == n_chunks {
                            (segment, offset)
                        } else {
                            resume
                        };
                        let frame = batch_frame(seg, off, slice).to_bytes();
                        crate::metrics::BATCH_FRAMES.inc();
                        crate::metrics::BATCH_BYTES.add(frame.len() as u64);
                        shipper.ship(frame)?;
                    }
                    held = shipper.held.take();
                    if let Some(last) = records.last() {
                        shipped_lsn = shipped_lsn.max(last.seq);
                    }
                    last_send = Instant::now();
                    progressed = true;
                }
                Poll::Records(_) => {
                    // Idle stream: a reorder-held frame has nothing left to
                    // swap with — deliver it now, so the fault reorders
                    // traffic but can never wedge an otherwise-quiet stream
                    // (a WAITing client would starve on the parked records).
                    if let Some(frame) = held.take() {
                        stream.write_all(&frame)?;
                        last_send = Instant::now();
                        progressed = true;
                    } else if last_send.elapsed() >= PING_EVERY && shipped_lsn > 0 {
                        // Keepalive: lets the follower detect lost frames
                        // (its LSN trailing everything this connection ever
                        // shipped, with nothing left in flight) without
                        // waiting for new writes. Shipped through the chaos
                        // site like any other frame.
                        let mut shipper = Shipper {
                            stream: &mut stream,
                            tag: tag.to_string(),
                            held: None,
                        };
                        shipper.ship(ping_frame(shipped_lsn).to_bytes())?;
                        held = shipper.held.take();
                        last_send = Instant::now();
                    }
                }
                Poll::Gap => {
                    // Retention ran past the cursor mid-stream.
                    crate::metrics::FULLRESYNCS.inc();
                    stream.write_all(&RespValue::Simple("FULLRESYNC".into()).to_bytes())?;
                    cursor = None;
                    progressed = true;
                }
            }
        }
        if !progressed {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// Stream a full leader checkpoint over the socket: stage it next to the
/// leader's directory (the same `Db::checkpoint_with` pin-and-stream the
/// resync tickets use — concurrent writes never stall), ship every file in
/// `FILE` chunks, close with the `CKPT` frame, and clean the staging tree.
fn send_checkpoint(stream: &mut TcpStream, source: &ReplicaSource) -> Result<()> {
    static CKPT_SEQ: AtomicU64 = AtomicU64::new(0);
    let staging = source.wal_dir.with_extension(format!(
        "psync-ckpt-{}-{}",
        std::process::id(),
        CKPT_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| -> Result<()> {
        let info = source.db.checkpoint_with(&staging, &mut |_| {})?;
        crate::metrics::STAGED_BYTES.add(info.bytes_copied);
        let mut names: Vec<PathBuf> = std::fs::read_dir(&staging)
            .map_err(|e| transport_err("checkpoint staging", e))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        // Deterministic ship order (and MANIFEST last would not matter: the
        // follower only opens the staged tree after CKPT).
        names.sort();
        for path in names {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .ok_or_else(|| Error::Transport("unnameable checkpoint file".into()))?
                .to_string();
            let data = std::fs::read(&path).map_err(|e| transport_err("checkpoint read", e))?;
            // Empty files still need announcing so the follower creates them.
            if data.is_empty() {
                stream
                    .write_all(&file_frame(&name, &[]).to_bytes())
                    .map_err(|e| transport_err("checkpoint ship", e))?;
            }
            for chunk in data.chunks(FILE_CHUNK) {
                stream
                    .write_all(&file_frame(&name, chunk).to_bytes())
                    .map_err(|e| transport_err("checkpoint ship", e))?;
            }
        }
        stream
            .write_all(&ckpt_frame(&info).to_bytes())
            .map_err(|e| transport_err("checkpoint ship", e))?;
        Ok(())
    })();
    std::fs::remove_dir_all(&staging).ok();
    result
}

// ---------------------------------------------------------------------------
// Follower side: the socket transport
// ---------------------------------------------------------------------------

/// A [`LogTransport`] that tails a remote leader over its RESP port.
///
/// Connection state is self-healing: a severed socket (leader restart,
/// network partition, injected `Disconnect`) is retried on the next poll and
/// the stream resumes with `PSYNC` at the last known position — the leader
/// answers `CONTINUE` if it still retains that log, `FULLRESYNC` otherwise.
pub struct SocketTransport {
    leader_addr: String,
    replica_id: u32,
    listening_port: u16,
    stream: Option<TcpStream>,
    buffer: Vec<u8>,
    position: Option<(u64, u64)>,
    /// `CONTINUE` received; BATCH frames are flowing.
    streaming: bool,
    /// The leader told us to full-resync (or we have no position yet).
    gapped: bool,
    /// Highest LSN a leader `PING` keepalive reported. Everything at or
    /// below it was shipped (or lost) *before* the ping, so a follower
    /// still trailing it after applying a poll's records knows frames were
    /// dropped.
    leader_hint: Option<u64>,
}

impl std::fmt::Debug for SocketTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketTransport")
            .field("leader", &self.leader_addr)
            .field("replica_id", &self.replica_id)
            .field("position", &self.position)
            .field("connected", &self.stream.is_some())
            .field("streaming", &self.streaming)
            .finish()
    }
}

impl SocketTransport {
    /// Create a transport for `replica_id`, tailing the leader at
    /// `leader_addr`. Does not connect yet — the first poll (or checkpoint
    /// fetch) does, so a follower can be constructed while the leader is
    /// still coming up.
    pub fn new(leader_addr: impl Into<String>, replica_id: u32, listening_port: u16) -> Self {
        Self {
            leader_addr: leader_addr.into(),
            replica_id,
            listening_port,
            stream: None,
            buffer: Vec::new(),
            position: None,
            streaming: false,
            gapped: true,
            leader_hint: None,
        }
    }

    /// The failpoint context this transport's sites use.
    fn tag(&self) -> String {
        format!("replica-{}", self.replica_id)
    }

    /// Is the transport currently connected to the leader?
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    fn drop_stream(&mut self) {
        self.stream = None;
        self.buffer.clear();
        self.streaming = false;
        // The hint's guarantee ("everything at or below was shipped before
        // the ping") is per-connection: after a reconnect the leader
        // re-serves from our asked position, so a stale hint would brand
        // re-served-but-not-yet-arrived records as lost.
        self.leader_hint = None;
    }

    /// Connect + REPLCONF handshake. Returns false (and stays disconnected)
    /// when the leader is unreachable — the caller treats that as a stall,
    /// not an error, so partitions heal by themselves.
    fn try_connect(&mut self) -> Result<bool> {
        if self.stream.is_some() {
            return Ok(true);
        }
        let Ok(mut stream) = TcpStream::connect(&self.leader_addr) else {
            return Ok(false);
        };
        stream.set_nodelay(true).ok();
        let handshake = Command::ReplConf {
            pairs: vec![
                (
                    bytes::Bytes::copy_from_slice(b"listening-port"),
                    bytes::Bytes::copy_from_slice(self.listening_port.to_string().as_bytes()),
                ),
                (
                    bytes::Bytes::copy_from_slice(b"replica-id"),
                    bytes::Bytes::copy_from_slice(self.replica_id.to_string().as_bytes()),
                ),
            ],
        };
        if stream.write_all(&handshake.to_resp().to_bytes()).is_err() {
            return Ok(false);
        }
        self.buffer.clear();
        match read_frame(&mut stream, &mut self.buffer, HANDSHAKE_TIMEOUT) {
            Ok(Some(RespValue::Simple(_))) => {
                self.stream = Some(stream);
                self.streaming = false;
                Ok(true)
            }
            Ok(Some(other)) => Err(Error::Transport(format!(
                "REPLCONF handshake refused: {other:?}"
            ))),
            Ok(None) | Err(_) => Ok(false),
        }
    }

    /// Issue `PSYNC` at the current position and process the reply.
    fn request_stream(&mut self) -> Result<()> {
        let Some((segment, offset)) = self.position else {
            self.gapped = true;
            return Ok(());
        };
        let psync = Command::PSync {
            position: Some((segment, offset)),
        };
        let Some(stream) = self.stream.as_mut() else {
            return Ok(());
        };
        if stream.write_all(&psync.to_resp().to_bytes()).is_err() {
            self.drop_stream();
            return Ok(());
        }
        match read_frame(stream, &mut self.buffer, HANDSHAKE_TIMEOUT) {
            Ok(Some(value)) => match decode_stream_frame(&value)? {
                StreamFrame::Continue => {
                    self.streaming = true;
                    Ok(())
                }
                StreamFrame::FullResync => {
                    self.gapped = true;
                    Ok(())
                }
                other => Err(Error::Transport(format!(
                    "PSYNC expected CONTINUE/FULLRESYNC, got {other:?}"
                ))),
            },
            Ok(None) => {
                self.drop_stream();
                Ok(())
            }
            Err(_) => {
                self.drop_stream();
                Ok(())
            }
        }
    }
}

impl LogTransport for SocketTransport {
    fn link_up(&self) -> bool {
        self.is_connected()
    }

    fn poll(&mut self) -> Result<Poll> {
        if !self.try_connect()? {
            // Leader unreachable: report no progress, keep the cursor.
            return Ok(Poll::Records(Vec::new()));
        }
        if self.gapped {
            return Ok(Poll::Gap);
        }
        if !self.streaming {
            self.request_stream()?;
            if self.gapped {
                return Ok(Poll::Gap);
            }
            if !self.streaming {
                return Ok(Poll::Records(Vec::new()));
            }
        }
        let mut records = Vec::new();
        while let Some(stream) = self.stream.as_mut() {
            match read_frame(stream, &mut self.buffer, Duration::from_millis(1)) {
                Ok(Some(value)) => match decode_stream_frame(&value)? {
                    StreamFrame::Batch {
                        segment,
                        offset,
                        records: batch,
                    } => {
                        self.position = Some((segment, offset));
                        records.extend(batch);
                    }
                    StreamFrame::FullResync => {
                        self.streaming = false;
                        self.gapped = true;
                        break;
                    }
                    StreamFrame::Ping(lsn) => {
                        self.leader_hint = Some(self.leader_hint.unwrap_or(0).max(lsn));
                    }
                    // CONTINUE duplicates and stray frames are ignorable.
                    _ => {}
                },
                Ok(None) => break,
                Err(_) => {
                    self.drop_stream();
                    break;
                }
            }
        }
        if records.is_empty() && self.gapped {
            return Ok(Poll::Gap);
        }
        Ok(Poll::Records(records))
    }

    fn seek(&mut self, segment: u64, offset: u64) {
        self.position = Some((segment, offset));
        self.gapped = false;
        // The stream (if any) must be renegotiated at the new position, and
        // pre-seek hints no longer describe what should have arrived.
        self.streaming = false;
        self.leader_hint = None;
    }

    fn position(&self) -> Option<(u64, u64)> {
        self.position
    }

    fn leader_lsn_hint(&self) -> Option<u64> {
        self.leader_hint
    }

    fn ack(&mut self, lsn: u64) -> Result<()> {
        if failpoint::enabled() {
            match failpoint::check("socket.ack", &self.tag()) {
                Some(FaultAction::Drop) | Some(FaultAction::Stall) => return Ok(()),
                Some(FaultAction::Disconnect) => {
                    self.drop_stream();
                    return Ok(());
                }
                _ => {}
            }
        }
        let Some(stream) = self.stream.as_mut() else {
            return Ok(());
        };
        if stream
            .write_all(&Command::replconf_ack(lsn).to_resp().to_bytes())
            .is_err()
        {
            self.drop_stream();
        }
        Ok(())
    }

    /// `PSYNC ? -1` → `FULLRESYNC` → `FILE*` → `CKPT`: pull a complete
    /// leader checkpoint into `staging` and leave the cursor at its edge.
    fn fetch_checkpoint(&mut self, staging: &Path) -> Result<Option<CheckpointInfo>> {
        if !self.try_connect()? {
            return Err(Error::Transport(
                "leader unreachable for full resync".into(),
            ));
        }
        self.streaming = false;
        {
            let stream = self
                .stream
                .as_mut()
                .ok_or_else(|| Error::Transport("stream closed before resync handshake".into()))?;
            stream
                .write_all(&Command::PSync { position: None }.to_resp().to_bytes())
                .map_err(|e| transport_err("PSYNC ? -1", e))?;
        }
        let deadline = Instant::now() + FETCH_TIMEOUT;
        // Await FULLRESYNC, skipping stale BATCH frames still in flight.
        loop {
            let stream = self
                .stream
                .as_mut()
                .ok_or_else(|| Error::Transport("stream closed during resync handshake".into()))?;
            let remaining = deadline.saturating_duration_since(Instant::now());
            match read_frame(stream, &mut self.buffer, remaining).map_err(self_heal_err) {
                Ok(Some(value)) => match decode_stream_frame(&value)? {
                    StreamFrame::FullResync => break,
                    _ => continue,
                },
                Ok(None) => {
                    self.drop_stream();
                    return Err(Error::Transport("timed out awaiting FULLRESYNC".into()));
                }
                Err(e) => {
                    self.drop_stream();
                    return Err(e);
                }
            }
        }
        std::fs::remove_dir_all(staging).ok();
        std::fs::create_dir_all(staging).map_err(|e| transport_err("staging dir", e))?;
        let result = (|| -> Result<CheckpointInfo> {
            loop {
                let stream = self
                    .stream
                    .as_mut()
                    .ok_or_else(|| Error::Transport("stream lost mid-checkpoint".into()))?;
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(Error::Transport("checkpoint fetch timed out".into()));
                }
                match read_frame(stream, &mut self.buffer, remaining).map_err(self_heal_err)? {
                    Some(value) => match decode_stream_frame(&value)? {
                        StreamFrame::File { name, chunk } => {
                            use std::io::Write as _;
                            let mut f = std::fs::OpenOptions::new()
                                .create(true)
                                .append(true)
                                .open(staging.join(&name))
                                .map_err(|e| transport_err("staging file", e))?;
                            f.write_all(&chunk)
                                .map_err(|e| transport_err("staging write", e))?;
                        }
                        StreamFrame::Ckpt(info) => return Ok(info),
                        // Stale batches from before the resync are ignorable.
                        _ => {}
                    },
                    None => return Err(Error::Transport("checkpoint fetch timed out".into())),
                }
            }
        })();
        match result {
            Ok(info) => {
                self.seek(info.wal_segment, info.wal_offset);
                // Resume the incremental stream at the edge.
                self.request_stream()?;
                Ok(Some(info))
            }
            Err(e) => {
                std::fs::remove_dir_all(staging).ok();
                self.drop_stream();
                Err(e)
            }
        }
    }
}

fn self_heal_err(e: std::io::Error) -> Error {
    Error::Transport(format!("replication stream failed: {e}"))
}

// ---------------------------------------------------------------------------
// Leader side: a dedicated replica endpoint
// ---------------------------------------------------------------------------

/// Allocate an id for a follower that connected without announcing
/// `REPLCONF replica-id` — one process-wide sequence, well clear of the
/// cluster's node-id space, shared by every replica-accepting surface (the
/// RESP server's PSYNC path and [`serve_group_replica`]) so two surfaces
/// can never hand the same anonymous id to different followers.
pub fn anonymous_replica_id() -> u32 {
    static REPLICA_SEQ: AtomicU64 = AtomicU64::new(1 << 20);
    REPLICA_SEQ.fetch_add(1, Ordering::Relaxed) as u32
}

/// Serve one inbound connection as a replica of `group`'s leader: answer
/// `REPLCONF` handshake frames with `+OK`, and on the first `PSYNC` register
/// the remote follower and switch into [`serve_replica_stream`]. The group
/// lock is held only for registration and to clone the [`ReplicaSource`];
/// the stream itself runs unlocked. The RESP server integrates this same
/// dance into its command loop; this standalone version is for embedders
/// (and harnesses) that dedicate a raw socket to replication.
pub fn serve_group_replica(
    mut stream: TcpStream,
    group: &abase_util::lockrank::RankedMutex<crate::ReplicaGroup>,
) -> Result<()> {
    stream.set_nodelay(true).ok();
    let mut buffer = Vec::new();
    let mut replica_id: Option<u32> = None;
    loop {
        let frame = read_frame(&mut stream, &mut buffer, HANDSHAKE_TIMEOUT)
            .map_err(|e| transport_err("replica handshake", e))?;
        let Some(frame) = frame else {
            return Err(Error::Transport("replica handshake timed out".into()));
        };
        match Command::from_resp(&frame) {
            Ok(cmd @ Command::ReplConf { .. }) => {
                if let Some(id) = cmd.replconf_option("replica-id") {
                    replica_id = Some(id as u32);
                }
                stream
                    .write_all(&RespValue::ok().to_bytes())
                    .map_err(|e| transport_err("replica handshake", e))?;
            }
            Ok(Command::PSync { position }) => {
                let id = replica_id.unwrap_or_else(anonymous_replica_id);
                let (source, state, generation) = {
                    let mut g = group.lock();
                    let leader = g.leader().ok_or(Error::NoLeader)?;
                    let source = ReplicaSource {
                        db: g.leader_db()?,
                        wal_dir: g.replica_dir(leader)?,
                    };
                    let (state, generation) = g.register_remote_follower(id)?;
                    (source, state, generation)
                };
                let tag = format!("replica-{id}");
                let result = serve_replica_stream(
                    stream, buffer, &source, &state, generation, position, &tag,
                );
                // Generation-guarded: a newer registration (the follower
                // already reconnected) must not be marked down by this
                // connection's death.
                state.disconnect(generation);
                return result.map_err(|e| transport_err("replica stream", e));
            }
            _ => {
                stream
                    .write_all(
                        &RespValue::Error("ERR expected REPLCONF/PSYNC on a replica port".into())
                            .to_bytes(),
                    )
                    .map_err(|e| transport_err("replica handshake", e))?;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Follower side: the standalone socket follower
// ---------------------------------------------------------------------------

/// Outcome of one [`SocketFollower::pump`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FollowerPump {
    /// Nothing new arrived.
    Idle,
    /// This many new records were applied.
    Applied(usize),
    /// A full resync replaced the store — callers holding the old `Db`
    /// handle (a serving engine) must re-fetch it via
    /// [`SocketFollower::db`].
    Resynced,
}

/// A follower replica in its own OS process: a local [`Db`] kept in sync by
/// pumping a [`LogTransport`] (normally a [`SocketTransport`] to the
/// leader's RESP port). Gap recovery pulls a leader checkpoint through the
/// transport and installs it with the same staged swap-and-reopen the
/// in-process resync tickets use.
pub struct SocketFollower {
    dir: PathBuf,
    config: DbConfig,
    db: Arc<Db>,
    transport: Box<dyn LogTransport>,
    resyncs: u64,
    staging_seq: u64,
    /// Last LSN acknowledged through the transport.
    last_acked: Option<u64>,
    /// Pumps since the last ack (periodic re-acks reseed the leader's
    /// accounting after reconnects without per-pump chatter).
    pumps_since_ack: u32,
}

impl std::fmt::Debug for SocketFollower {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketFollower")
            .field("dir", &self.dir)
            .field("lsn", &self.db.last_seq())
            .field("resyncs", &self.resyncs)
            .finish()
    }
}

impl SocketFollower {
    /// Open (or create) the local replica at `dir` and aim it at the leader
    /// on `leader_addr`. `replica_id` identifies this follower in the
    /// leader's accounting; `listening_port` is the port this follower's
    /// own RESP server listens on (handshake metadata).
    pub fn connect(
        dir: impl AsRef<Path>,
        config: DbConfig,
        leader_addr: &str,
        replica_id: u32,
        listening_port: u16,
    ) -> Result<Self> {
        let transport = Box::new(SocketTransport::new(
            leader_addr,
            replica_id,
            listening_port,
        ));
        Self::with_transport(dir, config, transport)
    }

    /// A follower over any transport (tests drive filesystem transports
    /// through the same pump).
    pub fn with_transport(
        dir: impl AsRef<Path>,
        config: DbConfig,
        transport: Box<dyn LogTransport>,
    ) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let db = Arc::new(Db::open(&dir, config)?);
        Ok(Self {
            dir,
            config,
            db,
            transport,
            resyncs: 0,
            staging_seq: 0,
            last_acked: None,
            pumps_since_ack: 0,
        })
    }

    /// The current store handle. Replaced wholesale by a full resync —
    /// re-fetch after [`FollowerPump::Resynced`].
    pub fn db(&self) -> Arc<Db> {
        Arc::clone(&self.db)
    }

    /// Highest LSN applied locally.
    pub fn last_seq(&self) -> u64 {
        self.db.last_seq()
    }

    /// Full resyncs performed.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Is the replication link to the leader currently alive? A `pump()`
    /// that found nothing cannot distinguish "idle leader" from "dead
    /// socket awaiting reconnect" — this can, so it (not pump results) is
    /// what `INFO replication` should report as `link_status`.
    pub fn link_up(&self) -> bool {
        self.transport.link_up()
    }

    /// The transport's cursor in the leader's log, if it has one. A restart
    /// that persisted this can resume with a positional `PSYNC` instead of
    /// a full checkpoint pull (the leader still answers `FULLRESYNC` if the
    /// position fell off retention meanwhile).
    pub fn position(&self) -> Option<(u64, u64)> {
        self.transport.position()
    }

    /// One pump pass: poll the transport, apply what arrived (duplicates
    /// dedup; an LSN gap — dropped or reordered frames — forces a full
    /// resync), and acknowledge the applied LSN back through the transport.
    pub fn pump(&mut self) -> Result<FollowerPump> {
        let outcome = match self.transport.poll()? {
            Poll::Gap => return self.full_resync(),
            Poll::Records(records) => {
                crate::metrics::SHIP_RECORDS.add(records.len() as u64);
                let mut applied = 0usize;
                for record in &records {
                    match self.db.apply_replicated(record) {
                        Ok(true) => applied += 1,
                        Ok(false) => {} // duplicate delivery, deduped
                        Err(abase_lavastore::Error::InvalidState(_)) => {
                            // A hole in the stream (dropped/reordered frame
                            // beyond repair): recover through a checkpoint.
                            return self.full_resync();
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
                if applied > 0 {
                    self.db.flush_wal()?;
                }
                // The poll is drained: if a leader keepalive advertised an
                // LSN we still trail, the frames carrying it were lost in
                // transit (nothing else can be in flight ahead of the ping)
                // — recover through a checkpoint instead of waiting for
                // traffic that will never come.
                if self
                    .transport
                    .leader_lsn_hint()
                    .is_some_and(|hint| hint > self.db.last_seq())
                {
                    return self.full_resync();
                }
                if applied > 0 {
                    FollowerPump::Applied(applied)
                } else {
                    FollowerPump::Idle
                }
            }
        };
        // Ack when the applied LSN moved, plus a periodic re-ack (reseeds
        // the leader's accounting after a reconnect). Never every pump: a
        // constant ack stream keeps the leader's inbound drain busy.
        self.pumps_since_ack += 1;
        let lsn = self.db.last_seq();
        if self.last_acked != Some(lsn) || self.pumps_since_ack >= 32 {
            self.transport.ack(lsn)?;
            crate::metrics::ACKS.inc();
            self.last_acked = Some(lsn);
            self.pumps_since_ack = 0;
        }
        Ok(outcome)
    }

    /// Pull a checkpoint through the transport and install it — the socket
    /// version of the staged `begin_resync`/`ResyncTicket` path: stage,
    /// swap, reopen, seek to the checkpoint edge.
    fn full_resync(&mut self) -> Result<FollowerPump> {
        self.staging_seq += 1;
        let staging = self
            .dir
            .with_extension(format!("resync-net-{}", self.staging_seq));
        let Some(info) = self.transport.fetch_checkpoint(&staging)? else {
            return Err(Error::Transport(
                "transport cannot fetch checkpoints and no local leader exists".into(),
            ));
        };
        install_staged(&staging, &self.dir)?;
        self.db = Arc::new(Db::open(&self.dir, self.config)?);
        // No seek here: `fetch_checkpoint` already left the cursor at the
        // checkpoint's edge and renegotiated the stream — a second seek
        // would reset the negotiation and force a redundant PSYNC.
        debug_assert_eq!(
            self.transport.position(),
            Some((info.wal_segment, info.wal_offset))
        );
        self.resyncs += 1;
        crate::metrics::RESYNCS.inc();
        let lsn = self.db.last_seq();
        self.transport.ack(lsn)?;
        self.last_acked = Some(lsn);
        self.pumps_since_ack = 0;
        Ok(FollowerPump::Resynced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{GroupConfig, ReplicaGroup, WriteConcern};
    use abase_util::lockrank::RankedMutex as Mutex;
    use abase_util::TestDir;
    use std::net::TcpListener;

    /// A minimal leader endpoint: every accepted connection is served as a
    /// replica through the public [`serve_group_replica`] dance.
    fn spawn_leader_endpoint(group: Arc<Mutex<ReplicaGroup>>) -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                let group = Arc::clone(&group);
                std::thread::spawn(move || {
                    let _ = serve_group_replica(stream, &group);
                });
            }
        });
        addr
    }

    fn test_group(dir: &TestDir) -> Arc<Mutex<ReplicaGroup>> {
        let group = ReplicaGroup::bootstrap(
            1,
            dir.path(),
            &[1],
            GroupConfig {
                write_concern: WriteConcern::Quorum,
                db: DbConfig::small_for_tests(),
                wait_timeout: Duration::from_secs(5),
            },
        )
        .unwrap();
        Arc::new(group.into_mutex())
    }

    #[test]
    fn socket_follower_full_resync_ship_and_wait_over_tcp() {
        let dir = TestDir::new("socket-e2e-leader");
        let fdir = TestDir::new("socket-e2e-follower");
        let group = test_group(&dir);
        let addr = spawn_leader_endpoint(Arc::clone(&group));
        // Pre-existing leader state: the fresh follower must pull it via the
        // `PSYNC ? -1` checkpoint path before tailing.
        for i in 0..20 {
            let db = group.lock().leader_db().unwrap();
            db.put(format!("seed{i:02}").as_bytes(), &[7u8; 32], None, 0)
                .unwrap();
        }
        let mut follower = SocketFollower::connect(
            fdir.path().join("replica"),
            DbConfig::small_for_tests(),
            &addr.to_string(),
            100,
            0,
        )
        .unwrap();
        // First pump: gap (no position) → checkpoint fetch + install.
        let deadline = Instant::now() + Duration::from_secs(10);
        while follower.last_seq() < 20 {
            assert!(Instant::now() < deadline, "follower never caught up");
            follower.pump().unwrap();
        }
        assert_eq!(follower.resyncs(), 1);
        assert!(follower.db().get(b"seed00", 0).unwrap().value.is_some());
        // Live tailing: a new write ships incrementally (no further resync)
        // and the ack feeds the leader group's WAIT arithmetic.
        let lsn = {
            let db = group.lock().leader_db().unwrap();
            db.put(b"live", b"x", None, 0).unwrap();
            db.last_seq()
        };
        let waiter = {
            let group = Arc::clone(&group);
            std::thread::spawn(move || group.lock().wait(lsn, 1, Duration::from_secs(10)))
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        while follower.last_seq() < lsn {
            assert!(Instant::now() < deadline, "live write never shipped");
            follower.pump().unwrap();
        }
        // Keep acking until the waiter observes it.
        let acked = loop {
            follower.pump().unwrap();
            if waiter.is_finished() {
                break waiter.join().unwrap().unwrap();
            }
            assert!(Instant::now() < deadline, "WAIT never saw the remote ack");
        };
        assert_eq!(acked, 1, "remote follower must satisfy WAIT");
        assert_eq!(follower.resyncs(), 1, "tailing must not re-resync");
        assert!(follower.db().get(b"live", 0).unwrap().value.is_some());
        // The group's status surfaces the remote follower.
        let status = group.lock().status();
        assert_eq!(status.remote_followers.len(), 1);
        assert_eq!(status.remote_followers[0].0, 100);
        assert!(status.remote_followers[0].1 >= lsn);
    }

    #[test]
    fn stale_position_gets_fullresync_marker_then_checkpoint() {
        let dir = TestDir::new("socket-stale-leader");
        let fdir = TestDir::new("socket-stale-follower");
        let group = test_group(&dir);
        let addr = spawn_leader_endpoint(Arc::clone(&group));
        // Rotate the leader's WAL far past its retention so segment 0 is gone.
        {
            let g = group.lock();
            let db = g.leader_db().unwrap();
            let backlog = db.config().wal_retention_segments;
            for round in 0..backlog + 3 {
                for i in 0..20 {
                    db.put(format!("r{round}-k{i}").as_bytes(), &[5u8; 64], None, 0)
                        .unwrap();
                }
                db.flush().unwrap();
            }
        }
        // A follower claiming position (0, 0) must be told to full-resync.
        let mut transport = SocketTransport::new(addr.to_string(), 101, 0);
        LogTransport::seek(&mut transport, 0, 0);
        let mut follower = SocketFollower::with_transport(
            fdir.path().join("replica"),
            DbConfig::small_for_tests(),
            Box::new(transport),
        )
        .unwrap();
        let leader_lsn = group.lock().leader_db().unwrap().last_seq();
        let deadline = Instant::now() + Duration::from_secs(10);
        while follower.last_seq() < leader_lsn {
            assert!(Instant::now() < deadline, "stale follower never recovered");
            follower.pump().unwrap();
        }
        assert_eq!(follower.resyncs(), 1, "recovery must go through FULLRESYNC");
    }

    #[test]
    fn group_follower_pumps_over_a_socket_transport() {
        // The transport-agnosticism proof: a ReplicaGroup follower whose
        // records arrive over TCP, through the identical pump/gap path.
        let leader_dir = TestDir::new("socket-group-leader");
        let follower_dir = TestDir::new("socket-group-follower");
        let leader = test_group(&leader_dir);
        let addr = spawn_leader_endpoint(Arc::clone(&leader));
        // A single-member group on the "follower machine" whose one follower
        // tails the remote leader. Bootstrap with a local leader then point
        // the follower's transport across the socket.
        let mut g = ReplicaGroup::bootstrap(
            1,
            follower_dir.path(),
            &[1, 2],
            GroupConfig {
                write_concern: WriteConcern::Async,
                db: DbConfig::small_for_tests(),
                wait_timeout: Duration::from_millis(100),
            },
        )
        .unwrap();
        g.set_follower_transport(2, Box::new(SocketTransport::new(addr.to_string(), 102, 0)))
            .unwrap();
        {
            let db = leader.lock().leader_db().unwrap();
            for i in 0..10 {
                db.put(format!("k{i}").as_bytes(), b"v", None, 0).unwrap();
            }
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while g.acked_lsn(2).unwrap() < 10 {
            assert!(Instant::now() < deadline, "socket group follower stalled");
            g.pump_follower(2).unwrap();
        }
        // The gap path is transport-agnostic too: it fetched the checkpoint
        // over the wire (the follower had no position) instead of staging a
        // ticket against the local leader.
        let status = g.status();
        let f2 = status.replicas.iter().find(|r| r.id == 2).unwrap();
        assert_eq!(f2.resyncs, 1);
        assert!(g.db(2).unwrap().get(b"k0", 0).unwrap().value.is_some());
    }

    #[test]
    fn stream_frames_roundtrip() {
        let records = vec![
            Record::put("k1", "v1", 5, None),
            Record::delete("k2", 6),
            Record::put("k3", "", 7, Some(99)),
        ];
        let frame = batch_frame(3, 128, &records);
        match decode_stream_frame(&frame).unwrap() {
            StreamFrame::Batch {
                segment,
                offset,
                records: decoded,
            } => {
                assert_eq!((segment, offset), (3, 128));
                assert_eq!(decoded, records);
            }
            other => panic!("expected batch, got {other:?}"),
        }
        let info = CheckpointInfo {
            last_seq: 42,
            wal_segment: 7,
            wal_offset: 4096,
            bytes_copied: 1 << 20,
        };
        match decode_stream_frame(&ckpt_frame(&info)).unwrap() {
            StreamFrame::Ckpt(decoded) => {
                assert_eq!(decoded.last_seq, 42);
                assert_eq!(decoded.wal_segment, 7);
                assert_eq!(decoded.wal_offset, 4096);
                assert_eq!(decoded.bytes_copied, 1 << 20);
            }
            other => panic!("expected ckpt, got {other:?}"),
        }
        match decode_stream_frame(&file_frame("MANIFEST", b"abc")).unwrap() {
            StreamFrame::File { name, chunk } => {
                assert_eq!(name, "MANIFEST");
                assert_eq!(chunk.as_ref(), b"abc");
            }
            other => panic!("expected file, got {other:?}"),
        }
        assert!(matches!(
            decode_stream_frame(&RespValue::Simple("CONTINUE".into())).unwrap(),
            StreamFrame::Continue
        ));
        assert!(matches!(
            decode_stream_frame(&RespValue::Simple("FULLRESYNC".into())).unwrap(),
            StreamFrame::FullResync
        ));
    }

    #[test]
    fn hostile_file_names_are_refused() {
        for name in ["../escape", "a/b", "a\\b"] {
            let frame = file_frame(name, b"x");
            assert!(
                decode_stream_frame(&frame).is_err(),
                "{name} should be refused"
            );
        }
    }

    #[test]
    fn malformed_frames_error_instead_of_skipping() {
        assert!(decode_stream_frame(&RespValue::Integer(7)).is_err());
        assert!(decode_stream_frame(&RespValue::array(vec![RespValue::bulk("BOGUS")])).is_err());
        // A BATCH whose payload is torn mid-record must surface.
        let torn = RespValue::array(vec![
            RespValue::bulk("BATCH"),
            RespValue::Integer(1),
            RespValue::Integer(2),
            RespValue::bulk(&b"\x05"[..]),
        ]);
        assert!(decode_stream_frame(&torn).is_err());
    }
}
