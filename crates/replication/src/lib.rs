//! # abase-replication
//!
//! The WAL-shipping replication plane for ABase (paper §3.2–§3.3): every
//! tenant partition is served by a **replica group** — one leader and N−1
//! followers, each a full [`abase_lavastore::Db`] — kept in sync by tailing
//! the leader's write-ahead log.
//!
//! The pieces:
//!
//! * [`binlog`] — a [`Binlog`] cursor over the leader's WAL segment files:
//!   followers poll it for newly appended records and detect when they have
//!   fallen behind a rotated-away segment (a *gap*, which forces a full
//!   resynchronization from a leader checkpoint).
//! * [`group`] — [`ReplicaGroup`]: per-follower acked-LSN tracking,
//!   configurable [`WriteConcern`] (`Async`, `Quorum`, `All`) on the write
//!   path and [`ReadConsistency`] (`Eventual`, `ReadYourWrites` via LSN
//!   fencing, `Leader`) on the read path, plus leader failover that promotes
//!   the most-caught-up follower without losing any acked write.
//! * [`failover`] — parallel replica reconstruction after a node failure:
//!   the surviving members of each affected group re-seed replacement
//!   replicas concurrently, one stream per surviving node, turning the §3.3
//!   closed-form recovery model (`abase-core`'s `RecoveryModel`) into
//!   measured behavior.
//!
//! The LSN is simply the storage engine's record sequence number: WAL
//! shipping preserves it end to end ([`abase_lavastore::Db::apply_replicated`]),
//! so "follower F has applied LSN x" means F's state is byte-equivalent to
//! the leader's state at x.
//!
//! ```
//! use abase_replication::{GroupConfig, ReplicaGroup, WriteConcern, ReadConsistency};
//! use abase_lavastore::DbConfig;
//!
//! let base = std::env::temp_dir().join(format!("repl-doc-{}", std::process::id()));
//! std::fs::remove_dir_all(&base).ok();
//! let mut group = ReplicaGroup::bootstrap(
//!     7, &base, &[1, 2, 3],
//!     GroupConfig::new(WriteConcern::Quorum, DbConfig::small_for_tests()),
//! ).unwrap();
//! let lsn = group.put(b"user:1", b"alice", None, 0).unwrap();
//! // Quorum-acked: at least one follower already has the write.
//! assert!(group.acked_count(lsn) >= 2);
//! let read = group.read(b"user:1", ReadConsistency::ReadYourWrites(lsn), 0).unwrap();
//! assert_eq!(read.value.as_deref(), Some(&b"alice"[..]));
//! drop(group);
//! std::fs::remove_dir_all(&base).ok();
//! ```

#![deny(missing_docs)]

pub mod binlog;
pub mod failover;
pub mod group;
pub mod metrics;
pub mod socket;
pub mod transport;

pub use binlog::{Binlog, Poll};
pub use failover::{
    reconstruct_parallel, reconstruct_single_source, ReconstructionReport, ReconstructionTask,
    Throttle,
};
pub use group::{
    AdvanceStatus, GroupConfig, GroupStatus, PumpStatus, ReadConsistency, RemoteFollowerState,
    ReplicaGroup, ReplicaId, ReplicaStatus, ResyncTicket, Role, RoutedRead, WriteConcern,
};
pub use socket::{
    serve_group_replica, serve_replica_stream, FollowerPump, ReplicaSource, SocketFollower,
    SocketTransport,
};
pub use transport::LogTransport;

/// Replication log sequence number — the storage engine's record `seq`.
pub type Lsn = u64;

/// Replication-plane failures.
#[derive(Debug)]
pub enum Error {
    /// The underlying storage engine failed.
    Storage(abase_lavastore::Error),
    /// A write concern could not be satisfied with the replicas alive.
    NoQuorum {
        /// Acks required (including the leader's own).
        need: usize,
        /// Acks obtained.
        acked: usize,
    },
    /// The group currently has no live leader (failover pending).
    NoLeader,
    /// Promotion was requested while the leader is still alive.
    LeaderStillAlive,
    /// No live follower exists to promote.
    NoPromotionCandidate,
    /// The replica id is not a member of this group.
    UnknownReplica(u32),
    /// The replica cannot serve reads right now (dead, or awaiting a full
    /// resync of divergent history).
    ReplicaUnavailable(u32),
    /// A fenced read was routed to a replica that has not applied the fence
    /// LSN — the router's view was stale; the caller re-routes (typically to
    /// the leader) instead of serving data older than the session's write.
    StaleReplica {
        /// The replica that failed the fence.
        replica: u32,
        /// Its applied LSN at read time.
        lsn: Lsn,
        /// The fence it needed to satisfy.
        need: Lsn,
    },
    /// A resync ticket was completed after the group's leadership or
    /// membership changed; the copy is discarded and the caller retries.
    ResyncSuperseded,
    /// A staged join targeted a replica id that is already a group member.
    AlreadyMember(u32),
    /// A membership removal targeted the live leader — hand leadership over
    /// first (`ReplicaGroup::handover`), then retire the member.
    MemberIsLeader(u32),
    /// The socket transport failed: unreachable leader during a mandatory
    /// exchange, a malformed or hostile frame, or a timed-out checkpoint
    /// fetch. Transient link loss is *not* an error (polls report no
    /// progress and reconnect); this is for failures the caller must see.
    Transport(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Storage(e) => write!(f, "storage: {e}"),
            Error::NoQuorum { need, acked } => {
                write!(f, "write concern unsatisfied: {acked}/{need} acks")
            }
            Error::NoLeader => write!(f, "replica group has no live leader"),
            Error::LeaderStillAlive => write!(f, "cannot promote: leader still alive"),
            Error::NoPromotionCandidate => write!(f, "no live follower to promote"),
            Error::UnknownReplica(id) => write!(f, "replica {id} is not a group member"),
            Error::ReplicaUnavailable(id) => {
                write!(f, "replica {id} cannot serve reads (dead or divergent)")
            }
            Error::StaleReplica { replica, lsn, need } => {
                write!(
                    f,
                    "replica {replica} at lsn {lsn} fails the read fence {need}"
                )
            }
            Error::ResyncSuperseded => {
                write!(f, "resync superseded by a leadership/membership change")
            }
            Error::AlreadyMember(id) => {
                write!(f, "replica {id} is already a group member")
            }
            Error::MemberIsLeader(id) => {
                write!(f, "replica {id} leads the group; hand over before removal")
            }
            Error::Transport(msg) => write!(f, "transport: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<abase_lavastore::Error> for Error {
    fn from(e: abase_lavastore::Error) -> Self {
        Error::Storage(e)
    }
}

/// Convenience alias for replication results.
pub type Result<T> = std::result::Result<T, Error>;
