//! Parallel replica reconstruction (paper §3.3).
//!
//! When a DataNode fails, every replica it hosted must be rebuilt elsewhere.
//! A single-tenant deployment restores them one after another through a
//! single replacement node's disk; ABase's MetaServer instead spreads the
//! copies across the *surviving* members of each affected group, "effectively
//! utilizing multi-node disk I/O bandwidth": with N distinct source nodes,
//! recovery runs ≈N× faster — the claim `abase-core`'s `RecoveryModel`
//! states in closed form and these functions measure.
//!
//! Bandwidth is modeled by a per-node [`Throttle`] applied to each copied
//! chunk, so wall-clock comparisons between the two strategies reflect disk
//! parallelism rather than incidental filesystem noise.

use crate::{Error, Result};
use abase_lavastore::Db;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A per-disk bandwidth limiter: sleeps long enough after each chunk that the
/// long-run copy rate is `bytes_per_sec`.
#[derive(Debug, Clone, Copy)]
pub struct Throttle {
    bytes_per_sec: f64,
}

impl Throttle {
    /// A throttle at `bytes_per_sec`.
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0);
        Self { bytes_per_sec }
    }

    /// Account one copied chunk (sleeps to enforce the rate).
    pub fn on_chunk(&self, bytes: usize) {
        let secs = bytes as f64 / self.bytes_per_sec;
        std::thread::sleep(Duration::from_secs_f64(secs));
    }
}

/// One replica to rebuild: copy a checkpoint of `source` into `dest_dir`.
pub struct ReconstructionTask {
    /// The partition whose replica is being rebuilt.
    pub partition: u64,
    /// A surviving group member to copy from.
    pub source: Arc<Db>,
    /// The node hosting `source` — tasks sharing a node share its disk.
    pub source_node: u32,
    /// Destination data directory for the rebuilt replica.
    pub dest_dir: PathBuf,
}

/// What a reconstruction run did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconstructionReport {
    /// Replicas rebuilt.
    pub replicas: usize,
    /// Total bytes copied.
    pub bytes_copied: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Distinct source nodes used (the parallelism degree).
    pub distinct_sources: usize,
}

impl ReconstructionReport {
    /// Effective aggregate copy bandwidth in bytes/second.
    pub fn effective_bandwidth(&self) -> f64 {
        self.bytes_copied as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

fn run_tasks(tasks: Vec<ReconstructionTask>, throttle: Option<Throttle>) -> Result<(usize, u64)> {
    let mut replicas = 0usize;
    let mut bytes = 0u64;
    for task in tasks {
        std::fs::remove_dir_all(&task.dest_dir).ok();
        let mut on_chunk = |n: usize| {
            if let Some(t) = throttle {
                t.on_chunk(n);
            }
        };
        let info = task.source.checkpoint_with(&task.dest_dir, &mut on_chunk)?;
        replicas += 1;
        bytes += info.bytes_copied;
    }
    Ok((replicas, bytes))
}

/// Rebuild every task through **one** node's disk, sequentially — the
/// single-tenant replacement-node strategy the paper's §3.3 argues against.
/// `per_node_bandwidth` is the modeled disk bandwidth (None = unthrottled).
pub fn reconstruct_single_source(
    tasks: Vec<ReconstructionTask>,
    per_node_bandwidth: Option<f64>,
) -> Result<ReconstructionReport> {
    let start = Instant::now();
    let (replicas, bytes_copied) = run_tasks(tasks, per_node_bandwidth.map(Throttle::new))?;
    Ok(ReconstructionReport {
        replicas,
        bytes_copied,
        elapsed: start.elapsed(),
        distinct_sources: 1,
    })
}

/// Rebuild the tasks in parallel, one worker per distinct source node, each
/// with its own disk-bandwidth throttle — the MetaServer-coordinated strategy.
/// With balanced assignments over N source nodes this is ≈N× faster than
/// [`reconstruct_single_source`].
pub fn reconstruct_parallel(
    tasks: Vec<ReconstructionTask>,
    per_node_bandwidth: Option<f64>,
) -> Result<ReconstructionReport> {
    let start = Instant::now();
    // Partition tasks by the node whose disk serves them.
    let mut by_node: std::collections::BTreeMap<u32, Vec<ReconstructionTask>> =
        std::collections::BTreeMap::new();
    for task in tasks {
        by_node.entry(task.source_node).or_default().push(task);
    }
    let distinct_sources = by_node.len();
    let throttle = per_node_bandwidth.map(Throttle::new);
    let mut handles = Vec::with_capacity(distinct_sources);
    for (_node, node_tasks) in by_node {
        handles.push(std::thread::spawn(move || run_tasks(node_tasks, throttle)));
    }
    let mut replicas = 0usize;
    let mut bytes_copied = 0u64;
    for handle in handles {
        let (r, b) = handle
            .join()
            .map_err(|_| Error::Transport("reconstruction worker panicked".into()))??;
        replicas += r;
        bytes_copied += b;
    }
    Ok(ReconstructionReport {
        replicas,
        bytes_copied,
        elapsed: start.elapsed(),
        distinct_sources,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use abase_lavastore::DbConfig;
    use abase_util::TestDir;
    use std::path::Path;

    fn seeded_db(dir: &Path, keys: usize) -> Arc<Db> {
        let db = Db::open(dir, DbConfig::small_for_tests()).unwrap();
        for i in 0..keys {
            db.put(format!("key-{i:05}").as_bytes(), &[9u8; 128], None, 0)
                .unwrap();
        }
        db.flush().unwrap();
        Arc::new(db)
    }

    fn tasks(base: &Path, sources: &[Arc<Db>]) -> Vec<ReconstructionTask> {
        sources
            .iter()
            .enumerate()
            .map(|(i, src)| ReconstructionTask {
                partition: i as u64,
                source: Arc::clone(src),
                source_node: i as u32,
                dest_dir: base.join(format!("rebuilt-{i}")),
            })
            .collect()
    }

    #[test]
    fn rebuilt_replicas_are_complete() {
        let dir = TestDir::new("complete");
        let sources: Vec<_> = (0..2)
            .map(|i| seeded_db(&dir.join(format!("src-{i}")), 50))
            .collect();
        let report = reconstruct_parallel(tasks(dir.path(), &sources), None).unwrap();
        assert_eq!(report.replicas, 2);
        assert_eq!(report.distinct_sources, 2);
        assert!(report.bytes_copied > 0);
        for i in 0..2 {
            let db = Db::open(
                dir.join(format!("rebuilt-{i}")),
                DbConfig::small_for_tests(),
            )
            .unwrap();
            for k in 0..50 {
                let key = format!("key-{k:05}");
                assert!(db.get(key.as_bytes(), 0).unwrap().value.is_some(), "{key}");
            }
        }
    }

    #[test]
    fn parallel_beats_single_source_by_about_n() {
        let dir = TestDir::new("speedup");
        // Enough data that the bandwidth throttle's sleeps dominate the
        // wall-clock even when the test suite saturates every core.
        let sources: Vec<_> = (0..3)
            .map(|i| seeded_db(&dir.join(format!("src-{i}")), 1200))
            .collect();
        let bw = Some(1e6);
        let single = reconstruct_single_source(tasks(dir.path(), &sources), bw).unwrap();
        let parallel = reconstruct_parallel(tasks(dir.path(), &sources), bw).unwrap();
        assert_eq!(single.bytes_copied, parallel.bytes_copied);
        let ratio = single.elapsed.as_secs_f64() / parallel.elapsed.as_secs_f64();
        assert!(
            ratio > 1.8,
            "parallel reconstruction should be ≈3× faster, measured {ratio:.2}×"
        );
    }

    #[test]
    fn throttle_enforces_rate() {
        let t = Throttle::new(1e6); // 1 MB/s
        let start = Instant::now();
        t.on_chunk(100_000); // 100 KB -> ≥ 100 ms
        assert!(start.elapsed() >= Duration::from_millis(95));
    }
}
