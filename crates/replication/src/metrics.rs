//! Replication-plane metric declarations. Recording sites live in
//! `group.rs` (pump/apply/resync) and `socket.rs` (frame shipping,
//! FULLRESYNC, checkpoint staging); this module only owns the handles.

use abase_obs::{LazyCounter, LazyGaugeFamily, LazyHisto};

/// Records applied to followers by the pump (local and socket transports).
pub static SHIP_RECORDS: LazyCounter = LazyCounter::new(
    "abase_repl_ship_records_total",
    "Log records applied to followers by the replication pump",
);

/// One pump pass (poll + apply + ack) per follower.
pub static PUMP_MICROS: LazyHisto = LazyHisto::new(
    "abase_repl_pump_micros",
    "Duration of one follower pump pass (poll, apply, ack)",
);

/// Acknowledgements sent by followers after applying shipped records.
pub static ACKS: LazyCounter = LazyCounter::new(
    "abase_repl_acks_total",
    "Follower acknowledgements sent after applying shipped records",
);

/// Full resyncs completed (staged checkpoint installed into a follower).
pub static RESYNCS: LazyCounter = LazyCounter::new(
    "abase_repl_resyncs_total",
    "Full resyncs completed (staged checkpoint installs)",
);

/// `FULLRESYNC` replies sent by a leader (the follower's position fell off
/// retention, or it asked with `PSYNC ? -1`).
pub static FULLRESYNCS: LazyCounter = LazyCounter::new(
    "abase_repl_fullresyncs_total",
    "FULLRESYNC replies sent to followers",
);

/// `BATCH` frames shipped over replica sockets.
pub static BATCH_FRAMES: LazyCounter = LazyCounter::new(
    "abase_repl_batch_frames_total",
    "BATCH frames shipped over replica sockets",
);

/// Serialized bytes of shipped `BATCH` frames.
pub static BATCH_BYTES: LazyCounter = LazyCounter::new(
    "abase_repl_batch_bytes_total",
    "Serialized bytes of BATCH frames shipped over replica sockets",
);

/// Checkpoint bytes staged for full resyncs (both ticket and socket paths).
pub static STAGED_BYTES: LazyCounter = LazyCounter::new(
    "abase_repl_staged_bytes_total",
    "Checkpoint bytes staged for full resyncs",
);

/// Per-follower replication lag in LSNs, labelled by replica id; refreshed
/// by `ReplicaGroup::tick` (and the cluster snapshot hook that drives it).
pub static FOLLOWER_LAG: LazyGaugeFamily = LazyGaugeFamily::new(
    "abase_repl_follower_lag",
    "replica",
    "Leader LSN minus follower acked LSN, by replica id",
);
