//! Replica groups: one leader, N−1 followers, WAL shipping in between.
//!
//! A [`ReplicaGroup`] owns a full [`Db`] per replica (in production these
//! live on different DataNodes; the group object is the control-plane view).
//! Writes go to the leader; each follower tails the leader's WAL through a
//! [`Binlog`] and applies records with their original sequence numbers, so a
//! follower's acked LSN *is* its `Db::last_seq`. The write path enforces a
//! [`WriteConcern`]; the read path picks a replica per [`ReadConsistency`];
//! failover promotes the most-caught-up live follower, which — because WAL
//! shipping applies records in order (prefix property) — retains every write
//! any follower ever acked below its LSN.

use crate::binlog::{Binlog, Poll};
use crate::{Error, Lsn, Result};
use abase_lavastore::{Db, DbConfig, Error as StorageError, ReadResult};
use abase_util::clock::SimTime;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Replica identifier (the DataNode hosting it, in cluster terms).
pub type ReplicaId = u32;

/// How many replicas must hold a write before it is acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteConcern {
    /// Leader only; followers catch up on [`ReplicaGroup::tick`].
    Async,
    /// A majority of the group's membership (leader included).
    Quorum,
    /// Every live replica.
    All,
}

/// Which replica may serve a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadConsistency {
    /// Any live replica; may be stale.
    Eventual,
    /// Any replica that has applied at least this LSN (LSN fencing): a client
    /// that remembers the LSN of its last write never reads before it.
    ReadYourWrites(Lsn),
    /// The leader only.
    Leader,
}

/// A replica's role within its group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts writes; its WAL is the group's log.
    Leader,
    /// Tails the leader's WAL.
    Follower,
}

/// Group construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct GroupConfig {
    /// Write concern applied by [`ReplicaGroup::put`]/[`ReplicaGroup::delete`].
    pub write_concern: WriteConcern,
    /// Storage engine configuration shared by every replica.
    pub db: DbConfig,
}

struct Replica {
    id: ReplicaId,
    dir: PathBuf,
    db: Arc<Db>,
    role: Role,
    alive: bool,
    /// Follower-only: cursor over the leader's WAL.
    binlog: Option<Binlog>,
    /// Forces a checkpoint resync before the next pump (set when a demoted
    /// ex-leader may hold a divergent unacked tail whose sequence numbers
    /// would wrongly dedup against the new leader's history).
    needs_full_resync: bool,
    /// Full resynchronizations performed (fell off the leader's log).
    resyncs: u64,
}

/// Observability snapshot for one replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Replica id.
    pub id: ReplicaId,
    /// Current role.
    pub role: Role,
    /// Reachability.
    pub alive: bool,
    /// Highest LSN applied (`Db::last_seq`).
    pub acked_lsn: Lsn,
    /// Full resyncs performed.
    pub resyncs: u64,
}

/// Observability snapshot for the group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupStatus {
    /// The partition this group serves.
    pub partition: u64,
    /// Current leader, if one is alive.
    pub leader: Option<ReplicaId>,
    /// Per-replica state.
    pub replicas: Vec<ReplicaStatus>,
}

/// A leader/follower replica group shipping the leader's WAL.
pub struct ReplicaGroup {
    partition: u64,
    config: GroupConfig,
    replicas: Vec<Replica>,
    /// Round-robin cursor for `Eventual`/fenced reads.
    read_cursor: usize,
}

impl std::fmt::Debug for ReplicaGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaGroup")
            .field("partition", &self.partition)
            .field("status", &self.status())
            .finish()
    }
}

impl ReplicaGroup {
    /// Create a fresh group for `partition` under `base_dir`: the first id in
    /// `replica_ids` starts as leader, the rest as followers, each replica in
    /// `base_dir/p<partition>-r<id>`.
    pub fn bootstrap(
        partition: u64,
        base_dir: impl AsRef<Path>,
        replica_ids: &[ReplicaId],
        config: GroupConfig,
    ) -> Result<Self> {
        assert!(
            !replica_ids.is_empty(),
            "a group needs at least one replica"
        );
        let base_dir = base_dir.as_ref();
        let leader_dir = replica_dir(base_dir, partition, replica_ids[0]);
        let mut replicas = Vec::with_capacity(replica_ids.len());
        for (i, &id) in replica_ids.iter().enumerate() {
            let dir = replica_dir(base_dir, partition, id);
            let db = Arc::new(Db::open(&dir, config.db)?);
            let (role, binlog) = if i == 0 {
                (Role::Leader, None)
            } else {
                (Role::Follower, Some(Binlog::attach(&leader_dir)))
            };
            replicas.push(Replica {
                id,
                dir,
                db,
                role,
                alive: true,
                binlog,
                needs_full_resync: false,
                resyncs: 0,
            });
        }
        Ok(Self {
            partition,
            config,
            replicas,
            read_cursor: 0,
        })
    }

    /// The partition this group serves.
    pub fn partition(&self) -> u64 {
        self.partition
    }

    /// The configured write concern.
    pub fn write_concern(&self) -> WriteConcern {
        self.config.write_concern
    }

    /// Group membership in declaration order.
    pub fn members(&self) -> Vec<ReplicaId> {
        self.replicas.iter().map(|r| r.id).collect()
    }

    /// The live leader's id.
    pub fn leader(&self) -> Option<ReplicaId> {
        self.replicas
            .iter()
            .find(|r| r.role == Role::Leader && r.alive)
            .map(|r| r.id)
    }

    /// The live leader's database handle.
    pub fn leader_db(&self) -> Result<Arc<Db>> {
        self.replicas
            .iter()
            .find(|r| r.role == Role::Leader && r.alive)
            .map(|r| Arc::clone(&r.db))
            .ok_or(Error::NoLeader)
    }

    /// A replica's current database handle (replaced wholesale on resync).
    pub fn db(&self, id: ReplicaId) -> Result<Arc<Db>> {
        self.find(id).map(|r| Arc::clone(&r.db))
    }

    /// A replica's on-disk directory.
    pub fn replica_dir(&self, id: ReplicaId) -> Result<PathBuf> {
        self.find(id).map(|r| r.dir.clone())
    }

    /// Is the replica marked reachable?
    pub fn is_alive(&self, id: ReplicaId) -> bool {
        self.find(id).map(|r| r.alive).unwrap_or(false)
    }

    /// Highest LSN `id` has applied.
    pub fn acked_lsn(&self, id: ReplicaId) -> Result<Lsn> {
        self.find(id).map(|r| r.db.last_seq())
    }

    /// Live replicas (leader included) whose applied LSN is at least `lsn`.
    pub fn acked_count(&self, lsn: Lsn) -> usize {
        self.replicas
            .iter()
            .filter(|r| r.alive && r.db.last_seq() >= lsn)
            .count()
    }

    /// Write `key = value` through the leader and enforce the group's write
    /// concern; returns the write's LSN.
    pub fn put(
        &mut self,
        key: &[u8],
        value: &[u8],
        expires_at: Option<SimTime>,
        now: SimTime,
    ) -> Result<Lsn> {
        let leader = self.leader_db()?;
        leader.put(key, value, expires_at, now)?;
        let lsn = leader.last_seq();
        self.commit(lsn)?;
        Ok(lsn)
    }

    /// Delete `key` through the leader under the group's write concern.
    pub fn delete(&mut self, key: &[u8], now: SimTime) -> Result<Lsn> {
        let leader = self.leader_db()?;
        leader.delete(key, now)?;
        let lsn = leader.last_seq();
        self.commit(lsn)?;
        Ok(lsn)
    }

    /// Enforce the configured write concern for everything up to `lsn` (used
    /// directly when writes went to [`ReplicaGroup::leader_db`] out-of-band,
    /// e.g. through a table engine executing RESP commands).
    pub fn commit(&mut self, lsn: Lsn) -> Result<usize> {
        let need = match self.config.write_concern {
            WriteConcern::Async => return Ok(1),
            WriteConcern::Quorum => self.replicas.len() / 2 + 1,
            WriteConcern::All => self.replicas.iter().filter(|r| r.alive).count(),
        };
        self.replicate_until(lsn, need)
    }

    /// Ship the leader's log to followers until `need` replicas (leader
    /// included) have applied `lsn`, pumping as few followers as possible.
    fn replicate_until(&mut self, lsn: Lsn, need: usize) -> Result<usize> {
        self.leader_db()?.flush_wal()?;
        let mut acked = self.acked_count(lsn);
        if acked < need {
            let follower_ids: Vec<ReplicaId> = self
                .replicas
                .iter()
                .filter(|r| r.alive && r.role == Role::Follower && r.db.last_seq() < lsn)
                .map(|r| r.id)
                .collect();
            for id in follower_ids {
                self.pump_follower(id)?;
                acked = self.acked_count(lsn);
                if acked >= need {
                    break;
                }
            }
        }
        if acked < need {
            return Err(Error::NoQuorum { need, acked });
        }
        Ok(acked)
    }

    /// Block until at least `numreplicas` *followers* have applied `lsn`
    /// (Redis `WAIT` semantics: the leader itself is not counted). Returns
    /// the number of followers that have, which may exceed the ask.
    pub fn wait(&mut self, lsn: Lsn, numreplicas: usize) -> Result<usize> {
        // Falling short of the ask is the answer (the returned count), but a
        // real storage fault must not masquerade as replication lag.
        match self.replicate_until(lsn, (numreplicas + 1).min(self.replicas.len())) {
            Ok(_) | Err(Error::NoQuorum { .. }) => {}
            Err(e) => return Err(e),
        }
        Ok(self
            .replicas
            .iter()
            .filter(|r| r.alive && r.role == Role::Follower && r.db.last_seq() >= lsn)
            .count())
    }

    /// Ship pending log to every live follower (the periodic `Async`
    /// catch-up; cluster simulators call this once per tick).
    pub fn tick(&mut self) -> Result<()> {
        if let Ok(leader) = self.leader_db() {
            leader.flush_wal()?;
        }
        let ids: Vec<ReplicaId> = self
            .replicas
            .iter()
            .filter(|r| r.alive && r.role == Role::Follower)
            .map(|r| r.id)
            .collect();
        for id in ids {
            self.pump_follower(id)?;
        }
        Ok(())
    }

    /// Read `key` at the requested consistency level.
    pub fn read(
        &mut self,
        key: &[u8],
        consistency: ReadConsistency,
        now: SimTime,
    ) -> Result<ReadResult> {
        let replica = match consistency {
            ReadConsistency::Leader => self
                .replicas
                .iter()
                .position(|r| r.role == Role::Leader && r.alive)
                .ok_or(Error::NoLeader)?,
            ReadConsistency::Eventual => self.pick_replica(|_| true).ok_or(Error::NoLeader)?,
            ReadConsistency::ReadYourWrites(lsn) => self
                .pick_replica(|r| r.db.last_seq() >= lsn)
                .ok_or(Error::NoQuorum { need: 1, acked: 0 })?,
        };
        Ok(self.replicas[replica].db.get(key, now)?)
    }

    /// Round-robin over live replicas passing `filter`.
    fn pick_replica(&mut self, filter: impl Fn(&Replica) -> bool) -> Option<usize> {
        let n = self.replicas.len();
        for step in 0..n {
            let idx = (self.read_cursor + step) % n;
            let r = &self.replicas[idx];
            if r.alive && filter(r) {
                self.read_cursor = (idx + 1) % n;
                return Some(idx);
            }
        }
        None
    }

    /// Mark a replica unreachable (node failure). Writes and leader reads
    /// fail until [`ReplicaGroup::promote`] if the leader died.
    pub fn fail_replica(&mut self, id: ReplicaId) -> Result<()> {
        self.find_mut(id)?.alive = false;
        Ok(())
    }

    /// Mark a previously failed replica reachable again. Its next pump either
    /// resumes WAL tailing or, if it fell off the log, full-resyncs.
    pub fn revive_replica(&mut self, id: ReplicaId) -> Result<()> {
        self.find_mut(id)?.alive = true;
        Ok(())
    }

    /// Elect the most-caught-up live follower as leader after the old leader
    /// died. Followers re-attach their binlogs to the new leader. Because log
    /// application is strictly in order, the follower with the highest
    /// applied LSN holds a superset of every write any replica acked — so no
    /// acknowledged write is lost.
    pub fn promote(&mut self) -> Result<ReplicaId> {
        if self
            .replicas
            .iter()
            .any(|r| r.role == Role::Leader && r.alive)
        {
            return Err(Error::LeaderStillAlive);
        }
        let winner = self
            .replicas
            .iter()
            .filter(|r| r.alive && r.role == Role::Follower)
            .max_by(|a, b| {
                a.db.last_seq()
                    .cmp(&b.db.last_seq())
                    // Deterministic tie-break: prefer the lowest id.
                    .then(b.id.cmp(&a.id))
            })
            .map(|r| r.id)
            .ok_or(Error::NoPromotionCandidate)?;
        let leader_dir = self.find(winner)?.dir.clone();
        for r in &mut self.replicas {
            if r.id == winner {
                r.role = Role::Leader;
                r.binlog = None;
            } else {
                // Everyone else — including the dead ex-leader — becomes a
                // follower of the winner. Demoting the old leader here is
                // what prevents split brain: if it is later revived it tails
                // the new leader instead of silently resuming leadership.
                // Fresh attach: duplicate records dedup on apply; if the new
                // leader already rotated past what a follower needs, the gap
                // path triggers a full resync. An ex-leader whose unacked
                // tail diverged resyncs the same way (its WAL is discarded
                // for a checkpoint of the new leader).
                if r.role == Role::Leader {
                    // A dead ex-leader may carry unacked records that share
                    // sequence numbers with the new leader's history; WAL
                    // shipping alone cannot reconcile that, so force a
                    // checkpoint resync before it ever serves again.
                    r.needs_full_resync = true;
                }
                r.role = Role::Follower;
                r.binlog = Some(Binlog::attach(&leader_dir));
            }
        }
        Ok(winner)
    }

    /// Replace a dead member with a freshly reconstructed replica whose data
    /// directory `dir` was seeded by [`crate::failover`]. The new replica
    /// opens the copied state and starts tailing the current leader.
    pub fn adopt_replica(
        &mut self,
        dead: ReplicaId,
        new_id: ReplicaId,
        dir: PathBuf,
    ) -> Result<()> {
        let leader_dir = {
            let leader = self
                .replicas
                .iter()
                .find(|r| r.role == Role::Leader && r.alive)
                .ok_or(Error::NoLeader)?;
            leader.dir.clone()
        };
        let slot = self.find_index(dead)?;
        let db = Arc::new(Db::open(&dir, self.config.db)?);
        self.replicas[slot] = Replica {
            id: new_id,
            dir,
            db,
            role: Role::Follower,
            alive: true,
            binlog: Some(Binlog::attach(&leader_dir)),
            needs_full_resync: false,
            resyncs: 0,
        };
        // Catch the newcomer up to the leader's current position.
        self.pump_follower(new_id)
    }

    /// Pump one follower's binlog: apply newly shipped records; on a gap,
    /// full-resync from a leader checkpoint and continue tailing from there.
    pub fn pump_follower(&mut self, id: ReplicaId) -> Result<()> {
        // Two rounds maximum: a gap resolves through resync, after which the
        // second poll must succeed (the cursor sits at a live position).
        for attempt in 0..2 {
            let idx = self.find_index(id)?;
            {
                let r = &self.replicas[idx];
                if !r.alive || r.role != Role::Follower {
                    return Ok(());
                }
                if r.needs_full_resync {
                    self.resync_follower(id)?;
                }
            }
            let idx = self.find_index(id)?;
            let outcome = {
                let r = &mut self.replicas[idx];
                let Some(binlog) = r.binlog.as_mut() else {
                    return Ok(());
                };
                binlog.poll()?
            };
            match outcome {
                Poll::Records(records) => {
                    let r = &mut self.replicas[idx];
                    let mut in_stream_gap = false;
                    for record in &records {
                        match r.db.apply_replicated(record) {
                            Ok(_) => {}
                            Err(StorageError::InvalidState(_)) => {
                                // LSN gap inside the stream (possible after a
                                // leader change): fall back to full resync.
                                in_stream_gap = true;
                                break;
                            }
                            Err(e) => return Err(e.into()),
                        }
                    }
                    if in_stream_gap {
                        self.resync_follower(id)?;
                    }
                    return Ok(());
                }
                Poll::Gap => {
                    self.resync_follower(id)?;
                    if attempt == 1 {
                        return Ok(());
                    }
                }
            }
        }
        Ok(())
    }

    /// Rebuild a follower from a leader checkpoint (it fell off the log).
    fn resync_follower(&mut self, id: ReplicaId) -> Result<()> {
        let leader = self.leader_db()?;
        let leader_dir = {
            let l = self
                .replicas
                .iter()
                .find(|r| r.role == Role::Leader && r.alive)
                .ok_or(Error::NoLeader)?;
            l.dir.clone()
        };
        let idx = self.find_index(id)?;
        let dir = self.replicas[idx].dir.clone();
        std::fs::remove_dir_all(&dir).map_err(StorageError::Io)?;
        let info = leader.checkpoint(&dir)?;
        let db = Arc::new(Db::open(&dir, self.config.db)?);
        let r = &mut self.replicas[idx];
        r.db = db;
        let mut binlog = Binlog::attach(&leader_dir);
        binlog.seek(info.wal_segment, info.wal_offset);
        r.binlog = Some(binlog);
        r.needs_full_resync = false;
        r.resyncs += 1;
        Ok(())
    }

    /// Snapshot of the group's replication state.
    pub fn status(&self) -> GroupStatus {
        GroupStatus {
            partition: self.partition,
            leader: self.leader(),
            replicas: self
                .replicas
                .iter()
                .map(|r| ReplicaStatus {
                    id: r.id,
                    role: r.role,
                    alive: r.alive,
                    acked_lsn: r.db.last_seq(),
                    resyncs: r.resyncs,
                })
                .collect(),
        }
    }

    fn find(&self, id: ReplicaId) -> Result<&Replica> {
        self.replicas
            .iter()
            .find(|r| r.id == id)
            .ok_or(Error::UnknownReplica(id))
    }

    fn find_mut(&mut self, id: ReplicaId) -> Result<&mut Replica> {
        self.replicas
            .iter_mut()
            .find(|r| r.id == id)
            .ok_or(Error::UnknownReplica(id))
    }

    fn find_index(&self, id: ReplicaId) -> Result<usize> {
        self.replicas
            .iter()
            .position(|r| r.id == id)
            .ok_or(Error::UnknownReplica(id))
    }
}

/// Directory layout: one subdirectory per (partition, replica).
pub fn replica_dir(base: &Path, partition: u64, id: ReplicaId) -> PathBuf {
    base.join(format!("p{partition}-r{id}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use abase_util::TestDir;

    fn group(tag: &str, concern: WriteConcern) -> (TestDir, ReplicaGroup) {
        let dir = TestDir::new(tag);
        let g = ReplicaGroup::bootstrap(
            1,
            dir.path(),
            &[10, 20, 30],
            GroupConfig {
                write_concern: concern,
                db: DbConfig::small_for_tests(),
            },
        )
        .unwrap();
        (dir, g)
    }

    #[test]
    fn quorum_write_lands_on_majority() {
        let (_d, mut g) = group("quorum", WriteConcern::Quorum);
        let lsn = g.put(b"k", b"v", None, 0).unwrap();
        assert_eq!(lsn, 1);
        assert!(g.acked_count(lsn) >= 2);
        // Quorum pumps only as many followers as needed: the laggard catches
        // up on tick.
        g.tick().unwrap();
        assert_eq!(g.acked_count(lsn), 3);
    }

    #[test]
    fn all_concern_reaches_every_replica() {
        let (_d, mut g) = group("all", WriteConcern::All);
        let lsn = g.put(b"k", b"v", None, 0).unwrap();
        assert_eq!(g.acked_count(lsn), 3);
    }

    #[test]
    fn async_defers_shipping_to_tick() {
        let (_d, mut g) = group("async", WriteConcern::Async);
        let lsn = g.put(b"k", b"v", None, 0).unwrap();
        assert_eq!(g.acked_count(lsn), 1); // leader only
        g.tick().unwrap();
        assert_eq!(g.acked_count(lsn), 3);
    }

    #[test]
    fn read_consistency_levels() {
        let (_d, mut g) = group("consistency", WriteConcern::Async);
        let lsn = g.put(b"k", b"v", None, 0).unwrap();
        // Leader always sees its own write.
        let r = g.read(b"k", ReadConsistency::Leader, 0).unwrap();
        assert_eq!(r.value.as_deref(), Some(&b"v"[..]));
        // Fenced read never returns pre-write state: with lagging followers
        // it must route to a replica at/above the LSN (here: the leader).
        let r = g
            .read(b"k", ReadConsistency::ReadYourWrites(lsn), 0)
            .unwrap();
        assert_eq!(r.value.as_deref(), Some(&b"v"[..]));
        // Eventual may hit a stale follower — after tick it converges.
        g.tick().unwrap();
        for _ in 0..3 {
            let r = g.read(b"k", ReadConsistency::Eventual, 0).unwrap();
            assert_eq!(r.value.as_deref(), Some(&b"v"[..]));
        }
    }

    #[test]
    fn fenced_reads_prefer_caught_up_followers() {
        let (_d, mut g) = group("fence", WriteConcern::All);
        let lsn = g.put(b"k", b"v", None, 0).unwrap();
        // All three replicas qualify; reads rotate across them.
        let mut served = std::collections::HashSet::new();
        for _ in 0..3 {
            let before = g.read_cursor;
            g.read(b"k", ReadConsistency::ReadYourWrites(lsn), 0)
                .unwrap();
            served.insert(before);
        }
        assert!(served.len() >= 2, "fenced reads did not spread load");
    }

    #[test]
    fn quorum_fails_without_majority() {
        let (_d, mut g) = group("noquorum", WriteConcern::Quorum);
        g.fail_replica(20).unwrap();
        g.fail_replica(30).unwrap();
        match g.put(b"k", b"v", None, 0) {
            Err(Error::NoQuorum { need: 2, acked: 1 }) => {}
            other => panic!("expected NoQuorum, got {other:?}"),
        }
    }

    #[test]
    fn promotion_picks_most_caught_up_follower() {
        let (_d, mut g) = group("promote", WriteConcern::Async);
        for i in 0..10 {
            g.put(format!("k{i}").as_bytes(), b"v", None, 0).unwrap();
        }
        // Ship everything to follower 20 only; 30 stays at LSN 0.
        g.leader_db().unwrap().flush_wal().unwrap();
        g.pump_follower(20).unwrap();
        assert_eq!(g.acked_lsn(20).unwrap(), 10);
        assert_eq!(g.acked_lsn(30).unwrap(), 0);
        g.fail_replica(10).unwrap();
        assert_eq!(g.promote().unwrap(), 20);
        assert_eq!(g.leader(), Some(20));
        // The laggard re-attaches to the new leader and converges.
        g.tick().unwrap();
        assert_eq!(g.acked_lsn(30).unwrap(), 10);
        // Writes continue through the new leader.
        let lsn = g.put(b"after", b"x", None, 0).unwrap();
        assert_eq!(lsn, 11);
    }

    #[test]
    fn revived_ex_leader_does_not_reclaim_leadership() {
        let (_d, mut g) = group("splitbrain", WriteConcern::Async);
        // Leader 10 writes 5 records; followers fully caught up.
        for i in 0..5 {
            g.put(format!("k{i}").as_bytes(), b"v", None, 0).unwrap();
        }
        g.tick().unwrap();
        // Leader 10 writes 2 more that never ship (unacked divergent tail),
        // then dies.
        g.leader_db()
            .unwrap()
            .put(b"unacked-1", b"x", None, 0)
            .unwrap();
        g.leader_db()
            .unwrap()
            .put(b"unacked-2", b"x", None, 0)
            .unwrap();
        g.fail_replica(10).unwrap();
        let new_leader = g.promote().unwrap();
        assert_eq!(new_leader, 20);
        // The new leader writes its own history over the same LSNs.
        g.put(b"new-6", b"y", None, 0).unwrap();
        g.put(b"new-7", b"y", None, 0).unwrap();
        // Node 10 comes back: it must NOT be leader, and its divergent tail
        // must be discarded in favor of the new leader's history.
        g.revive_replica(10).unwrap();
        assert_eq!(
            g.leader(),
            Some(20),
            "revived ex-leader reclaimed leadership"
        );
        g.tick().unwrap();
        let db10 = g.db(10).unwrap();
        assert!(
            db10.get(b"unacked-1", 0).unwrap().value.is_none(),
            "divergent tail survived"
        );
        assert!(
            db10.get(b"new-6", 0).unwrap().value.is_some(),
            "new history missing"
        );
        assert_eq!(db10.last_seq(), g.leader_db().unwrap().last_seq());
        let s10 = g
            .status()
            .replicas
            .iter()
            .find(|r| r.id == 10)
            .cloned()
            .unwrap();
        assert_eq!(s10.role, Role::Follower);
        assert!(s10.resyncs >= 1, "ex-leader must full-resync");
    }

    #[test]
    fn promotion_requires_dead_leader_and_live_follower() {
        let (_d, mut g) = group("promote-guard", WriteConcern::Async);
        match g.promote() {
            Err(Error::LeaderStillAlive) => {}
            other => panic!("{other:?}"),
        }
        g.fail_replica(10).unwrap();
        g.fail_replica(20).unwrap();
        g.fail_replica(30).unwrap();
        match g.promote() {
            Err(Error::NoPromotionCandidate) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn follower_that_fell_off_the_log_resyncs() {
        let (_d, mut g) = group("resync", WriteConcern::Async);
        // First shipment establishes follower cursors.
        g.put(b"seed", b"v", None, 0).unwrap();
        g.tick().unwrap();
        // Leader flushes past the retention backlog without follower 20
        // pumping: its cursor's segment is rotated away.
        g.fail_replica(20).unwrap();
        let backlog = g.leader_db().unwrap().config().wal_retention_segments;
        let rounds = backlog + 2;
        for round in 0..rounds {
            for i in 0..30 {
                g.put(format!("r{round}-k{i}").as_bytes(), &[0u8; 64], None, 0)
                    .unwrap();
            }
            g.leader_db().unwrap().flush().unwrap();
        }
        // Node 20 comes back; catching up requires a full resync.
        g.revive_replica(20).unwrap();
        g.tick().unwrap();
        let status = g.status();
        let s20 = status.replicas.iter().find(|r| r.id == 20).unwrap();
        assert!(s20.resyncs >= 1, "expected a full resync");
        assert_eq!(s20.acked_lsn, g.leader_db().unwrap().last_seq());
        // And the data is really there.
        let last = format!("r{}-k29", rounds - 1);
        let r = g.db(20).unwrap().get(last.as_bytes(), 0).unwrap();
        assert!(r.value.is_some());
    }

    #[test]
    fn status_reflects_roles_and_lsns() {
        let (_d, mut g) = group("status", WriteConcern::All);
        g.put(b"k", b"v", None, 0).unwrap();
        let status = g.status();
        assert_eq!(status.partition, 1);
        assert_eq!(status.leader, Some(10));
        assert_eq!(status.replicas.len(), 3);
        assert!(status.replicas.iter().all(|r| r.acked_lsn == 1));
        assert_eq!(
            status
                .replicas
                .iter()
                .filter(|r| r.role == Role::Follower)
                .count(),
            2
        );
    }
}
