//! Replica groups: one leader, N−1 followers, WAL shipping in between.
//!
//! A [`ReplicaGroup`] owns a full [`Db`] per replica (in production these
//! live on different DataNodes; the group object is the control-plane view).
//! Writes go to the leader; each follower tails the leader's WAL through a
//! [`Binlog`] and applies records with their original sequence numbers, so a
//! follower's acked LSN *is* its `Db::last_seq`. The write path enforces a
//! [`WriteConcern`]; the read path picks a replica per [`ReadConsistency`];
//! failover promotes the most-caught-up live follower, which — because WAL
//! shipping applies records in order (prefix property) — retains every write
//! any follower ever acked below its LSN.

use crate::binlog::{Binlog, Poll};
use crate::failover::Throttle;
use crate::transport::LogTransport;
use crate::{Error, Lsn, Result};
use abase_lavastore::{CheckpointInfo, Db, DbConfig, Error as StorageError, ReadResult};
use abase_util::clock::SimTime;
use abase_util::failpoint::{self, FaultAction};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Replica identifier (the DataNode hosting it, in cluster terms).
pub type ReplicaId = u32;

/// How many replicas must hold a write before it is acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteConcern {
    /// Leader only; followers catch up on [`ReplicaGroup::tick`].
    Async,
    /// A majority of the group's membership (leader included).
    Quorum,
    /// Every live replica.
    All,
}

/// Which replica may serve a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadConsistency {
    /// Any live replica; may be stale.
    Eventual,
    /// Any replica that has applied at least this LSN (LSN fencing): a client
    /// that remembers the LSN of its last write never reads before it.
    ReadYourWrites(Lsn),
    /// The leader only.
    Leader,
}

/// A replica's role within its group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts writes; its WAL is the group's log.
    Leader,
    /// Tails the leader's WAL.
    Follower,
}

/// Group construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct GroupConfig {
    /// Write concern applied by [`ReplicaGroup::put`]/[`ReplicaGroup::delete`].
    pub write_concern: WriteConcern,
    /// Storage engine configuration shared by every replica.
    pub db: DbConfig,
    /// How long a commit ([`WriteConcern`] enforcement) keeps retrying the
    /// pump before giving up with `NoQuorum` — Redis `WAIT` semantics: a dead
    /// or stalled follower bounds the wait, it does not block forever.
    /// `Duration::ZERO` means a single non-blocking pass.
    pub wait_timeout: Duration,
}

impl GroupConfig {
    /// A config with the default commit timeout.
    pub fn new(write_concern: WriteConcern, db: DbConfig) -> Self {
        Self {
            write_concern,
            db,
            wait_timeout: Duration::from_millis(100),
        }
    }
}

/// Shared accounting for a follower living in **another process**, reached
/// over a socket: the replica connection thread records `REPLCONF ACK`
/// frames here and flips the connected flag, while the group's write-concern
/// and `WAIT` arithmetic read it — same `acked_lsn` math as local followers,
/// different source of truth.
#[derive(Debug, Default)]
pub struct RemoteFollowerState {
    acked: AtomicU64,
    connected: AtomicBool,
    /// Bumped on every (re-)registration. A replica connection records the
    /// generation it was registered under and may only clear the connected
    /// flag for that generation — a stale connection's slow death (e.g. a
    /// partitioned socket whose writes error minutes later) must not mark
    /// the follower's *new* connection down.
    generation: AtomicU64,
}

impl RemoteFollowerState {
    /// Record a follower ack from the connection registered as
    /// `generation` (monotonic: a late/duplicated ack never lowers the
    /// watermark). A superseded connection's acks are discarded — a
    /// follower that lost its disk and re-registered must not have a
    /// pre-wipe ack, drained late from the old socket, resurrect a
    /// watermark covering records it no longer holds.
    pub fn record_ack(&self, generation: u64, lsn: Lsn) {
        // ORDER: SeqCst; `generation`/`acked`/`connected` share one total
        // order with `register_remote_follower`'s bump-then-reset, so a
        // stale connection that passes this check can never have its ack
        // land after the new generation's `acked.store(0)`.
        if self.generation.load(Ordering::SeqCst) == generation {
            self.acked.fetch_max(lsn, Ordering::SeqCst);
        }
    }

    /// Highest LSN the remote follower has acknowledged.
    pub fn acked(&self) -> Lsn {
        // ORDER: SeqCst; reads the same total order `record_ack` and the
        // reconnect reset write into (quorum math must not see a pre-reset
        // watermark after observing the new generation).
        self.acked.load(Ordering::SeqCst)
    }

    /// Mark the connection for `generation` down. A no-op when a newer
    /// registration superseded that connection — the live link keeps
    /// counting. Disconnected remotes stop counting toward write concerns
    /// immediately.
    pub fn disconnect(&self, generation: u64) {
        // ORDER: SeqCst; same total order as `register_remote_follower` —
        // a superseded connection's late death must observe the bumped
        // generation and become a no-op.
        if self.generation.load(Ordering::SeqCst) == generation {
            self.connected.store(false, Ordering::SeqCst);
        }
    }

    /// Is the replica connection currently up?
    pub fn is_connected(&self) -> bool {
        // ORDER: SeqCst; pairs with the stores in `disconnect` and
        // `register_remote_follower` so liveness flips are totally ordered
        // against generation bumps.
        self.connected.load(Ordering::SeqCst)
    }
}

/// A registered remote (cross-process) follower.
struct RemoteFollower {
    id: ReplicaId,
    state: Arc<RemoteFollowerState>,
}

struct Replica {
    id: ReplicaId,
    dir: PathBuf,
    db: Arc<Db>,
    role: Role,
    alive: bool,
    /// Follower-only: source of the leader's log records (filesystem
    /// [`Binlog`] in-process, a socket transport across processes).
    transport: Option<Box<dyn LogTransport>>,
    /// Forces a checkpoint resync before the next pump (set when a demoted
    /// ex-leader may hold a divergent unacked tail whose sequence numbers
    /// would wrongly dedup against the new leader's history).
    needs_full_resync: bool,
    /// Full resynchronizations performed (fell off the leader's log).
    resyncs: u64,
}

/// Observability snapshot for one replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Replica id.
    pub id: ReplicaId,
    /// Current role.
    pub role: Role,
    /// Reachability.
    pub alive: bool,
    /// Highest LSN applied (`Db::last_seq`).
    pub acked_lsn: Lsn,
    /// Full resyncs performed.
    pub resyncs: u64,
}

/// One served read with the provenance a routing layer needs: which replica
/// answered and how far behind the leader it was at read time. The `lag`
/// field is the *observed staleness* the follower-read ablation reports and
/// the chaos harness's stale-read attribution consumes.
#[derive(Debug, Clone)]
pub struct RoutedRead {
    /// The storage read itself.
    pub result: ReadResult,
    /// Replica that served the read.
    pub replica: ReplicaId,
    /// The serving replica's applied LSN at read time.
    pub replica_lsn: Lsn,
    /// Records the serving replica trailed the live leader by at read time
    /// (0 when the leader served, or when no live leader exists to compare).
    pub lag: Lsn,
}

/// Observability snapshot for the group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupStatus {
    /// The partition this group serves.
    pub partition: u64,
    /// Current leader, if one is alive.
    pub leader: Option<ReplicaId>,
    /// Per-replica state.
    pub replicas: Vec<ReplicaStatus>,
    /// Remote (cross-process) followers: `(id, acked LSN, connected)`.
    pub remote_followers: Vec<(ReplicaId, Lsn, bool)>,
}

/// A leader/follower replica group shipping the leader's WAL.
pub struct ReplicaGroup {
    partition: u64,
    config: GroupConfig,
    replicas: Vec<Replica>,
    /// Followers in other processes, fed over sockets; they count toward
    /// write concerns and `WAIT` through their shared ack state.
    remotes: Vec<RemoteFollower>,
    /// Round-robin cursor for `Eventual`/fenced reads.
    read_cursor: usize,
    /// Bumped on every leadership/membership change; an in-flight
    /// [`ResyncTicket`] from an older epoch is refused at install time.
    epoch: u64,
}

/// What one shallow (no-resync) pump pass observed for a follower.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PumpStatus {
    /// Nothing to pump: the replica is dead, not a follower, or detached.
    Idle,
    /// The cursor is live; zero or more records were applied.
    Applied,
    /// The follower fell off the leader's log (or carries divergent history)
    /// and needs a full resync before shipping can continue.
    NeedsResync,
}

/// Outcome of one [`ReplicaGroup::advance`] pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdvanceStatus {
    /// Live followers whose applied LSN has reached the fence.
    pub followers_acked: usize,
    /// Followers that cannot proceed without a full resync; the caller may
    /// run those copies through [`ReplicaGroup::begin_resync`] /
    /// [`ReplicaGroup::complete_resync`] without holding its group lock.
    pub needs_resync: Vec<ReplicaId>,
}

/// What a staged checkpoint copy will become once installed: a refreshed
/// existing follower (gap resync) or a brand-new group member (migration /
/// reconstruction staging). Both run through the same [`ResyncTicket`]
/// machinery — one placement-change path, two install targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StageTarget {
    /// Replace an existing follower's divergent/gapped state.
    Resync,
    /// Install a new follower that was not previously a member.
    Join,
}

/// A prepared, staged replica-placement change whose (long) checkpoint copy
/// runs without borrowing the group: [`ReplicaGroup::begin_resync`] (refresh
/// an existing follower) or [`ReplicaGroup::begin_join`] (stage a new member
/// — the migration/reconstruction path) hands one out, [`ResyncTicket::copy`]
/// / [`ResyncTicket::copy_throttled`] streams the leader checkpoint into a
/// staging directory, and [`ReplicaGroup::complete_resync`] /
/// [`ReplicaGroup::complete_join`] atomically installs it. Callers that guard
/// the group with a mutex (the RESP server) drop the lock around `copy`, so
/// `WAIT`/commit on other keys are not blocked for the duration of the
/// transfer.
#[derive(Debug)]
pub struct ResyncTicket {
    follower: ReplicaId,
    epoch: u64,
    leader: Arc<Db>,
    leader_dir: PathBuf,
    staging: PathBuf,
    /// Directory the staged copy is renamed into on install.
    install_dir: PathBuf,
    target: StageTarget,
}

impl ResyncTicket {
    /// The replica this staged copy is for (an existing follower for a
    /// resync, the joining member's id for a join).
    pub fn follower(&self) -> ReplicaId {
        self.follower
    }

    /// Stream a leader checkpoint into the staging directory. Does not touch
    /// the follower's live state: a failure mid-copy (source died, disk
    /// error) leaves the follower exactly as it was, still serving its
    /// (valid prefix) history.
    pub fn copy(&self) -> Result<CheckpointInfo> {
        self.copy_with(&mut |_| {})
    }

    /// [`ResyncTicket::copy`] under a per-disk bandwidth [`Throttle`] — the
    /// §3.3 recovery-bandwidth model: migration and reconstruction copies
    /// charge the same modeled disk budget as failover re-seeding, so live
    /// moves never consume more I/O than the recovery plane is allowed to.
    pub fn copy_throttled(&self, throttle: Option<&Throttle>) -> Result<CheckpointInfo> {
        self.copy_with(&mut |chunk| {
            if let Some(t) = throttle {
                t.on_chunk(chunk);
            }
        })
    }

    /// Stream a leader checkpoint into the staging directory, reporting each
    /// copied chunk to `on_chunk` (bandwidth throttling, RU accounting).
    pub fn copy_with(&self, on_chunk: &mut dyn FnMut(usize)) -> Result<CheckpointInfo> {
        std::fs::remove_dir_all(&self.staging).ok();
        match self.leader.checkpoint_with(&self.staging, on_chunk) {
            Ok(info) => Ok(info),
            Err(e) => {
                std::fs::remove_dir_all(&self.staging).ok();
                Err(e.into())
            }
        }
    }
}

impl Drop for ResyncTicket {
    fn drop(&mut self) {
        // Abandoned or completed, the staging tree must not outlive the
        // ticket (after a successful install the rename already moved it, so
        // this is a no-op there).
        std::fs::remove_dir_all(&self.staging).ok();
    }
}

impl std::fmt::Debug for ReplicaGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaGroup")
            .field("partition", &self.partition)
            .field("status", &self.status())
            .finish()
    }
}

impl ReplicaGroup {
    /// Wrap the group in its ranked mutex ([`rank::REPLICA_GROUP`]): the
    /// group lock is held across follower pumps that apply into their
    /// stores, so it sits *outside* every storage-engine lock in the global
    /// lock order. Every shared `Mutex<ReplicaGroup>` in the workspace is
    /// built through this so the rank is declared in exactly one place.
    ///
    /// [`rank::REPLICA_GROUP`]: abase_util::lockrank::rank::REPLICA_GROUP
    pub fn into_mutex(self) -> abase_util::lockrank::RankedMutex<ReplicaGroup> {
        abase_util::lockrank::RankedMutex::new(abase_util::lockrank::rank::REPLICA_GROUP, self)
    }

    /// Create a fresh group for `partition` under `base_dir`: the first id in
    /// `replica_ids` starts as leader, the rest as followers, each replica in
    /// `base_dir/p<partition>-r<id>`.
    pub fn bootstrap(
        partition: u64,
        base_dir: impl AsRef<Path>,
        replica_ids: &[ReplicaId],
        config: GroupConfig,
    ) -> Result<Self> {
        assert!(
            !replica_ids.is_empty(),
            "a group needs at least one replica"
        );
        let base_dir = base_dir.as_ref();
        let leader_dir = replica_dir(base_dir, partition, replica_ids[0]);
        let mut replicas = Vec::with_capacity(replica_ids.len());
        for (i, &id) in replica_ids.iter().enumerate() {
            let dir = replica_dir(base_dir, partition, id);
            let db = Arc::new(Db::open(&dir, config.db)?);
            let (role, transport): (Role, Option<Box<dyn LogTransport>>) = if i == 0 {
                (Role::Leader, None)
            } else {
                (Role::Follower, Some(Box::new(Binlog::attach(&leader_dir))))
            };
            replicas.push(Replica {
                id,
                dir,
                db,
                role,
                alive: true,
                transport,
                needs_full_resync: false,
                resyncs: 0,
            });
        }
        Ok(Self {
            partition,
            config,
            replicas,
            remotes: Vec::new(),
            read_cursor: 0,
            epoch: 0,
        })
    }

    /// The partition this group serves.
    pub fn partition(&self) -> u64 {
        self.partition
    }

    /// The configured write concern.
    pub fn write_concern(&self) -> WriteConcern {
        self.config.write_concern
    }

    /// The group configuration.
    pub fn config(&self) -> &GroupConfig {
        &self.config
    }

    /// Group membership in declaration order.
    pub fn members(&self) -> Vec<ReplicaId> {
        self.replicas.iter().map(|r| r.id).collect()
    }

    /// The live leader's id.
    pub fn leader(&self) -> Option<ReplicaId> {
        self.replicas
            .iter()
            .find(|r| r.role == Role::Leader && r.alive)
            .map(|r| r.id)
    }

    /// The live leader's database handle.
    pub fn leader_db(&self) -> Result<Arc<Db>> {
        self.replicas
            .iter()
            .find(|r| r.role == Role::Leader && r.alive)
            .map(|r| Arc::clone(&r.db))
            .ok_or(Error::NoLeader)
    }

    /// A replica's current database handle (replaced wholesale on resync).
    pub fn db(&self, id: ReplicaId) -> Result<Arc<Db>> {
        self.find(id).map(|r| Arc::clone(&r.db))
    }

    /// A replica's on-disk directory.
    pub fn replica_dir(&self, id: ReplicaId) -> Result<PathBuf> {
        self.find(id).map(|r| r.dir.clone())
    }

    /// Is the replica marked reachable?
    pub fn is_alive(&self, id: ReplicaId) -> bool {
        self.find(id).map(|r| r.alive).unwrap_or(false)
    }

    /// Highest LSN `id` has applied.
    pub fn acked_lsn(&self, id: ReplicaId) -> Result<Lsn> {
        self.find(id).map(|r| r.db.last_seq())
    }

    /// The live leader's current LSN (what followers converge toward).
    pub fn leader_lsn(&self) -> Result<Lsn> {
        self.leader_db().map(|db| db.last_seq())
    }

    /// Records replica `id` currently trails the live leader by (0 for the
    /// leader itself). `Err(NoLeader)` while a failover is pending.
    pub fn replica_lag(&self, id: ReplicaId) -> Result<Lsn> {
        let leader = self.leader_lsn()?;
        Ok(leader.saturating_sub(self.acked_lsn(id)?))
    }

    /// Replicas able to serve reads right now: alive, not awaiting a full
    /// resync (divergent history must never be served), and — when `min_lsn`
    /// is given — applied at least that LSN. Leader included.
    pub fn readable_replicas(&self, min_lsn: Option<Lsn>) -> Vec<ReplicaId> {
        self.replicas
            .iter()
            .filter(|r| r.alive && !r.needs_full_resync)
            .filter(|r| min_lsn.is_none_or(|lsn| r.db.last_seq() >= lsn))
            .map(|r| r.id)
            .collect()
    }

    /// Live replicas (leader included) whose applied LSN is at least `lsn`,
    /// plus connected remote followers whose `REPLCONF ACK` reached it.
    ///
    /// A replica flagged for full resync never counts: its `last_seq` may
    /// include divergent records the group's acked history replaced, so
    /// counting it would let a write concern ack on state the replica does
    /// not actually hold.
    pub fn acked_count(&self, lsn: Lsn) -> usize {
        self.replicas
            .iter()
            .filter(|r| r.alive && !r.needs_full_resync && r.db.last_seq() >= lsn)
            .count()
            + self.remote_acked(lsn)
    }

    /// Connected remote followers whose acked LSN reached `lsn`.
    fn remote_acked(&self, lsn: Lsn) -> usize {
        self.remotes
            .iter()
            .filter(|r| r.state.is_connected() && r.state.acked() >= lsn)
            .count()
    }

    /// Register (or re-register after a reconnect) a follower living in
    /// another process. The returned state is shared with the replica
    /// connection thread: acks recorded there immediately count toward
    /// write concerns and `WAIT`. The second element is this registration's
    /// *generation*, which the connection hands back to
    /// [`RemoteFollowerState::disconnect`] at teardown — a superseded
    /// connection's slow death must never mark the live one down. The id
    /// must not collide with a local member. Re-registration resets the ack
    /// watermark — the follower re-acks its true LSN on its first pump.
    pub fn register_remote_follower(
        &mut self,
        id: ReplicaId,
    ) -> Result<(Arc<RemoteFollowerState>, u64)> {
        if self.find(id).is_ok() {
            return Err(Error::AlreadyMember(id));
        }
        // Prune disconnected strangers: anonymous followers reconnect under
        // fresh ids, and their dead registrations must not linger.
        self.remotes
            .retain(|r| r.state.is_connected() || r.id == id);
        if let Some(existing) = self.remotes.iter().find(|r| r.id == id) {
            // Bump the generation *before* resetting the watermark: from
            // that instant the old connection's generation-checked acks are
            // refused, so they cannot land after the reset.
            // ORDER: SeqCst; the bump-then-reset must be totally ordered
            // against `record_ack`'s check-then-fetch_max — with anything
            // weaker an old-generation ack could interleave after the reset.
            let generation = existing.state.generation.fetch_add(1, Ordering::SeqCst) + 1;
            existing.state.acked.store(0, Ordering::SeqCst);
            existing.state.connected.store(true, Ordering::SeqCst);
            return Ok((Arc::clone(&existing.state), generation));
        }
        let state = Arc::new(RemoteFollowerState::default());
        // ORDER: SeqCst; same total order as the reconnect arm above.
        let generation = state.generation.fetch_add(1, Ordering::SeqCst) + 1;
        state.connected.store(true, Ordering::SeqCst);
        self.remotes.push(RemoteFollower {
            id,
            state: Arc::clone(&state),
        });
        Ok((state, generation))
    }

    /// Drop a remote follower from the registry entirely (it stops counting
    /// in quorum denominators too).
    pub fn unregister_remote_follower(&mut self, id: ReplicaId) {
        self.remotes.retain(|r| r.id != id);
    }

    /// `(id, acked LSN, connected)` per registered remote follower.
    pub fn remote_followers(&self) -> Vec<(ReplicaId, Lsn, bool)> {
        self.remotes
            .iter()
            .map(|r| (r.id, r.state.acked(), r.state.is_connected()))
            .collect()
    }

    /// Write `key = value` through the leader and enforce the group's write
    /// concern; returns the write's LSN.
    pub fn put(
        &mut self,
        key: &[u8],
        value: &[u8],
        expires_at: Option<SimTime>,
        now: SimTime,
    ) -> Result<Lsn> {
        let leader = self.leader_db()?;
        // The write's own returned LSN, not `last_seq()`: with the striped
        // engine, concurrent writers can leave the visible watermark
        // momentarily behind this write's seq (or ahead of it, crediting us
        // with someone else's write).
        let lsn = leader.put(key, value, expires_at, now)?;
        self.commit(lsn)?;
        Ok(lsn)
    }

    /// Delete `key` through the leader under the group's write concern.
    pub fn delete(&mut self, key: &[u8], now: SimTime) -> Result<Lsn> {
        let leader = self.leader_db()?;
        let lsn = leader.delete(key, now)?;
        self.commit(lsn)?;
        Ok(lsn)
    }

    /// Replicas (leader included) the configured write concern requires.
    /// *Connected* remote followers are members — a quorum spans processes —
    /// while disconnected ones drop out of the denominator (Redis
    /// `min-replicas-to-write` semantics): a follower that went away, or a
    /// stale registration from a reconnect, must not inflate the quorum
    /// until writes can never commit.
    pub fn commit_need(&self) -> usize {
        let connected_remotes = self
            .remotes
            .iter()
            .filter(|r| r.state.is_connected())
            .count();
        match self.config.write_concern {
            WriteConcern::Quorum => (self.replicas.len() + connected_remotes) / 2 + 1,
            WriteConcern::Async => 1,
            WriteConcern::All => {
                self.replicas.iter().filter(|r| r.alive).count() + connected_remotes
            }
        }
    }

    /// Enforce the configured write concern for everything up to `lsn` (used
    /// directly when writes went to [`ReplicaGroup::leader_db`] out-of-band,
    /// e.g. through a table engine executing RESP commands). Retries the pump
    /// until the concern holds or `wait_timeout` expires; a dead follower
    /// therefore bounds the wait instead of failing the write outright while
    /// a transiently stalled one still gets time to catch up.
    pub fn commit(&mut self, lsn: Lsn) -> Result<usize> {
        if self.config.write_concern == WriteConcern::Async {
            return Ok(1);
        }
        let need = self.commit_need();
        let deadline = Instant::now() + self.config.wait_timeout;
        self.replicate_until(lsn, need, deadline)
    }

    /// Ship the leader's log to followers until `need` replicas (leader
    /// included) have applied `lsn`, pumping as few followers as possible and
    /// retrying until `deadline`.
    fn replicate_until(&mut self, lsn: Lsn, need: usize, deadline: Instant) -> Result<usize> {
        self.leader_db()?.flush_wal()?;
        loop {
            let acked = self.acked_count(lsn);
            if acked >= need {
                return Ok(acked);
            }
            let progressed = self.pump_lagging(lsn, need)?;
            let acked = self.acked_count(lsn);
            if acked >= need {
                return Ok(acked);
            }
            if Instant::now() >= deadline {
                return Err(Error::NoQuorum { need, acked });
            }
            if !progressed {
                // Nothing moved this pass; yield briefly while waiting out
                // the timeout (a stalled follower may recover, and once
                // followers sit across a real network, acks arrive async).
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    /// One pump pass over live followers below `lsn`, stopping early once
    /// `need` replicas ack. Returns whether any follower made progress
    /// (applied records or completed a resync).
    fn pump_lagging(&mut self, lsn: Lsn, need: usize) -> Result<bool> {
        // A divergent (needs-resync) follower is lagging regardless of its
        // raw LSN: it cannot ack until a resync replaces its history.
        let lagging: Vec<(ReplicaId, Lsn, u64)> = self
            .replicas
            .iter()
            .filter(|r| {
                r.alive
                    && r.role == Role::Follower
                    && (r.db.last_seq() < lsn || r.needs_full_resync)
            })
            .map(|r| (r.id, r.db.last_seq(), r.resyncs))
            .collect();
        let mut progressed = false;
        for (id, seq_before, resyncs_before) in lagging {
            self.pump_follower(id)?;
            let r = self.find(id)?;
            if r.db.last_seq() != seq_before || r.resyncs != resyncs_before {
                progressed = true;
            }
            if self.acked_count(lsn) >= need {
                break;
            }
        }
        Ok(progressed)
    }

    /// Pump until at least `numreplicas` *followers* have applied `lsn` or
    /// `timeout` expires (Redis `WAIT` semantics: the leader itself is not
    /// counted, and falling short of the ask is the answer — the returned
    /// count — not an error). `Duration::ZERO` makes a single pass.
    pub fn wait(&mut self, lsn: Lsn, numreplicas: usize, timeout: Duration) -> Result<usize> {
        let deadline = Instant::now() + timeout;
        let members = self.replicas.len()
            + self
                .remotes
                .iter()
                .filter(|r| r.state.is_connected())
                .count();
        // Falling short of the ask is the answer (the returned count), but a
        // real storage fault must not masquerade as replication lag.
        match self.replicate_until(lsn, (numreplicas + 1).min(members), deadline) {
            Ok(_) | Err(Error::NoQuorum { .. }) => {}
            Err(e) => return Err(e),
        }
        Ok(self.followers_acked(lsn))
    }

    /// Followers (local and remote, the leader excluded) that have durably
    /// applied `lsn` — the number a `WAIT` reply reports.
    pub fn followers_acked(&self, lsn: Lsn) -> usize {
        self.replicas
            .iter()
            .filter(|r| {
                r.alive
                    && r.role == Role::Follower
                    && !r.needs_full_resync
                    && r.db.last_seq() >= lsn
            })
            .count()
            + self.remote_acked(lsn)
    }

    /// One non-blocking advance pass toward `lsn`: flush the leader's log and
    /// shallow-pump every lagging live follower, *without* running full
    /// resyncs. Lock-holding callers use this plus the resync ticket API to
    /// keep long checkpoint copies outside their critical section.
    pub fn advance(&mut self, lsn: Lsn) -> Result<AdvanceStatus> {
        self.leader_db()?.flush_wal()?;
        let ids: Vec<ReplicaId> = self
            .replicas
            .iter()
            .filter(|r| {
                r.alive
                    && r.role == Role::Follower
                    && (r.db.last_seq() < lsn || r.needs_full_resync)
            })
            .map(|r| r.id)
            .collect();
        let mut needs_resync = Vec::new();
        for id in ids {
            if self.pump_follower_shallow(id)? == PumpStatus::NeedsResync {
                needs_resync.push(id);
            }
        }
        Ok(AdvanceStatus {
            followers_acked: self.followers_acked(lsn),
            needs_resync,
        })
    }

    /// Ship pending log to every live follower (the periodic `Async`
    /// catch-up; cluster simulators call this once per tick).
    pub fn tick(&mut self) -> Result<()> {
        if let Ok(leader) = self.leader_db() {
            leader.flush_wal()?;
        }
        let ids: Vec<ReplicaId> = self
            .replicas
            .iter()
            .filter(|r| r.alive && r.role == Role::Follower)
            .map(|r| r.id)
            .collect();
        for id in ids {
            self.pump_follower(id)?;
        }
        self.refresh_lag_gauges();
        Ok(())
    }

    /// Publish the per-follower LSN lag gauges (local replicas and remote
    /// socket followers alike) from the current group state.
    pub fn refresh_lag_gauges(&self) {
        if !abase_obs::enabled() {
            return;
        }
        let Ok(leader_lsn) = self.leader_lsn() else {
            return;
        };
        for r in &self.replicas {
            if r.role == Role::Follower && r.alive {
                crate::metrics::FOLLOWER_LAG.set(
                    &r.id.to_string(),
                    leader_lsn.saturating_sub(r.db.last_seq()) as i64,
                );
            }
        }
        for &(id, acked, connected) in &self.status().remote_followers {
            if connected {
                crate::metrics::FOLLOWER_LAG
                    .set(&id.to_string(), leader_lsn.saturating_sub(acked) as i64);
            }
        }
    }

    /// Read `key` at the requested consistency level.
    pub fn read(
        &mut self,
        key: &[u8],
        consistency: ReadConsistency,
        now: SimTime,
    ) -> Result<ReadResult> {
        self.read_routed(key, consistency, now).map(|r| r.result)
    }

    /// Read `key` at the requested consistency level, reporting which replica
    /// served it and the LSN lag observed at read time. `Eventual` and fenced
    /// reads round-robin over qualifying replicas; a replica awaiting a full
    /// resync never serves (its history may be divergent).
    pub fn read_routed(
        &mut self,
        key: &[u8],
        consistency: ReadConsistency,
        now: SimTime,
    ) -> Result<RoutedRead> {
        let replica = match consistency {
            ReadConsistency::Leader => self
                .replicas
                .iter()
                .position(|r| r.role == Role::Leader && r.alive)
                .ok_or(Error::NoLeader)?,
            ReadConsistency::Eventual => self
                .pick_replica(|r| !r.needs_full_resync)
                .ok_or(Error::NoLeader)?,
            ReadConsistency::ReadYourWrites(lsn) => self
                .pick_replica(|r| !r.needs_full_resync && r.db.last_seq() >= lsn)
                .ok_or(Error::NoQuorum { need: 1, acked: 0 })?,
        };
        self.serve_from(replica, key, now)
    }

    /// Read `key` from a *specific* replica — the entry point for an external
    /// routing layer (the proxy plane's `ReadRouter`) that picked the replica
    /// from the MetaServer's view. The group re-validates the choice against
    /// its authoritative state: a dead or divergent replica is refused, and a
    /// replica below `min_lsn` fails the fence instead of serving stale data
    /// (the router's view may be a heartbeat behind).
    pub fn read_at(
        &self,
        id: ReplicaId,
        key: &[u8],
        min_lsn: Option<Lsn>,
        now: SimTime,
    ) -> Result<RoutedRead> {
        let idx = self.find_index(id)?;
        let r = &self.replicas[idx];
        if !r.alive || r.needs_full_resync {
            return Err(Error::ReplicaUnavailable(id));
        }
        if let Some(need) = min_lsn {
            let lsn = r.db.last_seq();
            if lsn < need {
                return Err(Error::StaleReplica {
                    replica: id,
                    lsn,
                    need,
                });
            }
        }
        self.serve_from(idx, key, now)
    }

    /// Serve a read from the replica at `idx`, stamping provenance.
    fn serve_from(&self, idx: usize, key: &[u8], now: SimTime) -> Result<RoutedRead> {
        let r = &self.replicas[idx];
        let replica_lsn = r.db.last_seq();
        let leader_lsn = self
            .replicas
            .iter()
            .find(|x| x.role == Role::Leader && x.alive)
            .map(|x| x.db.last_seq())
            .unwrap_or(replica_lsn);
        Ok(RoutedRead {
            result: r.db.get(key, now)?,
            replica: r.id,
            replica_lsn,
            lag: leader_lsn.saturating_sub(replica_lsn),
        })
    }

    /// Round-robin over live replicas passing `filter`.
    fn pick_replica(&mut self, filter: impl Fn(&Replica) -> bool) -> Option<usize> {
        let n = self.replicas.len();
        for step in 0..n {
            let idx = (self.read_cursor + step) % n;
            let r = &self.replicas[idx];
            if r.alive && filter(r) {
                self.read_cursor = (idx + 1) % n;
                return Some(idx);
            }
        }
        None
    }

    /// Mark a replica unreachable (node failure). Writes and leader reads
    /// fail until [`ReplicaGroup::promote`] if the leader died.
    pub fn fail_replica(&mut self, id: ReplicaId) -> Result<()> {
        self.find_mut(id)?.alive = false;
        Ok(())
    }

    /// Mark a previously failed replica reachable again. Its next pump either
    /// resumes WAL tailing or, if it fell off the log, full-resyncs.
    pub fn revive_replica(&mut self, id: ReplicaId) -> Result<()> {
        self.find_mut(id)?.alive = true;
        Ok(())
    }

    /// A replica's LSN for promotion planning: `None` when it is dead or
    /// carries unreconciled (divergent) history — its `last_seq` counts
    /// records the group never acked, so electing it could resurrect writes
    /// the current history already replaced. The MetaServer's failover
    /// planner skips `None` candidates.
    pub fn promotable_lsn(&self, id: ReplicaId) -> Option<Lsn> {
        self.find(id)
            .ok()
            .filter(|r| r.alive && !r.needs_full_resync)
            .map(|r| r.db.last_seq())
    }

    /// Elect the most-caught-up live follower as leader after the old leader
    /// died. Followers re-attach their binlogs to the new leader. Because log
    /// application is strictly in order, the follower with the highest
    /// applied LSN holds a superset of every write any follower ever acked —
    /// so no acknowledged write is lost. A follower flagged for full resync
    /// (a revived ex-leader with a divergent tail) is never a candidate: its
    /// LSN counts history the group may have replaced.
    pub fn promote(&mut self) -> Result<ReplicaId> {
        if self
            .replicas
            .iter()
            .any(|r| r.role == Role::Leader && r.alive)
        {
            return Err(Error::LeaderStillAlive);
        }
        let winner = self
            .replicas
            .iter()
            .filter(|r| r.alive && r.role == Role::Follower && !r.needs_full_resync)
            .max_by(|a, b| {
                a.db.last_seq()
                    .cmp(&b.db.last_seq())
                    // Deterministic tie-break: prefer the lowest id.
                    .then(b.id.cmp(&a.id))
            })
            .map(|r| r.id)
            .ok_or(Error::NoPromotionCandidate)?;
        let leader_dir = self.find(winner)?.dir.clone();
        for r in &mut self.replicas {
            if r.id == winner {
                r.role = Role::Leader;
                r.transport = None;
            } else {
                // Everyone else — including the dead ex-leader — becomes a
                // follower of the winner. Demoting the old leader here is
                // what prevents split brain: if it is later revived it tails
                // the new leader instead of silently resuming leadership.
                // Fresh attach: duplicate records dedup on apply; if the new
                // leader already rotated past what a follower needs, the gap
                // path triggers a full resync. An ex-leader whose unacked
                // tail diverged resyncs the same way (its WAL is discarded
                // for a checkpoint of the new leader).
                if r.role == Role::Leader {
                    // A dead ex-leader may carry unacked records that share
                    // sequence numbers with the new leader's history; WAL
                    // shipping alone cannot reconcile that, so force a
                    // checkpoint resync before it ever serves again.
                    r.needs_full_resync = true;
                }
                r.role = Role::Follower;
                r.transport = Some(Box::new(Binlog::attach(&leader_dir)));
            }
        }
        // Leadership changed: any in-flight resync copy from the old leader
        // must not install (its ticket carries the previous epoch).
        self.epoch += 1;
        Ok(winner)
    }

    /// Replace a dead member with a freshly reconstructed replica whose data
    /// directory `dir` was seeded by [`crate::failover`]. The new replica
    /// opens the copied state and starts tailing the current leader.
    pub fn adopt_replica(
        &mut self,
        dead: ReplicaId,
        new_id: ReplicaId,
        dir: PathBuf,
    ) -> Result<()> {
        let leader_dir = {
            let leader = self
                .replicas
                .iter()
                .find(|r| r.role == Role::Leader && r.alive)
                .ok_or(Error::NoLeader)?;
            leader.dir.clone()
        };
        let slot = self.find_index(dead)?;
        let db = Arc::new(Db::open(&dir, self.config.db)?);
        self.replicas[slot] = Replica {
            id: new_id,
            dir,
            db,
            role: Role::Follower,
            alive: true,
            transport: Some(Box::new(Binlog::attach(&leader_dir))),
            needs_full_resync: false,
            resyncs: 0,
        };
        // Membership changed: stale resync tickets must not install.
        self.epoch += 1;
        // Catch the newcomer up to the leader's current position.
        self.pump_follower(new_id)
    }

    /// Pump one follower's binlog: apply newly shipped records; on a gap,
    /// full-resync from a leader checkpoint and continue tailing from there.
    pub fn pump_follower(&mut self, id: ReplicaId) -> Result<()> {
        // Two rounds maximum: a gap resolves through resync, after which the
        // second poll must succeed (the cursor sits at a live position).
        for _ in 0..2 {
            match self.pump_follower_shallow(id)? {
                PumpStatus::Idle | PumpStatus::Applied => return Ok(()),
                PumpStatus::NeedsResync => self.resync_follower(id)?,
            }
        }
        Ok(())
    }

    /// One poll-and-apply pass for a follower, *without* resolving gaps:
    /// [`PumpStatus::NeedsResync`] tells the caller a full resync is due
    /// (which [`ReplicaGroup::pump_follower`] runs inline and lock-holding
    /// callers run through the ticket API).
    pub fn pump_follower_shallow(&mut self, id: ReplicaId) -> Result<PumpStatus> {
        let idx = self.find_index(id)?;
        {
            let r = &self.replicas[idx];
            if !r.alive || r.role != Role::Follower {
                return Ok(PumpStatus::Idle);
            }
            if r.needs_full_resync {
                return Ok(PumpStatus::NeedsResync);
            }
            // Chaos site: one follower's pump stalls (its peers still ship).
            if failpoint::enabled()
                && failpoint::check("group.pump", &r.dir.display().to_string())
                    == Some(FaultAction::Stall)
            {
                return Ok(PumpStatus::Applied);
            }
        }
        let pump_timer = abase_obs::Timer::start();
        let outcome = {
            let r = &mut self.replicas[idx];
            let Some(transport) = r.transport.as_mut() else {
                return Ok(PumpStatus::Idle);
            };
            transport.poll()?
        };
        match outcome {
            Poll::Records(records) => {
                let r = &mut self.replicas[idx];
                crate::metrics::SHIP_RECORDS.add(records.len() as u64);
                for record in &records {
                    match r.db.apply_replicated(record) {
                        Ok(_) => {}
                        Err(StorageError::InvalidState(_)) => {
                            // LSN gap inside the stream (possible after a
                            // leader change): fall back to full resync.
                            return Ok(PumpStatus::NeedsResync);
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
                // Acknowledge through the transport: a no-op for the
                // filesystem binlog (the leader reads `Db::last_seq`
                // directly), a `REPLCONF ACK` for socket transports whose
                // leader lives in another process.
                let lsn = r.db.last_seq();
                if let Some(t) = r.transport.as_mut() {
                    t.ack(lsn)?;
                    crate::metrics::ACKS.inc();
                }
                pump_timer.observe(&crate::metrics::PUMP_MICROS);
                Ok(PumpStatus::Applied)
            }
            Poll::Gap => Ok(PumpStatus::NeedsResync),
        }
    }

    /// Prepare a full resync of `id` from the current leader. The returned
    /// ticket owns a staging directory next to the follower's; nothing about
    /// the follower changes until [`ReplicaGroup::complete_resync`].
    pub fn begin_resync(&mut self, id: ReplicaId) -> Result<ResyncTicket> {
        let dir = self.find(id)?.dir.clone();
        self.stage_ticket(id, dir, StageTarget::Resync)
    }

    /// Prepare staging a **new** member `new_id` (its replica directory will
    /// live under `base_dir`, laid out by [`replica_dir`]) from a leader
    /// checkpoint — the entry point live partition migration and replica
    /// re-seeding share with the gap-resync path: same ticket, same staged
    /// copy, same epoch guard. Nothing about the group changes until
    /// [`ReplicaGroup::complete_join`].
    pub fn begin_join(&mut self, new_id: ReplicaId, base_dir: &Path) -> Result<ResyncTicket> {
        if self.find(new_id).is_ok() {
            return Err(Error::AlreadyMember(new_id));
        }
        let dir = replica_dir(base_dir, self.partition, new_id);
        self.stage_ticket(new_id, dir, StageTarget::Join)
    }

    /// The shared staging entry: a ticket copying the current leader's
    /// checkpoint toward `install_dir`, valid for the current epoch only.
    fn stage_ticket(
        &mut self,
        id: ReplicaId,
        install_dir: PathBuf,
        target: StageTarget,
    ) -> Result<ResyncTicket> {
        let leader = self.leader_db()?;
        let leader_dir = {
            let l = self
                .replicas
                .iter()
                .find(|r| r.role == Role::Leader && r.alive)
                .ok_or(Error::NoLeader)?;
            l.dir.clone()
        };
        // Unique per ticket: two connections may race resyncs for the same
        // follower with their group lock dropped, and sharing one staging
        // path would let one copy clobber the other mid-stream.
        static STAGING_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let staging = install_dir.with_extension(format!(
            "resync-{}",
            STAGING_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        Ok(ResyncTicket {
            follower: id,
            epoch: self.epoch,
            leader,
            leader_dir,
            staging,
            install_dir,
            target,
        })
    }

    /// Atomically install a completed resync copy: swap the staged checkpoint
    /// into the follower's directory, reopen it, and seek its binlog to where
    /// the checkpoint ends. Refuses a ticket from an older epoch (the
    /// leadership or membership changed while the copy ran) — the caller
    /// simply retries against the new leader.
    pub fn complete_resync(&mut self, ticket: ResyncTicket, info: CheckpointInfo) -> Result<()> {
        if ticket.epoch != self.epoch || ticket.target != StageTarget::Resync {
            std::fs::remove_dir_all(&ticket.staging).ok();
            return Err(Error::ResyncSuperseded);
        }
        let idx = match self.find_index(ticket.follower) {
            Ok(idx) => idx,
            Err(e) => {
                std::fs::remove_dir_all(&ticket.staging).ok();
                return Err(e);
            }
        };
        if self.replicas[idx].role != Role::Follower {
            std::fs::remove_dir_all(&ticket.staging).ok();
            return Err(Error::ResyncSuperseded);
        }
        let dir = self.replicas[idx].dir.clone();
        install_staged(&ticket.staging, &dir)?;
        let db = Arc::new(Db::open(&dir, self.config.db)?);
        let r = &mut self.replicas[idx];
        r.db = db;
        let mut binlog = Binlog::attach(&ticket.leader_dir);
        binlog.seek(info.wal_segment, info.wal_offset);
        r.transport = Some(Box::new(binlog));
        r.needs_full_resync = false;
        r.resyncs += 1;
        crate::metrics::RESYNCS.inc();
        Ok(())
    }

    /// Atomically install a staged **join**: swap the staged checkpoint into
    /// the new member's directory, open it, and add it to the group as a
    /// follower tailing the leader from where the checkpoint ends. Refuses a
    /// ticket from an older epoch — leadership or membership changed while
    /// the copy ran, so the staged bytes may descend from a deposed leader.
    /// Membership changes, so the epoch bumps (any other in-flight ticket is
    /// thereby superseded).
    pub fn complete_join(&mut self, ticket: ResyncTicket, info: CheckpointInfo) -> Result<()> {
        if ticket.epoch != self.epoch || ticket.target != StageTarget::Join {
            std::fs::remove_dir_all(&ticket.staging).ok();
            return Err(Error::ResyncSuperseded);
        }
        if self.find(ticket.follower).is_ok() {
            std::fs::remove_dir_all(&ticket.staging).ok();
            return Err(Error::AlreadyMember(ticket.follower));
        }
        let dir = ticket.install_dir.clone();
        std::fs::remove_dir_all(&dir).ok();
        std::fs::rename(&ticket.staging, &dir).map_err(StorageError::Io)?;
        let db = match Db::open(&dir, self.config.db) {
            Ok(db) => Arc::new(db),
            Err(e) => {
                // The copy was renamed into place but never became a member:
                // reclaim the directory so a failed join leaves no orphan.
                std::fs::remove_dir_all(&dir).ok();
                return Err(e.into());
            }
        };
        let mut binlog = Binlog::attach(&ticket.leader_dir);
        binlog.seek(info.wal_segment, info.wal_offset);
        self.replicas.push(Replica {
            id: ticket.follower,
            dir,
            db,
            role: Role::Follower,
            alive: true,
            transport: Some(Box::new(binlog)),
            needs_full_resync: false,
            resyncs: 0,
        });
        self.epoch += 1;
        Ok(())
    }

    /// Remove a member from the group (migration source teardown, or
    /// discarding an aborted staged join). The member may be dead or alive,
    /// but never the live leader — transfer leadership with
    /// [`ReplicaGroup::handover`] first. Returns the removed replica's data
    /// directory so the caller can reclaim the disk. Membership changes, so
    /// the epoch bumps.
    pub fn remove_member(&mut self, id: ReplicaId) -> Result<PathBuf> {
        let idx = self.find_index(id)?;
        if self.replicas[idx].role == Role::Leader && self.replicas[idx].alive {
            return Err(Error::MemberIsLeader(id));
        }
        if self.replicas.len() <= 1 {
            return Err(Error::NoPromotionCandidate);
        }
        let removed = self.replicas.remove(idx);
        self.epoch += 1;
        Ok(removed.dir)
    }

    /// Planned leadership transfer (the migration cut-over path when the
    /// moving replica leads): drain `to` to the leader's exact LSN, then
    /// switch roles — `to` leads, the old leader follows. Unlike crash
    /// [`ReplicaGroup::promote`], both sides are alive and byte-identical at
    /// the handover LSN, so no history diverges and nobody needs a resync.
    /// Fails with [`Error::StaleReplica`] if `to` cannot be drained to the
    /// leader's LSN (it keeps its old role and nothing changes).
    pub fn handover(&mut self, to: ReplicaId) -> Result<()> {
        let old_leader = self.leader().ok_or(Error::NoLeader)?;
        if to == old_leader {
            return Ok(());
        }
        {
            let r = self.find(to)?;
            if !r.alive || r.role != Role::Follower || r.needs_full_resync {
                return Err(Error::ReplicaUnavailable(to));
            }
        }
        // Final drain: no new writes can land mid-handover (the caller owns
        // the group), so a bounded pump loop converges or the target is
        // genuinely stuck.
        self.drain_to_leader(to)?;
        let need = self.leader_lsn()?;
        let new_leader_dir = self.find(to)?.dir.clone();
        // Followers that already hold the full history (the drained old
        // leader, any caught-up bystander) seek straight to the new leader's
        // live append position; laggards re-attach from the retained log and
        // dedup forward (the same catch-up path a crash promotion uses).
        // Flush the new leader's group-commit buffer first: `wal_position`
        // reports only flushed bytes, and frames still sitting in the buffer
        // must land below the seek point, not after it — a follower seeking
        // past them would silently skip records until the gap check fired.
        self.find(to)?.db.flush_wal()?;
        let wal_position = self.find(to)?.db.wal_position();
        for r in &mut self.replicas {
            if r.id == to {
                r.role = Role::Leader;
                r.transport = None;
            } else {
                // The old leader holds exactly the new leader's history (the
                // drain above made the LSNs equal before any role changed),
                // so it re-attaches as a plain follower — no divergent tail,
                // no forced resync.
                r.role = Role::Follower;
                let mut binlog = Binlog::attach(&new_leader_dir);
                // A divergent replica's raw LSN lies; it resyncs regardless.
                if !r.needs_full_resync && r.db.last_seq() >= need {
                    binlog.seek(wal_position.0, wal_position.1);
                }
                r.transport = Some(Box::new(binlog));
            }
        }
        self.epoch += 1;
        Ok(())
    }

    /// Drain `id` to the live leader's exact LSN: flush the leader's log and
    /// pump the follower in a bounded loop (the caller owns the group, so no
    /// new writes land mid-drain). Both cut-over paths — the leadership
    /// [`ReplicaGroup::handover`] and a follower move's final catch-up —
    /// share this one drain. [`Error::StaleReplica`] if it cannot converge.
    pub fn drain_to_leader(&mut self, id: ReplicaId) -> Result<()> {
        let need = self.leader_lsn()?;
        self.leader_db()?.flush_wal()?;
        for _ in 0..8 {
            if self.acked_lsn(id)? >= need {
                return Ok(());
            }
            self.pump_follower(id)?;
        }
        let lsn = self.acked_lsn(id)?;
        if lsn >= need {
            return Ok(());
        }
        Err(Error::StaleReplica {
            replica: id,
            lsn,
            need,
        })
    }

    /// Rebuild a follower from a leader checkpoint (it fell off the log).
    /// Staged: a copy that fails mid-stream leaves the follower untouched on
    /// its old (valid prefix) state instead of destroying it. The transport
    /// gets first refusal — a socket transport pulls the checkpoint from its
    /// *remote* leader; filesystem transports return `None` and the staged
    /// [`ResyncTicket`] copy runs against the local leader instead. Either
    /// way the gap handling a pump sees is transport-agnostic.
    fn resync_follower(&mut self, id: ReplicaId) -> Result<()> {
        if self.try_transport_resync(id)? {
            return Ok(());
        }
        let ticket = self.begin_resync(id)?;
        let info = ticket.copy()?;
        self.complete_resync(ticket, info)
    }

    /// Ask the follower's transport to fetch a checkpoint (the cross-process
    /// resync path); install it through the same staged swap the ticket
    /// machinery uses. `Ok(false)` when the transport has no fetch side.
    fn try_transport_resync(&mut self, id: ReplicaId) -> Result<bool> {
        let config = self.config.db;
        let idx = self.find_index(id)?;
        let r = &mut self.replicas[idx];
        let Some(transport) = r.transport.as_mut() else {
            return Ok(false);
        };
        static STAGING_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let staging = r.dir.with_extension(format!(
            "resync-net-{}",
            STAGING_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let Some(info) = transport.fetch_checkpoint(&staging)? else {
            return Ok(false);
        };
        install_staged(&staging, &r.dir)?;
        r.db = Arc::new(Db::open(&r.dir, config)?);
        let lsn = r.db.last_seq();
        if let Some(t) = r.transport.as_mut() {
            // `fetch_checkpoint` already left the cursor at the checkpoint's
            // edge (and renegotiated a socket stream); re-seeking would
            // clobber that negotiation for a redundant PSYNC.
            debug_assert_eq!(t.position(), Some((info.wal_segment, info.wal_offset)));
            t.ack(lsn)?;
        }
        r.needs_full_resync = false;
        r.resyncs += 1;
        crate::metrics::RESYNCS.inc();
        Ok(true)
    }

    /// Replace a follower's log transport (e.g. point it at a leader across
    /// a socket instead of the shared filesystem). The pump, gap handling,
    /// and ack accounting are transport-agnostic, so nothing else changes.
    pub fn set_follower_transport(
        &mut self,
        id: ReplicaId,
        transport: Box<dyn LogTransport>,
    ) -> Result<()> {
        let r = self.find_mut(id)?;
        if r.role != Role::Follower {
            return Err(Error::MemberIsLeader(id));
        }
        r.transport = Some(transport);
        Ok(())
    }

    /// Snapshot of the group's replication state.
    pub fn status(&self) -> GroupStatus {
        GroupStatus {
            partition: self.partition,
            leader: self.leader(),
            replicas: self
                .replicas
                .iter()
                .map(|r| ReplicaStatus {
                    id: r.id,
                    role: r.role,
                    alive: r.alive,
                    acked_lsn: r.db.last_seq(),
                    resyncs: r.resyncs,
                })
                .collect(),
            remote_followers: self.remote_followers(),
        }
    }

    fn find(&self, id: ReplicaId) -> Result<&Replica> {
        self.replicas
            .iter()
            .find(|r| r.id == id)
            .ok_or(Error::UnknownReplica(id))
    }

    fn find_mut(&mut self, id: ReplicaId) -> Result<&mut Replica> {
        self.replicas
            .iter_mut()
            .find(|r| r.id == id)
            .ok_or(Error::UnknownReplica(id))
    }

    fn find_index(&self, id: ReplicaId) -> Result<usize> {
        self.replicas
            .iter()
            .position(|r| r.id == id)
            .ok_or(Error::UnknownReplica(id))
    }
}

/// Directory layout: one subdirectory per (partition, replica).
pub fn replica_dir(base: &Path, partition: u64, id: ReplicaId) -> PathBuf {
    base.join(format!("p{partition}-r{id}"))
}

/// The staged install every placement change shares — resync tickets, joins,
/// and socket followers pulling remote checkpoints: tear out the live
/// directory and rename the fully staged copy into its place. The staged
/// tree was written completely before this runs, so a crash between the two
/// steps loses a replica *copy*, never a prefix of one.
pub(crate) fn install_staged(staging: &Path, dir: &Path) -> Result<()> {
    if dir.exists() {
        std::fs::remove_dir_all(dir).map_err(StorageError::Io)?;
    }
    std::fs::rename(staging, dir).map_err(StorageError::Io)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use abase_util::TestDir;

    fn group(tag: &str, concern: WriteConcern) -> (TestDir, ReplicaGroup) {
        let dir = TestDir::new(tag);
        let g = ReplicaGroup::bootstrap(
            1,
            dir.path(),
            &[10, 20, 30],
            GroupConfig {
                write_concern: concern,
                db: DbConfig::small_for_tests(),
                // Keep deliberate quorum failures fast in tests.
                wait_timeout: Duration::from_millis(10),
            },
        )
        .unwrap();
        (dir, g)
    }

    #[test]
    fn quorum_write_lands_on_majority() {
        let (_d, mut g) = group("quorum", WriteConcern::Quorum);
        let lsn = g.put(b"k", b"v", None, 0).unwrap();
        assert_eq!(lsn, 1);
        assert!(g.acked_count(lsn) >= 2);
        // Quorum pumps only as many followers as needed: the laggard catches
        // up on tick.
        g.tick().unwrap();
        assert_eq!(g.acked_count(lsn), 3);
    }

    #[test]
    fn all_concern_reaches_every_replica() {
        let (_d, mut g) = group("all", WriteConcern::All);
        let lsn = g.put(b"k", b"v", None, 0).unwrap();
        assert_eq!(g.acked_count(lsn), 3);
    }

    #[test]
    fn async_defers_shipping_to_tick() {
        let (_d, mut g) = group("async", WriteConcern::Async);
        let lsn = g.put(b"k", b"v", None, 0).unwrap();
        assert_eq!(g.acked_count(lsn), 1); // leader only
        g.tick().unwrap();
        assert_eq!(g.acked_count(lsn), 3);
    }

    #[test]
    fn read_consistency_levels() {
        let (_d, mut g) = group("consistency", WriteConcern::Async);
        let lsn = g.put(b"k", b"v", None, 0).unwrap();
        // Leader always sees its own write.
        let r = g.read(b"k", ReadConsistency::Leader, 0).unwrap();
        assert_eq!(r.value.as_deref(), Some(&b"v"[..]));
        // Fenced read never returns pre-write state: with lagging followers
        // it must route to a replica at/above the LSN (here: the leader).
        let r = g
            .read(b"k", ReadConsistency::ReadYourWrites(lsn), 0)
            .unwrap();
        assert_eq!(r.value.as_deref(), Some(&b"v"[..]));
        // Eventual may hit a stale follower — after tick it converges.
        g.tick().unwrap();
        for _ in 0..3 {
            let r = g.read(b"k", ReadConsistency::Eventual, 0).unwrap();
            assert_eq!(r.value.as_deref(), Some(&b"v"[..]));
        }
    }

    #[test]
    fn fenced_reads_prefer_caught_up_followers() {
        let (_d, mut g) = group("fence", WriteConcern::All);
        let lsn = g.put(b"k", b"v", None, 0).unwrap();
        // All three replicas qualify; reads rotate across them.
        let mut served = std::collections::HashSet::new();
        for _ in 0..3 {
            let before = g.read_cursor;
            g.read(b"k", ReadConsistency::ReadYourWrites(lsn), 0)
                .unwrap();
            served.insert(before);
        }
        assert!(served.len() >= 2, "fenced reads did not spread load");
    }

    #[test]
    fn quorum_fails_without_majority() {
        let (_d, mut g) = group("noquorum", WriteConcern::Quorum);
        g.fail_replica(20).unwrap();
        g.fail_replica(30).unwrap();
        match g.put(b"k", b"v", None, 0) {
            Err(Error::NoQuorum { need: 2, acked: 1 }) => {}
            other => panic!("expected NoQuorum, got {other:?}"),
        }
    }

    #[test]
    fn promotion_picks_most_caught_up_follower() {
        let (_d, mut g) = group("promote", WriteConcern::Async);
        for i in 0..10 {
            g.put(format!("k{i}").as_bytes(), b"v", None, 0).unwrap();
        }
        // Ship everything to follower 20 only; 30 stays at LSN 0.
        g.leader_db().unwrap().flush_wal().unwrap();
        g.pump_follower(20).unwrap();
        assert_eq!(g.acked_lsn(20).unwrap(), 10);
        assert_eq!(g.acked_lsn(30).unwrap(), 0);
        g.fail_replica(10).unwrap();
        assert_eq!(g.promote().unwrap(), 20);
        assert_eq!(g.leader(), Some(20));
        // The laggard re-attaches to the new leader and converges.
        g.tick().unwrap();
        assert_eq!(g.acked_lsn(30).unwrap(), 10);
        // Writes continue through the new leader.
        let lsn = g.put(b"after", b"x", None, 0).unwrap();
        assert_eq!(lsn, 11);
    }

    #[test]
    fn revived_ex_leader_does_not_reclaim_leadership() {
        let (_d, mut g) = group("splitbrain", WriteConcern::Async);
        // Leader 10 writes 5 records; followers fully caught up.
        for i in 0..5 {
            g.put(format!("k{i}").as_bytes(), b"v", None, 0).unwrap();
        }
        g.tick().unwrap();
        // Leader 10 writes 2 more that never ship (unacked divergent tail),
        // then dies.
        g.leader_db()
            .unwrap()
            .put(b"unacked-1", b"x", None, 0)
            .unwrap();
        g.leader_db()
            .unwrap()
            .put(b"unacked-2", b"x", None, 0)
            .unwrap();
        g.fail_replica(10).unwrap();
        let new_leader = g.promote().unwrap();
        assert_eq!(new_leader, 20);
        // The new leader writes its own history over the same LSNs.
        g.put(b"new-6", b"y", None, 0).unwrap();
        g.put(b"new-7", b"y", None, 0).unwrap();
        // Node 10 comes back: it must NOT be leader, and its divergent tail
        // must be discarded in favor of the new leader's history.
        g.revive_replica(10).unwrap();
        assert_eq!(
            g.leader(),
            Some(20),
            "revived ex-leader reclaimed leadership"
        );
        g.tick().unwrap();
        let db10 = g.db(10).unwrap();
        assert!(
            db10.get(b"unacked-1", 0).unwrap().value.is_none(),
            "divergent tail survived"
        );
        assert!(
            db10.get(b"new-6", 0).unwrap().value.is_some(),
            "new history missing"
        );
        assert_eq!(db10.last_seq(), g.leader_db().unwrap().last_seq());
        let s10 = g
            .status()
            .replicas
            .iter()
            .find(|r| r.id == 10)
            .cloned()
            .unwrap();
        assert_eq!(s10.role, Role::Follower);
        assert!(s10.resyncs >= 1, "ex-leader must full-resync");
    }

    #[test]
    fn promotion_requires_dead_leader_and_live_follower() {
        let (_d, mut g) = group("promote-guard", WriteConcern::Async);
        match g.promote() {
            Err(Error::LeaderStillAlive) => {}
            other => panic!("{other:?}"),
        }
        g.fail_replica(10).unwrap();
        g.fail_replica(20).unwrap();
        g.fail_replica(30).unwrap();
        match g.promote() {
            Err(Error::NoPromotionCandidate) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn follower_that_fell_off_the_log_resyncs() {
        let (_d, mut g) = group("resync", WriteConcern::Async);
        // First shipment establishes follower cursors.
        g.put(b"seed", b"v", None, 0).unwrap();
        g.tick().unwrap();
        // Leader flushes past the retention backlog without follower 20
        // pumping: its cursor's segment is rotated away.
        g.fail_replica(20).unwrap();
        let backlog = g.leader_db().unwrap().config().wal_retention_segments;
        let rounds = backlog + 2;
        for round in 0..rounds {
            for i in 0..30 {
                g.put(format!("r{round}-k{i}").as_bytes(), &[0u8; 64], None, 0)
                    .unwrap();
            }
            g.leader_db().unwrap().flush().unwrap();
        }
        // Node 20 comes back; catching up requires a full resync.
        g.revive_replica(20).unwrap();
        g.tick().unwrap();
        let status = g.status();
        let s20 = status.replicas.iter().find(|r| r.id == 20).unwrap();
        assert!(s20.resyncs >= 1, "expected a full resync");
        assert_eq!(s20.acked_lsn, g.leader_db().unwrap().last_seq());
        // And the data is really there.
        let last = format!("r{}-k29", rounds - 1);
        let r = g.db(20).unwrap().get(last.as_bytes(), 0).unwrap();
        assert!(r.value.is_some());
    }

    #[test]
    fn wait_timeout_returns_acked_so_far() {
        let (_d, mut g) = group("wait-timeout", WriteConcern::Async);
        let lsn = g.put(b"k", b"v", None, 0).unwrap();
        g.fail_replica(30).unwrap();
        // Asking for 2 follower acks with one follower dead: a single pass
        // reports 1 immediately...
        assert_eq!(g.wait(lsn, 2, Duration::ZERO).unwrap(), 1);
        // ...and a bounded wait returns the same count once the timeout
        // expires rather than blocking forever.
        let start = Instant::now();
        assert_eq!(g.wait(lsn, 2, Duration::from_millis(30)).unwrap(), 1);
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(25), "returned early");
        assert!(elapsed < Duration::from_secs(5), "did not respect timeout");
    }

    #[test]
    fn promote_skips_divergent_ex_leader() {
        let (_d, mut g) = group("promote-divergent", WriteConcern::Async);
        for i in 0..5 {
            g.put(format!("k{i}").as_bytes(), b"v", None, 0).unwrap();
        }
        g.tick().unwrap();
        // Leader 10 accumulates an unacked tail (LSN 7 > everyone's 5), dies.
        g.leader_db().unwrap().put(b"u1", b"x", None, 0).unwrap();
        g.leader_db().unwrap().put(b"u2", b"x", None, 0).unwrap();
        g.fail_replica(10).unwrap();
        assert_eq!(g.promote().unwrap(), 20);
        // 10 revives flagged for resync but is never pumped before the new
        // leader also dies. Its raw LSN (7) beats 30's (5) — promoting it
        // would resurrect the divergent tail.
        g.revive_replica(10).unwrap();
        g.fail_replica(20).unwrap();
        assert_eq!(
            g.promote().unwrap(),
            30,
            "divergent ex-leader must not win promotion"
        );
        assert!(g.db(30).unwrap().get(b"u1", 0).unwrap().value.is_none());
    }

    #[test]
    fn divergent_replica_never_counts_toward_write_concern() {
        let (_d, mut g) = group("divergent-ack", WriteConcern::Quorum);
        for i in 0..5 {
            g.put(format!("k{i}").as_bytes(), b"v", None, 0).unwrap();
        }
        g.tick().unwrap();
        // Leader 10 gains an unacked divergent tail (seq 6..7) and dies;
        // 20 takes over at seq 5.
        g.leader_db().unwrap().put(b"u1", b"x", None, 0).unwrap();
        g.leader_db().unwrap().put(b"u2", b"x", None, 0).unwrap();
        g.fail_replica(10).unwrap();
        assert_eq!(g.promote().unwrap(), 20);
        // 10 revives flagged for resync with a raw LSN (7) *above* the next
        // write's LSN (6); 30 is down, so the quorum hinges on 10.
        g.revive_replica(10).unwrap();
        g.fail_replica(30).unwrap();
        let lsn = g.put(b"k6", b"w", None, 0).unwrap();
        assert_eq!(lsn, 6);
        // The ack must be honest: 10 satisfied the quorum by actually
        // resyncing to the new history (divergent tail discarded), not by
        // counting its stale LSN.
        let db10 = g.db(10).unwrap();
        assert_eq!(
            db10.get(b"k6", 0).unwrap().value.as_deref(),
            Some(&b"w"[..]),
            "quorum acked on a replica that does not hold the write"
        );
        assert!(db10.get(b"u1", 0).unwrap().value.is_none());
        let s10 = g
            .status()
            .replicas
            .iter()
            .find(|r| r.id == 10)
            .cloned()
            .unwrap();
        assert!(s10.resyncs >= 1, "divergent replica must resync to ack");
    }

    #[test]
    fn stale_resync_ticket_is_refused_after_promotion() {
        let (_d, mut g) = group("stale-ticket", WriteConcern::Async);
        g.put(b"k", b"v", None, 0).unwrap();
        g.tick().unwrap();
        let ticket = g.begin_resync(30).unwrap();
        let info = ticket.copy().unwrap();
        // Leadership changes while the copy was (conceptually) in flight.
        g.fail_replica(10).unwrap();
        g.promote().unwrap();
        match g.complete_resync(ticket, info) {
            Err(Error::ResyncSuperseded) => {}
            other => panic!("expected ResyncSuperseded, got {other:?}"),
        }
        // The follower still works and converges against the new leader.
        g.put(b"after", b"w", None, 0).unwrap();
        g.tick().unwrap();
        assert_eq!(g.acked_lsn(30).unwrap(), g.leader_db().unwrap().last_seq());
    }

    #[test]
    fn failed_resync_copy_leaves_follower_intact() {
        let _guard = failpoint::ScopedInjector::enable();
        let (dir, mut g) = group("resync-fp", WriteConcern::Async);
        for i in 0..8 {
            g.put(format!("k{i}").as_bytes(), b"v", None, 0).unwrap();
        }
        g.tick().unwrap();
        let leader_dir = dir.path().join("p1-r10");
        // Follower 20's next poll reports a gap; the resulting checkpoint
        // copy dies mid-stream.
        failpoint::install(
            "binlog.poll",
            Some(leader_dir.to_str().unwrap()),
            FaultAction::Gap,
            0,
            1,
        );
        failpoint::install(
            "db.checkpoint",
            Some(leader_dir.to_str().unwrap()),
            FaultAction::Error,
            0,
            1,
        );
        let err = g.pump_follower(20);
        assert!(err.is_err(), "injected checkpoint failure must surface");
        // The follower's previous state survived the failed copy (the old
        // code deleted the live directory before copying).
        assert!(
            g.db(20).unwrap().get(b"k0", 0).unwrap().value.is_some(),
            "follower state destroyed by failed resync"
        );
        let staging_leaks: Vec<_> = std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("p1-r20.resync"))
            .collect();
        assert!(
            staging_leaks.is_empty(),
            "staging directories leaked: {staging_leaks:?}"
        );
        // With the fault gone the follower catches right back up.
        failpoint::clear();
        g.tick().unwrap();
        assert_eq!(g.acked_lsn(20).unwrap(), g.leader_db().unwrap().last_seq());
    }

    #[test]
    fn routed_reads_report_replica_and_lag() {
        let (_d, mut g) = group("routed", WriteConcern::Async);
        let lsn = g.put(b"k", b"v", None, 0).unwrap();
        // Nothing shipped yet: a leader read reports lag 0, and a follower
        // serving Eventual reports the real staleness.
        let r = g.read_routed(b"k", ReadConsistency::Leader, 0).unwrap();
        assert_eq!(r.replica, 10);
        assert_eq!(r.lag, 0);
        let mut follower_lags = Vec::new();
        for _ in 0..3 {
            let r = g.read_routed(b"k", ReadConsistency::Eventual, 0).unwrap();
            if r.replica != 10 {
                follower_lags.push(r.lag);
                assert!(r.result.value.is_none(), "unshipped write visible");
            }
        }
        assert!(follower_lags.iter().all(|&l| l == lsn));
        g.tick().unwrap();
        assert_eq!(g.replica_lag(20).unwrap(), 0);
        let r = g.read_routed(b"k", ReadConsistency::Eventual, 0).unwrap();
        assert_eq!(r.lag, 0);
        assert!(r.result.value.is_some());
    }

    #[test]
    fn read_at_enforces_the_fence_against_stale_routing() {
        let (_d, mut g) = group("read-at", WriteConcern::Async);
        let lsn = g.put(b"k", b"v", None, 0).unwrap();
        // Followers have not applied the write: a router that still believes
        // they are caught up must be refused, not served stale data.
        match g.read_at(20, b"k", Some(lsn), 0) {
            Err(Error::StaleReplica {
                replica: 20,
                lsn: 0,
                need,
            }) => assert_eq!(need, lsn),
            other => panic!("expected StaleReplica, got {other:?}"),
        }
        // The leader satisfies the same fence.
        let r = g.read_at(10, b"k", Some(lsn), 0).unwrap();
        assert_eq!(r.result.value.as_deref(), Some(&b"v"[..]));
        // A dead replica is refused outright.
        g.fail_replica(20).unwrap();
        match g.read_at(20, b"k", None, 0) {
            Err(Error::ReplicaUnavailable(20)) => {}
            other => panic!("expected ReplicaUnavailable, got {other:?}"),
        }
        assert_eq!(g.readable_replicas(None), vec![10, 30]);
        assert_eq!(g.readable_replicas(Some(lsn)), vec![10]);
    }

    #[test]
    fn eventual_reads_never_served_by_divergent_replicas() {
        let (_d, mut g) = group("no-divergent-reads", WriteConcern::Async);
        for i in 0..5 {
            g.put(format!("k{i}").as_bytes(), b"v", None, 0).unwrap();
        }
        g.tick().unwrap();
        // Leader 10 takes a divergent unacked tail and dies; 20 leads.
        g.leader_db()
            .unwrap()
            .put(b"unacked", b"x", None, 0)
            .unwrap();
        g.fail_replica(10).unwrap();
        g.promote().unwrap();
        // 10 revives flagged for resync: until the resync runs, no read may
        // land on it (its history contains records the group never acked).
        g.revive_replica(10).unwrap();
        for _ in 0..6 {
            let r = g
                .read_routed(b"unacked", ReadConsistency::Eventual, 0)
                .unwrap();
            assert_ne!(r.replica, 10, "divergent replica served a read");
            assert!(r.result.value.is_none(), "divergent tail leaked to a read");
        }
    }

    #[test]
    fn staged_join_adds_a_caught_up_member() {
        let (dir, mut g) = group("join", WriteConcern::Quorum);
        for i in 0..10 {
            g.put(format!("k{i}").as_bytes(), b"v", None, 0).unwrap();
        }
        // Stage node 40 through the same ticket API gap resyncs use.
        let ticket = g.begin_join(40, dir.path()).unwrap();
        assert_eq!(ticket.follower(), 40);
        let info = ticket.copy_throttled(None).unwrap();
        assert!(info.bytes_copied > 0);
        g.complete_join(ticket, info).unwrap();
        assert_eq!(g.members(), vec![10, 20, 30, 40]);
        // Writes after the join ship to the newcomer too; quorum over 4 = 3.
        assert_eq!(g.commit_need(), 3);
        let lsn = g.put(b"after-join", b"w", None, 0).unwrap();
        g.tick().unwrap();
        assert_eq!(g.acked_lsn(40).unwrap(), lsn);
        assert!(g.db(40).unwrap().get(b"k0", 0).unwrap().value.is_some());
        // Double-join of the same id is refused.
        match g.begin_join(40, dir.path()) {
            Err(Error::AlreadyMember(40)) => {}
            other => panic!("expected AlreadyMember, got {other:?}"),
        }
    }

    #[test]
    fn stale_join_ticket_is_refused_like_a_stale_resync() {
        let (dir, mut g) = group("join-epoch", WriteConcern::Async);
        g.put(b"k", b"v", None, 0).unwrap();
        g.tick().unwrap();
        let ticket = g.begin_join(40, dir.path()).unwrap();
        let info = ticket.copy().unwrap();
        // Leadership changes while the copy was in flight: the shared epoch
        // guard refuses the install, exactly as for a resync ticket.
        g.fail_replica(10).unwrap();
        g.promote().unwrap();
        match g.complete_join(ticket, info) {
            Err(Error::ResyncSuperseded) => {}
            other => panic!("expected ResyncSuperseded, got {other:?}"),
        }
        assert_eq!(g.members(), vec![10, 20, 30]);
    }

    #[test]
    fn remove_member_tears_down_a_follower_but_never_the_leader() {
        let (_d, mut g) = group("remove", WriteConcern::Async);
        g.put(b"k", b"v", None, 0).unwrap();
        match g.remove_member(10) {
            Err(Error::MemberIsLeader(10)) => {}
            other => panic!("expected MemberIsLeader, got {other:?}"),
        }
        let dir = g.remove_member(30).unwrap();
        assert!(dir.ends_with("p1-r30"));
        assert_eq!(g.members(), vec![10, 20]);
        // The group still writes (quorum over 2 = 2) and reads never land on
        // the departed member.
        let lsn = g.put(b"after", b"w", None, 0).unwrap();
        g.tick().unwrap();
        assert_eq!(g.acked_lsn(20).unwrap(), lsn);
        match g.read_at(30, b"k", None, 0) {
            Err(Error::UnknownReplica(30)) => {}
            other => panic!("expected UnknownReplica, got {other:?}"),
        }
    }

    #[test]
    fn handover_transfers_leadership_without_divergence() {
        let (_d, mut g) = group("handover", WriteConcern::Async);
        for i in 0..8 {
            g.put(format!("k{i}").as_bytes(), b"v", None, 0).unwrap();
        }
        // Follower 20 lags at handover time: the drain inside handover must
        // bring it to the leader's exact LSN before roles switch.
        g.handover(20).unwrap();
        assert_eq!(g.leader(), Some(20));
        assert_eq!(g.acked_lsn(20).unwrap(), 8);
        // The old leader follows the new one — no resync, no divergence.
        let s10 = g.status().replicas.iter().find(|r| r.id == 10).cloned();
        let s10 = s10.unwrap();
        assert_eq!(s10.role, Role::Follower);
        assert_eq!(s10.resyncs, 0);
        // Writes flow through the new leader and reach the old one.
        let lsn = g.put(b"post", b"w", None, 0).unwrap();
        g.tick().unwrap();
        assert_eq!(g.acked_lsn(10).unwrap(), lsn);
        assert!(g.db(10).unwrap().get(b"post", 0).unwrap().value.is_some());
    }

    #[test]
    fn handover_flushes_new_leader_buffer_before_capturing_seek_position() {
        // Regression: handover captures the new leader's WAL position as the
        // seek point for caught-up followers. Everything the new leader
        // applied as a follower can still sit in its group-commit buffer
        // (nothing below reaches the byte trigger, and the interval trigger
        // is cranked up so timing cannot drain it) — without an explicit
        // flush, the captured position and the on-disk log disagree, and a
        // follower seeking there diverges from the frames it ships next.
        let dir = TestDir::new("handover-buf");
        let mut g = ReplicaGroup::bootstrap(
            1,
            dir.path(),
            &[10, 20],
            GroupConfig {
                write_concern: WriteConcern::All,
                db: DbConfig {
                    group_commit_interval_ms: 60_000,
                    ..DbConfig::small_for_tests()
                },
                wait_timeout: Duration::from_millis(10),
            },
        )
        .unwrap();
        for i in 0..10 {
            g.put(format!("k{i}").as_bytes(), b"v", None, 0).unwrap();
        }
        let (seg_before, pos_before) = g.db(20).unwrap().wal_position();
        g.handover(20).unwrap();
        let (seg_after, pos_after) = g.db(20).unwrap().wal_position();
        assert_eq!(seg_before, seg_after);
        assert!(
            pos_after > pos_before,
            "handover must flush the new leader's buffered frames before \
             capturing the seek position ({pos_before} -> {pos_after})"
        );
        // The old leader re-attached at the flushed position: the next write
        // ships to it without a gap or a forced resync.
        let lsn = g.put(b"post", b"w", None, 0).unwrap();
        g.tick().unwrap();
        assert_eq!(g.acked_lsn(10).unwrap(), lsn);
        let s10 = g
            .status()
            .replicas
            .iter()
            .find(|r| r.id == 10)
            .cloned()
            .unwrap();
        assert_eq!(s10.role, Role::Follower);
        assert_eq!(s10.resyncs, 0, "bad seek position forced a resync");
        assert!(g.db(10).unwrap().get(b"post", 0).unwrap().value.is_some());
    }

    #[test]
    fn stale_connection_teardown_never_hides_a_reconnected_remote() {
        let (_d, mut g) = group("remote-gen", WriteConcern::Quorum);
        let (state1, gen1) = g.register_remote_follower(99).unwrap();
        state1.record_ack(gen1, 5);
        // The follower reconnects: the new registration supersedes the old
        // connection but shares the same state object.
        let (state2, gen2) = g.register_remote_follower(99).unwrap();
        assert!(Arc::ptr_eq(&state1, &state2));
        assert_eq!(state2.acked(), 0, "re-registration resets the watermark");
        // A pre-reconnect ack drained late from the old socket must not
        // resurrect the watermark the re-registration just reset.
        state1.record_ack(gen1, 100);
        assert_eq!(
            state2.acked(),
            0,
            "stale-generation ack resurrected the watermark"
        );
        state2.record_ack(gen2, 7);
        // The superseded connection dies late (partitioned socket finally
        // erroring): its teardown must not mark the live connection down.
        state1.disconnect(gen1);
        assert!(state2.is_connected(), "stale teardown hid a live follower");
        // Locals sit at LSN 0; only the (still-connected) remote covers 7.
        assert_eq!(g.acked_count(7), 1, "live remote stopped counting");
        // The live connection's own teardown does disconnect.
        state2.disconnect(gen2);
        assert!(!state2.is_connected());
    }

    #[test]
    fn disconnected_remotes_leave_the_quorum_denominator() {
        let (_d, mut g) = group("remote-quorum", WriteConcern::Quorum);
        assert_eq!(g.commit_need(), 2); // 3 locals
        let (state, generation) = g.register_remote_follower(99).unwrap();
        assert_eq!(g.commit_need(), 3); // 3 locals + 1 connected remote
                                        // A departed follower must not inflate the quorum forever (an
                                        // anonymous follower reconnecting under fresh ids would otherwise
                                        // grow the denominator until writes can never commit).
        state.disconnect(generation);
        assert_eq!(g.commit_need(), 2);
        // Registration prunes disconnected strangers from the registry.
        let _ = g.register_remote_follower(98).unwrap();
        let remotes = g.remote_followers();
        assert_eq!(remotes.len(), 1);
        assert_eq!(remotes[0].0, 98);
    }

    #[test]
    fn status_reflects_roles_and_lsns() {
        let (_d, mut g) = group("status", WriteConcern::All);
        g.put(b"k", b"v", None, 0).unwrap();
        let status = g.status();
        assert_eq!(status.partition, 1);
        assert_eq!(status.leader, Some(10));
        assert_eq!(status.replicas.len(), 3);
        assert!(status.replicas.iter().all(|r| r.acked_lsn == 1));
        assert_eq!(
            status
                .replicas
                .iter()
                .filter(|r| r.role == Role::Follower)
                .count(),
            2
        );
    }
}
