//! The chaos runner: seeded episodes of faulty life for a replicated cluster.
//!
//! One **episode** = fresh [`ReplicatedCluster`] + mixed tenant workload
//! (Table-1 profiles via `abase-workload`) + one seed-determined
//! [`FaultPlan`], followed by invariant checks:
//!
//! 1. **Zero acked-write loss** — every write acknowledged under the group
//!    write concern is still readable (at-or-after its op) from the leader
//!    after all faults and failovers.
//! 2. **No split brain** — every group has exactly one live leader and the
//!    MetaServer routes to it.
//! 3. **LSN monotonicity** — a replica's applied LSN never goes backwards
//!    except across an explicit full resync (counted) or replacement.
//! 4. **Read-your-writes fencing** — a fenced read at an acked write's LSN
//!    never observes earlier state. Fenced reads go through the cluster's
//!    consistency-aware read router (proxy-route semantics): the invariant
//!    therefore covers the routing layer, not just the group's own picker.
//! 5. **Recovery bandwidth** — parallel reconstruction never exceeds the
//!    §3.3 multi-node budget (`per-node bandwidth × distinct sources`).
//! 6. **Bounded-fault liveness** — a write-concern commit never fails while
//!    a quorum of replicas is alive and every active fault is transient
//!    (this is the invariant that catches reverting the `WAIT`-timeout fix).
//!
//! Violations carry a replayable `CHAOS_SEED=<n>` line; pinned regression
//! seeds live in the workspace's `tests/chaos.rs`.

use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use abase_core::cluster::{FailoverOutcome, ReplicatedCluster, ReplicatedClusterConfig};
use abase_lavastore::DbConfig;
use abase_replication::{Error as ReplError, ReadConsistency, WriteConcern};
use abase_util::failpoint::{self, FaultAction};
use abase_util::TestDir;
use abase_workload::{KeyspaceConfig, LogNormal, RequestGen, TABLE1_PROFILES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// Episode shape and cluster sizing.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// DataNodes in the cluster.
    pub nodes: u32,
    /// Replicated partitions (each mapped to a Table-1 workload profile).
    pub partitions: u64,
    /// Replicas per partition.
    pub replication_factor: usize,
    /// Write concern under test (acked-durability invariants assume
    /// `Quorum` or `All`).
    pub write_concern: WriteConcern,
    /// Ticks per episode.
    pub ticks: u64,
    /// Requests per partition per tick.
    pub ops_per_tick: usize,
    /// Modeled per-node disk bandwidth for reconstruction (bytes/second);
    /// the §3.3 invariant bounds measured recovery bandwidth against it.
    pub recovery_bandwidth: f64,
    /// Commit retry budget (see `GroupConfig::wait_timeout`).
    pub wait_timeout: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            nodes: 6,
            partitions: 4,
            replication_factor: 3,
            write_concern: WriteConcern::Quorum,
            ticks: 30,
            ops_per_tick: 8,
            recovery_bandwidth: 24e6,
            wait_timeout: Duration::from_millis(25),
        }
    }
}

/// Durability bookkeeping for one key.
#[derive(Debug, Default)]
struct KeyState {
    /// Highest op id acknowledged under the write concern.
    last_acked_op: Option<u64>,
    /// Every op id ever written to this key (acked or attempted).
    written_ops: BTreeSet<u64>,
}

/// What one episode did and whether its invariants held.
#[derive(Debug, Clone)]
pub struct EpisodeReport {
    /// The episode's seed (replay with `--seed <n> --episodes 1`).
    pub seed: u64,
    /// Writes acknowledged under the write concern.
    pub writes_acked: u64,
    /// Writes that failed (injected faults, quorum loss windows).
    pub writes_failed: u64,
    /// Reads issued.
    pub reads: u64,
    /// Reads the router served from follower replicas.
    pub follower_reads: u64,
    /// `Eventual` reads that observed a value older than the key's last
    /// acked op (legal staleness, counted for the lag-attribution check).
    pub stale_reads: u64,
    /// Highest LSN lag observed at read time across routed reads.
    pub max_observed_lag: u64,
    /// Fenced read-your-writes checks performed.
    pub ryw_checks: u64,
    /// Live migrations started by the plan's migration events.
    pub migrations_started: u64,
    /// Live migrations that completed a cut-over during the episode.
    pub migrations_completed: u64,
    /// Live migrations the engine aborted (killed endpoint, torn copy).
    pub migrations_aborted: u64,
    /// Nodes killed (direct events plus torn-tail / mid-resync escalations).
    pub kills: u64,
    /// Full resyncs observed across all groups by episode end.
    pub resyncs: u64,
    /// Fault events armed from the plan.
    pub faults_armed: usize,
    /// Fail points that actually fired, with counts — accumulated across the
    /// episode's attribution resets (the registry itself is cleared at every
    /// kill), so the report can say which injected faults did real damage.
    pub faults_fired: BTreeMap<String, u64>,
    /// Invariant violations (empty = episode green).
    pub violations: Vec<String>,
}

impl EpisodeReport {
    /// Did every invariant hold?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Aggregate over a run of episodes.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Per-episode outcomes, in seed order.
    pub episodes: Vec<EpisodeReport>,
}

impl ChaosReport {
    /// Seeds whose episodes violated an invariant.
    pub fn failing_seeds(&self) -> Vec<u64> {
        self.episodes
            .iter()
            .filter(|e| !e.ok())
            .map(|e| e.seed)
            .collect()
    }
}

/// Per-episode fault-attribution state: which partitions currently carry an
/// armed fault that explains a write/tick error.
#[derive(Debug, Default)]
struct ActiveFaults {
    /// Partitions whose leader WAL was torn (poisoned until the leader dies).
    torn: BTreeSet<u64>,
    /// Partitions with a pending checkpoint-failure (mid-resync death).
    ckpt_fail: BTreeSet<u64>,
    /// Partitions with a pending transient flush failure.
    flush_fail: BTreeSet<u64>,
}

/// Runs seeded chaos episodes and checks invariants.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosRunner {
    /// Episode configuration.
    pub config: ChaosConfig,
}

impl ChaosRunner {
    /// A runner over `config`.
    pub fn new(config: ChaosConfig) -> Self {
        Self { config }
    }

    /// Run `episodes` episodes with seeds `base_seed..base_seed + episodes`.
    ///
    /// Episodes share the process-global fail-point registry and therefore
    /// run strictly sequentially; callers embedding the runner in a test
    /// binary must not run two runners concurrently.
    pub fn run(&self, base_seed: u64, episodes: u64) -> ChaosReport {
        let mut report = ChaosReport::default();
        for i in 0..episodes {
            report.episodes.push(self.run_episode(base_seed + i));
        }
        report
    }

    /// Run one seeded episode and check every invariant.
    pub fn run_episode(&self, seed: u64) -> EpisodeReport {
        // Clean registry in, clean registry out: a panicking episode must not
        // leak rules into the next (or into unrelated tests).
        failpoint::disable();
        failpoint::enable();
        let report = self.episode_inner(seed);
        failpoint::disable();
        report
    }

    fn episode_inner(&self, seed: u64) -> EpisodeReport {
        let cfg = &self.config;
        let dir = TestDir::new(&format!("chaos-{seed}"));
        let mut cluster = ReplicatedCluster::new(
            dir.path(),
            cfg.nodes,
            ReplicatedClusterConfig {
                replication_factor: cfg.replication_factor,
                write_concern: cfg.write_concern,
                db: DbConfig::small_for_tests(),
                recovery_bandwidth: Some(cfg.recovery_bandwidth),
                wait_timeout: cfg.wait_timeout,
                ..Default::default()
            },
        );
        let mut gens: Vec<RequestGen> = Vec::new();
        for p in 0..cfg.partitions {
            let tenant = (p % 3 + 1) as u32;
            cluster
                .create_partition(tenant, p)
                .expect("partition placement");
            // Mixed tenant workload: cycle diverse Table-1 profiles (pure
            // reads, write-heavy joiner, mixed dedup), clamped to chaos-sized
            // values and enough writes to exercise durability.
            let profile = &TABLE1_PROFILES[[0usize, 4, 5][(p % 3) as usize]];
            gens.push(RequestGen::new(
                KeyspaceConfig {
                    n_keys: 256,
                    zipf_s: 0.9,
                    read_ratio: profile.read_ratio.min(0.5),
                    value_size: LogNormal::from_median_p90(
                        (profile.mean_kv_bytes as f64).min(384.0),
                        2.0,
                    ),
                    key_prefix: format!("p{p}"),
                },
                seed ^ (p.wrapping_mul(0x9E37_79B9)),
            ));
        }
        let plan = FaultPlan::generate(seed, cfg);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xCAFE_F00D);
        let mut report = EpisodeReport {
            seed,
            writes_acked: 0,
            writes_failed: 0,
            reads: 0,
            follower_reads: 0,
            stale_reads: 0,
            max_observed_lag: 0,
            ryw_checks: 0,
            migrations_started: 0,
            migrations_completed: 0,
            migrations_aborted: 0,
            kills: 0,
            resyncs: 0,
            faults_armed: plan.events.len(),
            faults_fired: BTreeMap::new(),
            violations: Vec::new(),
        };
        let mut active = ActiveFaults::default();
        let mut keys: BTreeMap<u64, BTreeMap<String, KeyState>> = BTreeMap::new();
        let mut watermarks: BTreeMap<(u64, u32), (u64, u64)> = BTreeMap::new();
        let mut op_counter = 0u64;
        // Node deaths scheduled one tick after their migration started
        // (kill-destination-mid-copy / kill-source-mid-catch-up). Kept
        // outside `ActiveFaults` so an unrelated kill's attribution reset
        // cannot cancel a planned migration death.
        let mut delayed_kills: Vec<(u64, u32)> = Vec::new();
        let mut aborts_seen = 0usize;

        for tick in 0..cfg.ticks {
            let now = tick * 100_000;
            let due: Vec<u32> = delayed_kills
                .iter()
                .filter(|&&(t, _)| t <= tick)
                .map(|&(_, n)| n)
                .collect();
            delayed_kills.retain(|&(t, _)| t > tick);
            for node in due {
                if cluster.live_nodes().contains(&node) {
                    self.kill(&mut cluster, node, &mut active, &mut report);
                }
            }
            for event in plan.events_at(tick) {
                self.arm_event(
                    event,
                    &mut cluster,
                    &mut active,
                    &mut delayed_kills,
                    tick,
                    &mut rng,
                    &mut report,
                );
            }
            for p in 0..cfg.partitions {
                for _ in 0..cfg.ops_per_tick {
                    let spec = gens[p as usize].next_request();
                    if spec.is_write {
                        op_counter += 1;
                        let op = op_counter;
                        let value = encode_value(op, spec.value_bytes.min(512));
                        let state = keys.entry(p).or_default().entry(spec.key.clone());
                        let state = state.or_default();
                        state.written_ops.insert(op);
                        match cluster.write(p, spec.key.as_bytes(), &value, now) {
                            Ok(lsn) => {
                                report.writes_acked += 1;
                                state.last_acked_op = Some(op);
                                if rng.gen_bool(0.25) {
                                    report.ryw_checks += 1;
                                    check_ryw(
                                        &mut cluster,
                                        p,
                                        &spec.key,
                                        op,
                                        lsn,
                                        now,
                                        &mut report,
                                    );
                                }
                            }
                            Err(e) => {
                                report.writes_failed += 1;
                                self.on_write_error(p, e, &mut cluster, &mut active, &mut report);
                            }
                        }
                    } else {
                        report.reads += 1;
                        match cluster.read_routed(
                            p,
                            spec.key.as_bytes(),
                            ReadConsistency::Eventual,
                            now,
                        ) {
                            Ok(read) => {
                                report.max_observed_lag = report.max_observed_lag.max(read.lag);
                                if !read.is_leader {
                                    report.follower_reads += 1;
                                }
                                let found = read.result.value.as_deref().and_then(parse_op);
                                let state = keys.get(&p).and_then(|m| m.get(&spec.key));
                                if let (Some(op), Some(state)) = (found, state) {
                                    if !state.written_ops.contains(&op) {
                                        report.violations.push(format!(
                                            "PHANTOM READ: {} on p{p} served op {op} that was \
                                             never written (replica {})",
                                            spec.key, read.node
                                        ));
                                    }
                                }
                                // Stale-follower attribution: staleness is
                                // legal for Eventual, but a replica that
                                // reported lag 0 has applied every acked
                                // write — older state at lag 0 is a routing
                                // bug, not staleness.
                                let acked = state.and_then(|s| s.last_acked_op);
                                let is_stale = match (acked, found) {
                                    (Some(a), Some(f)) => f < a,
                                    (Some(_), None) => true,
                                    _ => false,
                                };
                                if is_stale {
                                    report.stale_reads += 1;
                                    if read.lag == 0 {
                                        report.violations.push(format!(
                                            "STALE READ AT LAG 0: {} on p{p} tick {tick} served \
                                             {found:?} below acked {acked:?} by replica {}",
                                            spec.key, read.node
                                        ));
                                    }
                                }
                            }
                            Err(e) => {
                                report.violations.push(format!(
                                    "eventual read failed on p{p} at tick {tick}: {e}"
                                ));
                            }
                        }
                    }
                }
            }
            if let Err(e) = cluster.tick() {
                self.on_tick_error(e, &mut cluster, &mut active, &mut report);
            }
            // Migration aborts are handled inside the engine (the source
            // replica keeps serving); attribute each new one so a consumed
            // torn-checkpoint rule does not linger as armed state.
            let aborted = cluster.migrations().aborted();
            for abort in &aborted[aborts_seen..] {
                report.migrations_aborted += 1;
                if abort.reason.contains("staging failed") {
                    active.ckpt_fail.remove(&abort.req.partition);
                }
            }
            aborts_seen = aborted.len();
            self.check_tick_invariants(&cluster, &mut watermarks, tick, &mut report);
        }

        // Quiesce: drop every remaining rule and let followers converge.
        harvest_fired(&mut report);
        failpoint::clear();
        active = ActiveFaults::default();
        let _ = &active;
        for _ in 0..4 {
            if let Err(e) = cluster.tick() {
                report
                    .violations
                    .push(format!("tick failed after faults were cleared: {e}"));
            }
        }
        self.check_final_invariants(&mut cluster, &keys, &mut report);
        self.check_metrics_invariants(&cluster, &mut report);
        report
    }

    /// Invariant 7 (metrics-derived): the observability registry must agree
    /// with the episode's own bookkeeping. Every full resync a group records
    /// also increments `abase_repl_resyncs_total`, and counters are global
    /// and monotone, so the registry's growth since this cluster was built
    /// can never be *below* the resyncs still visible in surviving group
    /// state — a shortfall means an instrumentation regression (a resync
    /// path that skips the counter), which is exactly what fault attribution
    /// would later mis-blame on the workload.
    fn check_metrics_invariants(&self, cluster: &ReplicatedCluster, report: &mut EpisodeReport) {
        if !abase_obs::enabled() {
            return;
        }
        let delta = cluster.metrics_delta();
        let counted = delta.counter("abase_repl_resyncs_total");
        if counted < report.resyncs {
            report.violations.push(format!(
                "METRICS UNDERCOUNT: registry saw {counted} resyncs but surviving group \
                 state shows {} — a resync path is missing its counter",
                report.resyncs
            ));
        }
    }

    /// Install a plan event into the cluster / fail-point registry.
    #[allow(clippy::too_many_arguments)]
    fn arm_event(
        &self,
        event: &FaultEvent,
        cluster: &mut ReplicatedCluster,
        active: &mut ActiveFaults,
        delayed_kills: &mut Vec<(u64, u32)>,
        tick: u64,
        rng: &mut StdRng,
        report: &mut EpisodeReport,
    ) {
        match event.kind {
            FaultKind::KillLeader { partition } => {
                if let Some(node) = cluster.meta().route(partition) {
                    self.kill(cluster, node, active, report);
                }
            }
            FaultKind::KillRandomNode => {
                let live = cluster.live_nodes();
                if live.len() > self.config.replication_factor {
                    let victim = live[rng.gen_range(0..live.len())];
                    self.kill(cluster, victim, active, report);
                }
            }
            FaultKind::FollowerStall { partition, polls } => {
                for dir in follower_dirs(cluster, partition) {
                    failpoint::install("group.pump", Some(&dir), FaultAction::Stall, 0, polls);
                }
            }
            FaultKind::BinlogGap { partition } => {
                if let Some(dir) = leader_dir(cluster, partition) {
                    failpoint::install("binlog.poll", Some(&dir), FaultAction::Gap, 0, 1);
                }
            }
            FaultKind::TornLeaderTail {
                partition,
                keep_bytes,
            } => {
                if let Some(dir) = leader_dir(cluster, partition) {
                    failpoint::install(
                        "wal.append",
                        Some(&dir),
                        FaultAction::TornWrite { keep_bytes },
                        0,
                        1,
                    );
                    active.torn.insert(partition);
                }
            }
            FaultKind::FlushFail { partition } => {
                if let Some(dir) = leader_dir(cluster, partition) {
                    failpoint::install("wal.flush", Some(&dir), FaultAction::Error, 0, 1);
                    active.flush_fail.insert(partition);
                }
            }
            FaultKind::FsyncDelay { partition, ms } => {
                if let Some(dir) = leader_dir(cluster, partition) {
                    failpoint::install("wal.flush", Some(&dir), FaultAction::DelayMs(ms), 0, 3);
                }
            }
            FaultKind::MidResyncLeaderDeath {
                partition,
                after_chunks,
            } => {
                if let Some(dir) = leader_dir(cluster, partition) {
                    failpoint::install("binlog.poll", Some(&dir), FaultAction::Gap, 0, 1);
                    failpoint::install(
                        "db.checkpoint",
                        Some(&dir),
                        FaultAction::Error,
                        after_chunks,
                        1,
                    );
                    active.ckpt_fail.insert(partition);
                }
            }
            FaultKind::MigrateKillDest { partition } => {
                if let Some((_, to)) = self.start_migration(cluster, partition, rng, report) {
                    delayed_kills.push((tick + 1, to));
                }
            }
            FaultKind::MigrateKillSource { partition } => {
                if let Some((from, _)) = self.start_migration(cluster, partition, rng, report) {
                    delayed_kills.push((tick + 1, from));
                }
            }
            FaultKind::MigrateLive { partition } => {
                self.start_migration(cluster, partition, rng, report);
            }
            FaultKind::MigrateTornCheckpoint { partition } => {
                if let Some(dir) = leader_dir(cluster, partition) {
                    if self
                        .start_migration(cluster, partition, rng, report)
                        .is_some()
                    {
                        // The staged copy (next cluster tick) dies mid-stream.
                        // The rule is attributed as a checkpoint failure until
                        // the engine's abort consumes it — if an unrelated
                        // resync on the same leader trips it first, the
                        // standard mid-resync escalation applies.
                        failpoint::install("db.checkpoint", Some(&dir), FaultAction::Error, 0, 1);
                        active.ckpt_fail.insert(partition);
                    }
                }
            }
        }
    }

    /// Start a live migration of one of `partition`'s replicas to a random
    /// live node outside its replica set. Returns the (source, destination)
    /// pair if a move was enqueued.
    fn start_migration(
        &self,
        cluster: &mut ReplicatedCluster,
        partition: u64,
        rng: &mut StdRng,
        report: &mut EpisodeReport,
    ) -> Option<(u32, u32)> {
        let set = cluster.meta().replica_set(partition)?.clone();
        let members = set.members();
        let from = members[rng.gen_range(0..members.len())];
        let spares: Vec<u32> = cluster
            .live_nodes()
            .into_iter()
            .filter(|n| !set.contains(*n))
            .collect();
        if spares.is_empty() {
            return None;
        }
        let to = spares[rng.gen_range(0..spares.len())];
        match cluster.enqueue_migration(partition, from, to) {
            Ok(()) => {
                report.migrations_started += 1;
                Some((from, to))
            }
            // A dead source, pending move, or similar: the event degrades to
            // a no-op, which the plan's budget already tolerates.
            Err(_) => None,
        }
    }

    /// Kill a node through the MetaServer path and check the §3.3 recovery
    /// invariant on the resulting reconstruction.
    fn kill(
        &self,
        cluster: &mut ReplicatedCluster,
        node: u32,
        active: &mut ActiveFaults,
        report: &mut EpisodeReport,
    ) {
        // Chaos rules must not leak into the failover machinery itself: the
        // plan's faults target steady-state traffic, and a rule firing inside
        // reconstruction would make attribution ambiguous. The attribution
        // sets are cleared with the rules: every armed fault here surfaces
        // (and is removed) at the same call that fires it, so a lingering
        // entry always refers to a not-yet-fired rule that no longer exists —
        // keeping it would let a later *genuine* bug masquerade as injected.
        harvest_fired(report);
        failpoint::clear();
        *active = ActiveFaults::default();
        match cluster.kill_node(node) {
            Ok(outcome) => {
                report.kills += 1;
                self.check_recovery(&outcome, report);
            }
            Err(e) => report
                .violations
                .push(format!("kill_node({node}) failed: {e}")),
        }
    }

    /// Invariant 5: measured recovery bandwidth within the §3.3 budget.
    fn check_recovery(&self, outcome: &FailoverOutcome, report: &mut EpisodeReport) {
        let Some(rec) = &outcome.reconstruction else {
            return;
        };
        if rec.distinct_sources > rec.replicas.max(1) {
            report.violations.push(format!(
                "reconstruction claims {} sources for {} replicas",
                rec.distinct_sources, rec.replicas
            ));
        }
        let budget = self.config.recovery_bandwidth * rec.distinct_sources as f64;
        // 35% headroom for throttle sleep granularity on small copies.
        let limit = budget * 1.35 + 256e3;
        let measured = rec.effective_bandwidth();
        if measured > limit {
            report.violations.push(format!(
                "recovery bandwidth {measured:.0} B/s exceeds §3.3 budget {budget:.0} B/s \
                 across {} sources",
                rec.distinct_sources
            ));
        }
    }

    /// Attribute a write failure to an armed fault, escalating torn tails and
    /// failed resync copies into the planned leader death. An unexplained
    /// quorum failure while a quorum is alive is invariant 6's violation.
    fn on_write_error(
        &self,
        partition: u64,
        error: ReplError,
        cluster: &mut ReplicatedCluster,
        active: &mut ActiveFaults,
        report: &mut EpisodeReport,
    ) {
        match error {
            ReplError::Storage(_) => {
                if active.torn.remove(&partition) || active.ckpt_fail.remove(&partition) {
                    // The planned escalation: the broken leader dies, the
                    // group fails over against a torn log / half-copied
                    // checkpoint.
                    if let Some(node) = cluster.meta().route(partition) {
                        self.kill(cluster, node, active, report);
                    }
                } else if !active.flush_fail.remove(&partition) {
                    report.violations.push(format!(
                        "unexplained storage error on p{partition}: no armed fault"
                    ));
                }
            }
            ReplError::NoQuorum { need, acked } => {
                let alive = cluster
                    .group(partition)
                    .map(|g| g.status().replicas.iter().filter(|r| r.alive).count())
                    .unwrap_or(0);
                if alive >= need {
                    report.violations.push(format!(
                        "quorum write failed ({acked}/{need}) on p{partition} with {alive} \
                         replicas alive and only transient faults armed"
                    ));
                }
            }
            ReplError::NoLeader => {
                // Acceptable only in the window before a planned kill lands;
                // the cluster always promotes inside kill_node, so a
                // persistent NoLeader shows up in the final split-brain check.
            }
            other => report
                .violations
                .push(format!("unexpected write error on p{partition}: {other}")),
        }
    }

    /// A tick (async catch-up pump) failure must be explained by a pending
    /// checkpoint-failure fault, whose escalation is the leader's death.
    fn on_tick_error(
        &self,
        error: ReplError,
        cluster: &mut ReplicatedCluster,
        active: &mut ActiveFaults,
        report: &mut EpisodeReport,
    ) {
        if let Some(&partition) = active.ckpt_fail.iter().next() {
            active.ckpt_fail.remove(&partition);
            if let Some(node) = cluster.meta().route(partition) {
                self.kill(cluster, node, active, report);
            }
            return;
        }
        report
            .violations
            .push(format!("unexplained tick failure: {error}"));
    }

    /// Invariants 2 and 3, checked every tick: exactly one live leader per
    /// group routed by the MetaServer, and per-replica LSNs that only move
    /// backwards across an explicit resync or replacement.
    fn check_tick_invariants(
        &self,
        cluster: &ReplicatedCluster,
        watermarks: &mut BTreeMap<(u64, u32), (u64, u64)>,
        tick: u64,
        report: &mut EpisodeReport,
    ) {
        for p in 0..self.config.partitions {
            let Some(group) = cluster.group(p) else {
                continue;
            };
            let status = group.status();
            let live_leaders = status
                .replicas
                .iter()
                .filter(|r| r.alive && r.role == abase_replication::Role::Leader)
                .count();
            if live_leaders != 1 {
                report.violations.push(format!(
                    "split brain on p{p} at tick {tick}: {live_leaders} live leaders"
                ));
            }
            if cluster.meta().route(p) != status.leader {
                report.violations.push(format!(
                    "routing diverged on p{p} at tick {tick}: meta={:?} group={:?}",
                    cluster.meta().route(p),
                    status.leader
                ));
            }
            for r in &status.replicas {
                match watermarks.get(&(p, r.id)) {
                    Some(&(last_lsn, last_resyncs))
                        if r.acked_lsn < last_lsn && r.resyncs == last_resyncs =>
                    {
                        report.violations.push(format!(
                            "LSN regression on p{p} replica {} at tick {tick}: \
                             {last_lsn} -> {} without a resync",
                            r.id, r.acked_lsn
                        ));
                    }
                    _ => {}
                }
                watermarks.insert((p, r.id), (r.acked_lsn, r.resyncs));
            }
            // Migration invariant: the partition is never double-served. The
            // MetaServer's replica set and the group's *live* membership must
            // agree exactly (migrations switch both atomically at
            // join/cut-over; a dead member may linger in the group awaiting
            // adoption, but the meta set drops it at failover), and no node
            // outside the set may still claim to host a replica — a
            // migrated-away source that lingered anywhere could serve reads
            // for a partition it no longer owns.
            let group_members: BTreeSet<u32> = status
                .replicas
                .iter()
                .filter(|r| r.alive)
                .map(|r| r.id)
                .collect();
            let meta_members: BTreeSet<u32> = cluster
                .meta()
                .replica_set(p)
                .map(|s| s.members().into_iter().collect())
                .unwrap_or_default();
            if group_members != meta_members {
                report.violations.push(format!(
                    "DOUBLE-SERVE RISK on p{p} at tick {tick}: meta set {meta_members:?} \
                     != live group members {group_members:?}"
                ));
            }
            for node in 0..self.config.nodes {
                let hosts = cluster.node(node).and_then(|n| n.replica_role(p)).is_some();
                if hosts && !meta_members.contains(&node) {
                    report.violations.push(format!(
                        "DOUBLE-SERVE RISK on p{p} at tick {tick}: node {node} still \
                         hosts a replica outside the replica set {meta_members:?}"
                    ));
                }
            }
        }
    }

    /// Invariant 1 (and final convergence): after quiescing, the leader
    /// serves every acked write at-or-after its acked op, and followers have
    /// converged to the leader's LSN.
    fn check_final_invariants(
        &self,
        cluster: &mut ReplicatedCluster,
        keys: &BTreeMap<u64, BTreeMap<String, KeyState>>,
        report: &mut EpisodeReport,
    ) {
        report.migrations_completed = cluster.migrations().completed().len() as u64;
        for p in 0..self.config.partitions {
            let Some(group) = cluster.group(p) else {
                continue;
            };
            let status = group.status();
            report.resyncs += status.replicas.iter().map(|r| r.resyncs).sum::<u64>();
            if let Some(leader_lsn) = status.leader.and_then(|id| {
                status
                    .replicas
                    .iter()
                    .find(|r| r.id == id)
                    .map(|r| r.acked_lsn)
            }) {
                for r in status.replicas.iter().filter(|r| r.alive) {
                    if r.acked_lsn != leader_lsn {
                        report.violations.push(format!(
                            "p{p} replica {} did not converge: {} != leader {}",
                            r.id, r.acked_lsn, leader_lsn
                        ));
                    }
                }
            } else {
                report
                    .violations
                    .push(format!("p{p} finished the episode without a live leader"));
            }
            let Some(partition_keys) = keys.get(&p) else {
                continue;
            };
            for (key, state) in partition_keys {
                let read = match cluster.read(p, key.as_bytes(), ReadConsistency::Leader, 0) {
                    Ok(r) => r,
                    Err(e) => {
                        report
                            .violations
                            .push(format!("final leader read of {key} failed: {e}"));
                        continue;
                    }
                };
                let found_op = read.value.as_deref().and_then(parse_op);
                match (state.last_acked_op, found_op) {
                    (Some(acked), None) => report.violations.push(format!(
                        "ACKED WRITE LOST: {key} acked op {acked} but reads as absent"
                    )),
                    (Some(acked), Some(op)) if op < acked => report.violations.push(format!(
                        "ACKED WRITE LOST: {key} acked op {acked} but reads op {op}"
                    )),
                    (_, Some(op)) if !state.written_ops.contains(&op) => report.violations.push(
                        format!("PHANTOM WRITE: {key} reads op {op} that was never written"),
                    ),
                    _ => {}
                }
            }
        }
    }
}

/// Invariant 4: a fenced read at an acked LSN must observe the write — now
/// through the cluster's read router, so the invariant holds end-to-end over
/// the proxy route (meta health view → router decision → group fence check),
/// whichever replica the router picked.
fn check_ryw(
    cluster: &mut ReplicatedCluster,
    partition: u64,
    key: &str,
    op: u64,
    lsn: u64,
    now: u64,
    report: &mut EpisodeReport,
) {
    match cluster.read_routed(
        partition,
        key.as_bytes(),
        ReadConsistency::ReadYourWrites(lsn),
        now,
    ) {
        Ok(read) => {
            if !read.is_leader {
                report.follower_reads += 1;
            }
            match read.result.value.as_deref().and_then(parse_op) {
                Some(found) if found >= op => {}
                found => report.violations.push(format!(
                    "STALE FENCED READ: {key} fenced at lsn {lsn} (op {op}) returned {found:?} \
                     from replica {}",
                    read.node
                )),
            }
        }
        Err(e) => report.violations.push(format!(
            "fenced read of {key} at acked lsn {lsn} failed: {e}"
        )),
    }
}

/// Fold the injector's current fired counts into the report. Must be called
/// immediately before any `failpoint::clear()` (which zeroes them) — the
/// counts are cumulative-since-last-clear, so harvesting anywhere else would
/// double count.
fn harvest_fired(report: &mut EpisodeReport) {
    for (point, fired) in failpoint::fired_counts() {
        *report.faults_fired.entry(point.to_string()).or_default() += fired;
    }
}

/// The leader replica's data directory for `partition` (fail-point matcher).
fn leader_dir(cluster: &ReplicatedCluster, partition: u64) -> Option<String> {
    let group = cluster.group(partition)?;
    let leader = group.leader()?;
    group
        .replica_dir(leader)
        .ok()
        .map(|d| d.display().to_string())
}

/// Data directories of every live follower of `partition`.
fn follower_dirs(cluster: &ReplicatedCluster, partition: u64) -> Vec<String> {
    let Some(group) = cluster.group(partition) else {
        return Vec::new();
    };
    let Some(leader) = group.leader() else {
        return Vec::new();
    };
    group
        .members()
        .into_iter()
        .filter(|&m| m != leader && group.is_alive(m))
        .filter_map(|m| group.replica_dir(m).ok())
        .map(|d| d.display().to_string())
        .collect()
}

/// Value payload: a parseable op id followed by padding to the profile size.
fn encode_value(op: u64, len: usize) -> Vec<u8> {
    let mut v = format!("op{op:010}|").into_bytes();
    let target = len.max(v.len());
    v.resize(target, b'x');
    v
}

/// Recover the op id from a stored value.
fn parse_op(value: &[u8]) -> Option<u64> {
    let head = std::str::from_utf8(value.get(..13)?).ok()?;
    head.strip_prefix("op")?.strip_suffix('|')?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_roundtrip_op_ids() {
        let v = encode_value(42, 128);
        assert_eq!(v.len(), 128);
        assert_eq!(parse_op(&v), Some(42));
        assert_eq!(parse_op(b"garbage"), None);
        // Minimum-size values still carry the op id.
        assert_eq!(parse_op(&encode_value(7, 0)), Some(7));
    }
}
