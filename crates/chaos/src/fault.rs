//! Seeded fault plans.
//!
//! A [`FaultPlan`] is the entire episode's misfortune, drawn up front from one
//! RNG seed: which ticks lose a node, which followers stall or gap, where a
//! WAL tail tears mid-append, which resync's source dies mid-copy. Because
//! the plan (and everything the runner does with it) is a pure function of
//! the seed, any failing episode replays exactly with `CHAOS_SEED=<n>`.

use crate::runner::ChaosConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One category of injected misfortune.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Kill the node currently leading `partition` (promotion + §3.3
    /// parallel reconstruction follow).
    KillLeader {
        /// Targeted partition.
        partition: u64,
    },
    /// Kill a uniformly chosen live node (may lead several partitions, may
    /// host only followers).
    KillRandomNode,
    /// Every follower of `partition` reports no progress for `polls`
    /// consecutive pump passes — a transient stall the commit path must ride
    /// out within the `WAIT` timeout instead of failing the write (this is
    /// the fault that catches reverting the commit retry/timeout logic to a
    /// single pump pass).
    FollowerStall {
        /// Targeted partition.
        partition: u64,
        /// Stalled pump passes (per follower) before recovery.
        polls: u32,
    },
    /// Force one follower of `partition` off the leader's log (as if its
    /// segment rotated away), triggering a full resync.
    BinlogGap {
        /// Targeted partition.
        partition: u64,
    },
    /// Tear the leader's WAL mid-append at an arbitrary byte offset: only
    /// `keep_bytes` of the frame reach disk and the leader's log is dead.
    /// The runner kills the leader when the write surfaces the error, so
    /// failover runs against a log with a torn tail.
    TornLeaderTail {
        /// Targeted partition.
        partition: u64,
        /// Frame bytes that reach the file before the tear.
        keep_bytes: u64,
    },
    /// The leader's next WAL flush fails once (transient disk error); the
    /// write is reported failed, later writes succeed.
    FlushFail {
        /// Targeted partition.
        partition: u64,
    },
    /// The leader's WAL flushes are delayed by `ms` for a few writes
    /// (slow fsync).
    FsyncDelay {
        /// Targeted partition.
        partition: u64,
        /// Injected delay per flush, milliseconds.
        ms: u64,
    },
    /// Force a follower gap *and* make the resulting checkpoint copy fail
    /// after `after_chunks` chunks; the runner then kills the leader — the
    /// mid-resync-leader-death scenario. The staged resync must leave the
    /// follower on its old valid prefix, and failover must still lose
    /// nothing.
    MidResyncLeaderDeath {
        /// Targeted partition.
        partition: u64,
        /// Copied chunks before the source dies.
        after_chunks: u32,
    },
    /// Start a live migration of one of `partition`'s replicas, then kill
    /// the **destination** one tick later — mid-copy/catch-up, before
    /// cut-over. The engine must abort the move (source keeps serving) and
    /// normal failover must clean up whatever else the destination hosted.
    MigrateKillDest {
        /// Targeted partition.
        partition: u64,
    },
    /// Start a live migration, then kill the **source** one tick later. The
    /// staged destination is torn back out, the original membership fails
    /// over normally, and no acked write may be lost.
    MigrateKillSource {
        /// Targeted partition.
        partition: u64,
    },
    /// Start a live migration whose staged checkpoint copy fails mid-stream
    /// (torn checkpoint). The engine must abort the move with the source
    /// replica untouched and the staging tree cleaned.
    MigrateTornCheckpoint {
        /// Targeted partition.
        partition: u64,
    },
    /// Start a live migration with no targeted misfortune: it must complete
    /// its cut-over while the episode's *other* faults fly around, without
    /// ever double-serving the partition or losing an acked write.
    MigrateLive {
        /// Targeted partition.
        partition: u64,
    },
}

/// A scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Tick (0-based) at which the fault is armed.
    pub tick: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// The full, seed-determined misfortune schedule for one episode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed the plan was drawn from.
    pub seed: u64,
    /// Events sorted by tick.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Draw an episode's plan from `seed`. Node-kill events (direct kills,
    /// torn tails, and mid-resync deaths all consume a node) are capped at
    /// `nodes - replication_factor` so every group keeps a write quorum.
    pub fn generate(seed: u64, config: &ChaosConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0xC4A05),
        );
        let kill_budget = (config.nodes as usize).saturating_sub(config.replication_factor);
        let mut kills = 0usize;
        let n_events = rng.gen_range(3..8usize);
        let mut events = Vec::with_capacity(n_events);
        let last_tick = config.ticks.saturating_sub(3).max(2);
        for _ in 0..n_events {
            let tick = rng.gen_range(1..last_tick);
            let partition = rng.gen_range(0..config.partitions);
            let roll = rng.gen_range(0..8u32);
            let kind = match roll {
                0 if kills < kill_budget => {
                    kills += 1;
                    FaultKind::KillLeader { partition }
                }
                1 if kills < kill_budget => {
                    kills += 1;
                    FaultKind::KillRandomNode
                }
                4 if kills < kill_budget => {
                    kills += 1;
                    FaultKind::TornLeaderTail {
                        partition,
                        keep_bytes: rng.gen_range(1..48u64),
                    }
                }
                7 if kills < kill_budget => {
                    kills += 1;
                    FaultKind::MidResyncLeaderDeath {
                        partition,
                        after_chunks: rng.gen_range(0..2u32),
                    }
                }
                2 => FaultKind::FollowerStall {
                    partition,
                    polls: rng.gen_range(1..4u32),
                },
                3 => FaultKind::BinlogGap { partition },
                5 => FaultKind::FlushFail { partition },
                6 => FaultKind::FsyncDelay {
                    partition,
                    ms: rng.gen_range(1..3u64),
                },
                // Kill budget exhausted: degrade to a non-fatal fault.
                _ => FaultKind::FollowerStall {
                    partition,
                    polls: rng.gen_range(1..4u32),
                },
            };
            events.push(FaultEvent { tick, kind });
        }
        // Migration misfortune rides on a forked RNG so the base schedule a
        // seed draws is unchanged from before migrations existed — pinned
        // regression seeds keep replaying the exact plans that caught their
        // bugs, with migration events appended on top.
        let mut mig_rng = StdRng::seed_from_u64(
            seed.wrapping_mul(0xA076_1D64_78BD_642F)
                .wrapping_add(0x2545F),
        );
        let n_mig = mig_rng.gen_range(1..3usize);
        for _ in 0..n_mig {
            let tick = mig_rng.gen_range(1..last_tick);
            let partition = mig_rng.gen_range(0..config.partitions);
            let kind = match mig_rng.gen_range(0..4u32) {
                0 if kills < kill_budget => {
                    kills += 1;
                    FaultKind::MigrateKillDest { partition }
                }
                1 if kills < kill_budget => {
                    kills += 1;
                    FaultKind::MigrateKillSource { partition }
                }
                2 => FaultKind::MigrateTornCheckpoint { partition },
                _ => FaultKind::MigrateLive { partition },
            };
            events.push(FaultEvent { tick, kind });
        }
        events.sort_by_key(|e| e.tick);
        Self { seed, events }
    }

    /// Events armed at `tick`, in plan order.
    pub fn events_at(&self, tick: u64) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.tick == tick)
    }

    /// How many events in the plan kill a node (directly, via torn-tail /
    /// mid-resync escalation, or as a migration's delayed node death).
    pub fn planned_kills(&self) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    FaultKind::KillLeader { .. }
                        | FaultKind::KillRandomNode
                        | FaultKind::TornLeaderTail { .. }
                        | FaultKind::MidResyncLeaderDeath { .. }
                        | FaultKind::MigrateKillDest { .. }
                        | FaultKind::MigrateKillSource { .. }
                )
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        let config = ChaosConfig::default();
        let a = FaultPlan::generate(17, &config);
        let b = FaultPlan::generate(17, &config);
        assert_eq!(a, b);
        let c = FaultPlan::generate(18, &config);
        assert_ne!(a, c, "different seeds should draw different plans");
    }

    #[test]
    fn kills_stay_within_budget_across_seeds() {
        let config = ChaosConfig::default();
        let budget = (config.nodes as usize) - config.replication_factor;
        for seed in 0..200 {
            let plan = FaultPlan::generate(seed, &config);
            assert!(
                plan.planned_kills() <= budget,
                "seed {seed}: {} kills over budget {budget}",
                plan.planned_kills()
            );
            assert!(!plan.events.is_empty());
            assert!(plan.events.windows(2).all(|w| w[0].tick <= w[1].tick));
            for e in &plan.events {
                assert!(e.tick < config.ticks);
            }
        }
    }
}
