//! # abase-chaos
//!
//! Deterministic chaos harness for the ABase replication plane, in the
//! FoundationDB simulation-testing tradition: every episode's faults — node
//! kills at random ticks, follower binlog gaps, WAL tails torn at arbitrary
//! byte offsets, failed/delayed flushes, leaders dying mid-resync — are a
//! pure function of one RNG seed, injected through the explicit fail-point
//! layer in `abase_util::failpoint` that the storage (`wal.append`,
//! `wal.flush`, `db.checkpoint`), shipping (`binlog.poll`, `group.pump`), and
//! failover paths consult.
//!
//! A [`ChaosRunner`] drives N episodes of mixed Table-1 tenant workload
//! against a real [`abase_core::cluster::ReplicatedCluster`] and checks, per
//! episode: zero acked-write loss, no split brain, per-replica LSN
//! monotonicity, read-your-writes fencing, the §3.3 recovery-bandwidth
//! budget, and bounded-fault commit liveness. A failing episode prints a
//! replayable `CHAOS_SEED=<n>`; the workspace's `tests/chaos.rs` replays the
//! pinned regression-seed list so every bug the harness ever caught stays a
//! one-line deterministic test.
//!
//! ```text
//! cargo run -p abase-chaos -- --episodes 50 --seed 0
//! ```

#![deny(missing_docs)]

pub mod fault;
pub mod runner;
pub mod socket;

pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use runner::{ChaosConfig, ChaosReport, ChaosRunner, EpisodeReport};
pub use socket::{run_socket_episode, SocketEpisodeReport, SocketFault};
