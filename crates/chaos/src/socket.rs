//! Seeded chaos for the socket replication transport.
//!
//! A socket episode runs a **real TCP** replica pair — a leader
//! `ReplicaGroup` served by [`abase_replication::serve_group_replica`] and a
//! [`SocketFollower`] pumping it — while a seed-drawn schedule of frame
//! misfortune fires through the `socket.ship` / `socket.ack` fail points:
//! dropped, duplicated, and reordered `BATCH` frames, dropped acks, severed
//! connections (network partitions), and a mid-stream leader kill.
//!
//! Invariants checked per episode:
//!
//! * **Zero acked-write loss** — every write whose `wait(1)` observed a
//!   follower ack is present on the follower at episode end, leader dead or
//!   alive.
//! * **Prefix / no split brain** — the follower's state is always an exact
//!   prefix of the leader's history: key `k<i>` present iff `i < last_seq`,
//!   with the leader's value. A diverged follower (e.g. one that applied a
//!   reordered frame) would break this.
//! * **LSN monotonicity** — the follower's applied LSN never goes backward,
//!   across frame faults, reconnects, and full resyncs.
//! * **Convergence** — an episode whose leader survives must end with the
//!   follower at the leader's LSN (frame faults heal through dedup or a
//!   `FULLRESYNC`), within a bounded drive loop.
//!
//! The fault *schedule* is a pure function of the seed; socket scheduling is
//! not, so a failing seed replays the same misfortune against real-network
//! timing. In practice that reproduces reliably because the pump loop is
//! driven synchronously between writes.

use abase_lavastore::DbConfig;
use abase_replication::{
    serve_group_replica, FollowerPump, GroupConfig, ReplicaGroup, SocketFollower, WriteConcern,
};
use abase_util::failpoint::{self, FaultAction};
use abase_util::TestDir;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One frame-level misfortune in a socket episode's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketFault {
    /// Drop the next `count` outbound BATCH frames (the follower sees a
    /// hole and must recover via `FULLRESYNC`).
    DropFrames(u32),
    /// Send the next `count` BATCH frames twice (dedup on apply).
    DuplicateFrames(u32),
    /// Hold a BATCH frame and deliver it after its successor (out-of-order
    /// delivery).
    ReorderFrame,
    /// Drop the follower's next `count` acks (the leader's accounting lags;
    /// liveness, not safety).
    DropAcks(u32),
    /// Sever the replication connection (network partition); the follower
    /// reconnects and resumes via PSYNC.
    Partition,
    /// Kill the leader process mid-stream: its endpoint stops serving and
    /// every connection drops. No event after this one fires.
    KillLeader,
}

/// What one socket episode did and observed.
#[derive(Debug)]
pub struct SocketEpisodeReport {
    /// The seed the schedule was drawn from.
    pub seed: u64,
    /// Writes issued through the leader.
    pub writes: u64,
    /// Highest LSN a `wait(1)` observed a follower ack for.
    pub acked_lsn: u64,
    /// Frame faults armed.
    pub faults_armed: u64,
    /// Full resyncs the follower performed.
    pub resyncs: u64,
    /// Whether the schedule killed the leader mid-stream.
    pub leader_killed: bool,
    /// Invariant violations (empty = green).
    pub violations: Vec<String>,
}

impl SocketEpisodeReport {
    /// Did every invariant hold?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Draw an episode's misfortune schedule: `(write index, fault)` pairs.
fn draw_schedule(rng: &mut StdRng, writes: u64) -> Vec<(u64, SocketFault)> {
    let n_faults = rng.gen_range(2..6usize);
    let mut schedule: Vec<(u64, SocketFault)> = (0..n_faults)
        .map(|_| {
            let at = rng.gen_range(5..writes.saturating_sub(5).max(6));
            let fault = match rng.gen_range(0..6u32) {
                0 => SocketFault::DropFrames(rng.gen_range(1..3)),
                1 => SocketFault::DuplicateFrames(rng.gen_range(1..4)),
                2 => SocketFault::ReorderFrame,
                3 => SocketFault::DropAcks(rng.gen_range(1..4)),
                _ => SocketFault::Partition,
            };
            (at, fault)
        })
        .collect();
    // One episode in three loses its leader mid-stream.
    if rng.gen_range(0..3u32) == 0 {
        let at = rng.gen_range(writes / 2..writes);
        schedule.push((at, SocketFault::KillLeader));
    }
    schedule.sort_by_key(|(at, _)| *at);
    schedule
}

/// Run one seeded socket-transport chaos episode.
pub fn run_socket_episode(seed: u64) -> SocketEpisodeReport {
    let mut rng = StdRng::seed_from_u64(
        seed.wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add(0x9E377),
    );
    let writes = rng.gen_range(60..160u64);
    let schedule = draw_schedule(&mut rng, writes);
    let mut report = SocketEpisodeReport {
        seed,
        writes: 0,
        acked_lsn: 0,
        faults_armed: 0,
        resyncs: 0,
        leader_killed: false,
        violations: Vec::new(),
    };

    let _guard = failpoint::ScopedInjector::enable();
    let leader_dir = TestDir::new(&format!("socket-chaos-leader-{seed}"));
    let follower_dir = TestDir::new(&format!("socket-chaos-follower-{seed}"));
    let group = Arc::new(
        ReplicaGroup::bootstrap(
            1,
            leader_dir.path(),
            &[1],
            GroupConfig {
                write_concern: WriteConcern::Async,
                db: DbConfig::small_for_tests(),
                wait_timeout: Duration::from_millis(300),
            },
        )
        .expect("bootstrap leader group")
        .into_mutex(),
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind leader endpoint");
    let addr = listener.local_addr().unwrap();
    // Flipped by the KillLeader fault: the endpoint stops accepting (the
    // listener drops, so reconnects are refused like a dead process's port).
    let leader_dead = Arc::new(std::sync::atomic::AtomicBool::new(false));
    {
        let group = Arc::clone(&group);
        let leader_dead = Arc::clone(&leader_dead);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                // ORDER: Acquire pairs with the Release store at the
                // KillLeader fault (downgraded from SeqCst: one writer, one
                // flag, no other atomics to order against).
                if leader_dead.load(std::sync::atomic::Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { break };
                let group = Arc::clone(&group);
                std::thread::spawn(move || {
                    let _ = serve_group_replica(stream, &group);
                });
            }
        });
    }
    const REPLICA_ID: u32 = 900;
    let tag = format!("replica-{REPLICA_ID}");
    let mut follower = SocketFollower::connect(
        follower_dir.path().join("replica"),
        DbConfig::small_for_tests(),
        &addr.to_string(),
        REPLICA_ID,
        0,
    )
    .expect("follower connect");

    let mut schedule = schedule.into_iter().peekable();
    let mut last_follower_lsn = 0u64;
    let pump = |follower: &mut SocketFollower, last: &mut u64, violations: &mut Vec<String>| {
        match follower.pump() {
            Ok(FollowerPump::Resynced) | Ok(FollowerPump::Applied(_)) | Ok(FollowerPump::Idle) => {}
            // Transport errors are episode weather (partitions, dead
            // leader); safety is judged by state, not liveness.
            Err(_) => {}
        }
        let lsn = follower.last_seq();
        if lsn < *last {
            violations.push(format!("follower LSN went backward: {lsn} < {last}"));
        }
        *last = lsn;
    };

    for i in 0..writes {
        while let Some(&(at, fault)) = schedule.peek() {
            if at != i {
                break;
            }
            schedule.next();
            report.faults_armed += 1;
            match fault {
                SocketFault::DropFrames(n) => {
                    failpoint::install("socket.ship", Some(&tag), FaultAction::Drop, 0, n)
                }
                SocketFault::DuplicateFrames(n) => {
                    failpoint::install("socket.ship", Some(&tag), FaultAction::Duplicate, 0, n)
                }
                SocketFault::ReorderFrame => {
                    failpoint::install("socket.ship", Some(&tag), FaultAction::Reorder, 0, 1)
                }
                SocketFault::DropAcks(n) => {
                    failpoint::install("socket.ack", Some(&tag), FaultAction::Drop, 0, n)
                }
                SocketFault::Partition => {
                    failpoint::install("socket.ship", Some(&tag), FaultAction::Disconnect, 0, 1)
                }
                SocketFault::KillLeader => {
                    report.leader_killed = true;
                    // The "process" dies: every in-flight ship severs, the
                    // accept loop stops (a dummy connect wakes it so the
                    // listener actually drops and reconnects are refused).
                    failpoint::install(
                        "socket.ship",
                        Some(&tag),
                        FaultAction::Disconnect,
                        0,
                        u32::MAX,
                    );
                    // ORDER: Release pairs with the accept loop's Acquire
                    // load (downgraded from SeqCst; see that site).
                    leader_dead.store(true, std::sync::atomic::Ordering::Release);
                    let _ = std::net::TcpStream::connect(addr);
                }
            }
            if report.leader_killed {
                break;
            }
        }
        if report.leader_killed {
            break;
        }
        let lsn = {
            let g = group.lock();
            let db = g.leader_db().expect("leader alive");
            db.put(
                format!("k{i}").as_bytes(),
                format!("v{i}").as_bytes(),
                None,
                0,
            )
            .expect("leader write");
            db.last_seq()
        };
        report.writes += 1;
        // Drive the follower a little after every write, and fence every
        // eighth write like a quorum client would.
        for _ in 0..2 {
            pump(
                &mut follower,
                &mut last_follower_lsn,
                &mut report.violations,
            );
        }
        if i % 8 == 7 {
            // Generous budget: this is a *liveness* check over real sockets
            // and real time — a loaded CI box must not turn scheduling
            // noise into a phantom violation (the safety checks below are
            // state-based and load-immune).
            let deadline = Instant::now() + Duration::from_secs(20);
            loop {
                pump(
                    &mut follower,
                    &mut last_follower_lsn,
                    &mut report.violations,
                );
                let acked = group.lock().followers_acked(lsn);
                if acked >= 1 {
                    report.acked_lsn = report.acked_lsn.max(lsn);
                    break;
                }
                if Instant::now() > deadline {
                    report
                        .violations
                        .push(format!("WAIT liveness: lsn {lsn} never acked in 20s"));
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    // Surviving-leader episodes must converge fully; killed-leader episodes
    // only drive briefly to absorb in-flight frames (their safety is judged
    // by the prefix/acked checks below, not by convergence).
    let target = group.lock().leader_db().expect("leader db").last_seq();
    let deadline = Instant::now()
        + if report.leader_killed {
            Duration::from_millis(300)
        } else {
            Duration::from_secs(20)
        };
    loop {
        pump(
            &mut follower,
            &mut last_follower_lsn,
            &mut report.violations,
        );
        if follower.last_seq() >= target && !report.leader_killed {
            break;
        }
        if Instant::now() > deadline {
            if !report.leader_killed && follower.last_seq() < target {
                report.violations.push(format!(
                    "convergence: follower stuck at {} of {target}",
                    follower.last_seq()
                ));
            }
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    report.resyncs = follower.resyncs();

    // Zero acked-write loss + prefix (split-brain) check against the
    // follower's final state.
    let follower_db = follower.db();
    let cut = follower.last_seq();
    if cut < report.acked_lsn {
        report.violations.push(format!(
            "acked-write loss: follower at {cut} below acked lsn {}",
            report.acked_lsn
        ));
    }
    for i in 0..report.writes {
        let lsn = i + 1;
        let read = follower_db
            .get(format!("k{i}").as_bytes(), 0)
            .expect("follower read");
        match read.value {
            Some(v) if lsn <= cut && v.as_ref() != format!("v{i}").as_bytes() => {
                report
                    .violations
                    .push(format!("divergence: k{i} holds {:?}", v));
            }
            Some(_) if lsn <= cut => {}
            Some(_) => report.violations.push(format!(
                "phantom: k{i} (lsn {lsn}) present beyond follower LSN {cut}"
            )),
            None if lsn <= cut => report
                .violations
                .push(format!("prefix hole: k{i} (lsn {lsn}) missing below {cut}")),
            None => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        assert_eq!(draw_schedule(&mut a, 100), draw_schedule(&mut b, 100));
    }
}
