//! Chaos CLI: `abase-chaos --episodes 50 --seed 0 [--ticks 30] [--quiet]`.
//!
//! Runs seeded fault-injection episodes against a replicated cluster and
//! exits non-zero if any invariant broke, printing a replayable
//! `CHAOS_SEED=<n>` line per failing episode.

use abase_chaos::{ChaosConfig, ChaosRunner};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: abase-chaos [--episodes N] [--seed BASE] [--ticks T] \
         [--partitions P] [--nodes M] [--socket-episodes S] [--quiet]"
    );
    std::process::exit(2);
}

fn main() {
    let mut episodes: u64 = 50;
    let mut socket_episodes: u64 = 0;
    let mut seed: u64 = 0;
    let mut quiet = false;
    let mut config = ChaosConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} expects a number");
                usage()
            })
        };
        match arg.as_str() {
            "--episodes" => episodes = value("--episodes"),
            "--socket-episodes" => socket_episodes = value("--socket-episodes"),
            "--seed" => seed = value("--seed"),
            "--ticks" => config.ticks = value("--ticks"),
            "--partitions" => config.partitions = value("--partitions"),
            "--nodes" => config.nodes = value("--nodes") as u32,
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    let runner = ChaosRunner::new(config);
    let started = Instant::now();
    let mut failures = 0u64;
    for i in 0..episodes {
        let report = runner.run_episode(seed + i);
        if report.ok() {
            if !quiet {
                println!(
                    "episode seed={} ok: {} acked / {} failed writes, {} reads, \
                     {} kills, {} resyncs, {} faults, migrations {}/{}/{} \
                     (started/done/aborted)",
                    report.seed,
                    report.writes_acked,
                    report.writes_failed,
                    report.reads,
                    report.kills,
                    report.resyncs,
                    report.faults_armed,
                    report.migrations_started,
                    report.migrations_completed,
                    report.migrations_aborted,
                );
            }
        } else {
            failures += 1;
            for violation in &report.violations {
                eprintln!("episode seed={}: VIOLATION: {violation}", report.seed);
            }
            eprintln!(
                "episode seed={} FAILED — replay with CHAOS_SEED={}",
                report.seed, report.seed
            );
        }
    }
    // Socket-transport episodes: frame drop/duplicate/reorder, partitions,
    // and mid-stream leader kills over a real TCP replica pair.
    let mut socket_failures = 0u64;
    for i in 0..socket_episodes {
        let report = abase_chaos::run_socket_episode(seed + i);
        if report.ok() {
            if !quiet {
                println!(
                    "socket episode seed={} ok: {} writes, acked lsn {}, \
                     {} frame faults, {} resyncs{}",
                    report.seed,
                    report.writes,
                    report.acked_lsn,
                    report.faults_armed,
                    report.resyncs,
                    if report.leader_killed {
                        ", leader killed"
                    } else {
                        ""
                    },
                );
            }
        } else {
            socket_failures += 1;
            for violation in &report.violations {
                eprintln!(
                    "socket episode seed={}: VIOLATION: {violation}",
                    report.seed
                );
            }
            eprintln!(
                "socket episode seed={} FAILED — replay with CHAOS_SEED={}",
                report.seed, report.seed
            );
        }
    }
    println!(
        "chaos: {}/{episodes} episodes green, {}/{socket_episodes} socket episodes green \
         in {:.1?} (base seed {seed})",
        episodes - failures,
        socket_episodes - socket_failures,
        started.elapsed()
    );
    if failures + socket_failures > 0 {
        std::process::exit(1);
    }
}
