//! Predictive autoscaling — Algorithm 1, verbatim.
//!
//! ```text
//! Require: Q_T (tenant quota), N (partitions), U_max (forecast peak usage)
//!  1: if U_max > 0.85 × Q_T then
//!  2:     Q_T ← U_max / 0.65
//!  3:     Q_P ← Q_T / N
//!  4:     if Q_P > UP then trigger partition split so Q_P ← 0.5 × Q_P
//!  5: else if U_max < 0.65 × Q_T and not scaled in last 7 days then
//!  6:     Q_T ← U_max / 0.65
//!  7:     Q_P ← max(Q_T / N, LOWER)
//!  8: end if
//! ```
//!
//! The forecast `U_max` comes from the §5.2 ensemble over 30 days of hourly
//! usage, predicting 7 days ahead.

use abase_forecast::{EnsembleForecaster, ForecastOutput};
use abase_util::clock::{days, SimTime};
use abase_util::TimeSeries;
use std::collections::HashMap;

/// Autoscaler thresholds.
#[derive(Debug, Clone, Copy)]
pub struct AutoscaleConfig {
    /// Scale-up trigger: forecast usage above this fraction of quota (0.85).
    pub upper_threshold: f64,
    /// Post-scaling target utilization and scale-down trigger (0.65).
    pub lower_threshold: f64,
    /// `UP`: partition quota above which a split is triggered (RU/s).
    pub partition_quota_upper: f64,
    /// `LOWER`: minimum partition quota, absorbing occasional bursts (RU/s).
    pub partition_quota_lower: f64,
    /// Cool-off between downscales (7 days).
    pub downscale_cooldown: SimTime,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        Self {
            upper_threshold: 0.85,
            lower_threshold: 0.65,
            partition_quota_upper: 10_000.0,
            partition_quota_lower: 100.0,
            downscale_cooldown: days(7),
        }
    }
}

/// The decision produced for one tenant.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalingDecision {
    /// Forecast within band: leave the quota unchanged.
    Hold,
    /// Raise the tenant quota; optionally split partitions.
    ScaleUp {
        /// New tenant quota (`U_max / 0.65`).
        new_tenant_quota: f64,
        /// New per-partition quota after any split.
        new_partition_quota: f64,
        /// New partition count (doubled when a split triggered).
        new_partitions: u32,
        /// True when the partition quota breached `UP` and a split fired.
        split: bool,
    },
    /// Lower the tenant quota (respecting the `LOWER` floor per partition).
    ScaleDown {
        /// New tenant quota.
        new_tenant_quota: f64,
        /// New per-partition quota (floored at `LOWER`).
        new_partition_quota: f64,
    },
}

/// Stateful autoscaler: remembers per-tenant scale times for the cool-off and
/// owns the forecasting pipeline.
#[derive(Debug, Default)]
pub struct Autoscaler {
    config: AutoscaleConfig,
    forecaster: EnsembleForecaster,
    last_scaled: HashMap<u32, SimTime>,
}

impl Autoscaler {
    /// An autoscaler with the given thresholds.
    pub fn new(config: AutoscaleConfig) -> Self {
        Self {
            config,
            forecaster: EnsembleForecaster::default(),
            last_scaled: HashMap::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AutoscaleConfig {
        &self.config
    }

    /// Pure Algorithm 1: decide from an already-forecast `u_max`.
    pub fn decide(
        &mut self,
        tenant: u32,
        now: SimTime,
        tenant_quota: f64,
        partitions: u32,
        u_max: f64,
    ) -> ScalingDecision {
        let cfg = &self.config;
        assert!(partitions > 0, "tenant must have at least one partition");
        if u_max > cfg.upper_threshold * tenant_quota {
            let new_tenant_quota = u_max / cfg.lower_threshold;
            let mut new_partition_quota = new_tenant_quota / partitions as f64;
            let mut new_partitions = partitions;
            let mut split = false;
            if new_partition_quota > cfg.partition_quota_upper {
                new_partition_quota *= 0.5;
                new_partitions *= 2;
                split = true;
            }
            self.last_scaled.insert(tenant, now);
            ScalingDecision::ScaleUp {
                new_tenant_quota,
                new_partition_quota,
                new_partitions,
                split,
            }
        } else if u_max < cfg.lower_threshold * tenant_quota {
            let since = self
                .last_scaled
                .get(&tenant)
                .map(|&t| now.saturating_sub(t));
            if since.is_some_and(|dt| dt < cfg.downscale_cooldown) {
                return ScalingDecision::Hold;
            }
            let new_tenant_quota = u_max / cfg.lower_threshold;
            let new_partition_quota =
                (new_tenant_quota / partitions as f64).max(cfg.partition_quota_lower);
            self.last_scaled.insert(tenant, now);
            ScalingDecision::ScaleDown {
                new_tenant_quota,
                new_partition_quota,
            }
        } else {
            ScalingDecision::Hold
        }
    }

    /// Forecast the next-7-day peak from 30 days of hourly `usage` (with the
    /// tenant's hourly `quota` series for denoising), then run Algorithm 1.
    pub fn forecast_and_decide(
        &mut self,
        tenant: u32,
        now: SimTime,
        usage: &TimeSeries,
        quota: Option<&TimeSeries>,
        tenant_quota: f64,
        partitions: u32,
    ) -> (ScalingDecision, ForecastOutput) {
        let horizon = 7 * 24; // 7 days of hourly samples
        let output = self.forecaster.forecast(usage, quota, horizon);
        let decision = self.decide(tenant, now, tenant_quota, partitions, output.peak);
        (decision, output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abase_util::clock::days;

    fn scaler() -> Autoscaler {
        Autoscaler::new(AutoscaleConfig::default())
    }

    #[test]
    fn holds_inside_band() {
        let mut s = scaler();
        // 70% of quota: between 0.65 and 0.85.
        assert_eq!(s.decide(1, 0, 1000.0, 4, 700.0), ScalingDecision::Hold);
    }

    #[test]
    fn scales_up_above_85_percent() {
        let mut s = scaler();
        let d = s.decide(1, 0, 1000.0, 4, 900.0);
        match d {
            ScalingDecision::ScaleUp {
                new_tenant_quota,
                new_partition_quota,
                new_partitions,
                split,
            } => {
                assert!((new_tenant_quota - 900.0 / 0.65).abs() < 1e-9);
                assert_eq!(new_partitions, 4);
                assert!(!split);
                assert!((new_partition_quota - new_tenant_quota / 4.0).abs() < 1e-9);
            }
            other => panic!("expected ScaleUp, got {other:?}"),
        }
    }

    #[test]
    fn split_triggers_when_partition_quota_breaches_up() {
        let mut s = Autoscaler::new(AutoscaleConfig {
            partition_quota_upper: 500.0,
            ..Default::default()
        });
        // New quota = 3000/0.65 ≈ 4615; per-partition (N=4) ≈ 1154 > 500 → split.
        let d = s.decide(1, 0, 3000.0, 4, 3000.0);
        match d {
            ScalingDecision::ScaleUp {
                new_partition_quota,
                new_partitions,
                split,
                new_tenant_quota,
            } => {
                assert!(split);
                assert_eq!(new_partitions, 8);
                assert!((new_partition_quota - new_tenant_quota / 8.0).abs() < 1e-9);
            }
            other => panic!("expected split ScaleUp, got {other:?}"),
        }
    }

    #[test]
    fn scales_down_below_65_percent() {
        let mut s = scaler();
        let d = s.decide(1, days(30), 1000.0, 2, 100.0);
        match d {
            ScalingDecision::ScaleDown {
                new_tenant_quota,
                new_partition_quota,
            } => {
                assert!((new_tenant_quota - 100.0 / 0.65).abs() < 1e-9);
                // 153.8/2 = 76.9 < LOWER=100 → floored.
                assert!((new_partition_quota - 100.0).abs() < 1e-9);
            }
            other => panic!("expected ScaleDown, got {other:?}"),
        }
    }

    #[test]
    fn downscale_respects_cooldown() {
        let mut s = scaler();
        // An upscale at t=0 stamps the tenant.
        s.decide(1, 0, 1000.0, 2, 900.0);
        // 3 days later usage collapsed — but cooldown forbids downscaling.
        assert_eq!(
            s.decide(1, days(3), 1384.0, 2, 100.0),
            ScalingDecision::Hold
        );
        // 8 days later it is allowed.
        assert!(matches!(
            s.decide(1, days(8), 1384.0, 2, 100.0),
            ScalingDecision::ScaleDown { .. }
        ));
    }

    #[test]
    fn upscale_ignores_cooldown() {
        let mut s = scaler();
        s.decide(1, 0, 1000.0, 2, 100.0); // downscale at t=0
                                          // Usage explodes the next day: upscale must fire immediately.
        assert!(matches!(
            s.decide(1, days(1), 153.8, 2, 500.0),
            ScalingDecision::ScaleUp { .. }
        ));
    }

    #[test]
    fn forecast_and_decide_scales_growing_tenant() {
        const HOUR: u64 = 3_600_000_000;
        // 30 days of hourly usage rising linearly toward the quota.
        let usage: Vec<f64> = (0..720).map(|t| 300.0 + t as f64).collect();
        let series = TimeSeries::new(0, HOUR, usage);
        let mut s = scaler();
        let (decision, output) = s.forecast_and_decide(7, days(30), &series, None, 1100.0, 4);
        assert!(output.peak > 1000.0, "peak={}", output.peak);
        assert!(
            matches!(decision, ScalingDecision::ScaleUp { .. }),
            "{decision:?}"
        );
    }

    #[test]
    fn cooldown_applies_per_tenant() {
        let mut s = scaler();
        s.decide(1, 0, 1000.0, 2, 900.0);
        // Tenant 2 never scaled: may downscale immediately.
        assert!(matches!(
            s.decide(2, days(1), 1000.0, 2, 100.0),
            ScalingDecision::ScaleDown { .. }
        ));
    }
}
