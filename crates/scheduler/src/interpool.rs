//! Inter-pool rescheduling (paper §5.3, final paragraph).
//!
//! "To balance the resource utilization between two resource pools, Pool_H
//! (with higher load) and Pool_L (with lower load), we tend to vacate a
//! portion of the DataNodes from Pool_L and reallocate them to Pool_H.
//! Initially, we select some low-utilization DataNodes from Pool_L and migrate
//! replicas from these selected DataNodes to others within the same pool.
//! Then, we reassign these vacated DataNodes to Pool_H. Finally, we invoke the
//! intra-pool algorithm to re-balance the load within the two resource pools."

use crate::load::{NodeState, PoolState};
use crate::reschedule::{Migration, Rescheduler};

/// Result of one inter-pool rebalancing action.
#[derive(Debug, Default)]
pub struct InterPoolOutcome {
    /// Ids of the nodes moved from the low pool into the high pool.
    pub reassigned_nodes: Vec<u32>,
    /// Migrations executed while vacating nodes inside the low pool.
    pub vacate_migrations: Vec<Migration>,
    /// Migrations executed by the final intra-pool passes.
    pub rebalance_migrations: Vec<Migration>,
}

/// Combined utilization of a pool: mean of RU and storage utilization of the
/// whole pool (capacity-weighted).
pub fn pool_pressure(pool: &PoolState) -> f64 {
    let (r, s) = pool.optimal_load();
    (r + s) / 2.0
}

/// Move up to `max_nodes` of the least-utilized nodes of `low` into `high`,
/// vacating their replicas first, then rebalance both pools intra-pool.
///
/// Returns `None` when `low` has no node that can be fully vacated (every
/// replica must find a valid destination).
pub fn rebalance_pools(
    high: &mut PoolState,
    low: &mut PoolState,
    max_nodes: usize,
    rescheduler: &Rescheduler,
) -> Option<InterPoolOutcome> {
    let mut outcome = InterPoolOutcome::default();
    for _ in 0..max_nodes {
        // Pick the least-utilized node in the low pool.
        let idx = (0..low.nodes.len()).min_by(|&a, &b| {
            let ua = low.nodes[a].ru_util() + low.nodes[a].storage_util();
            let ub = low.nodes[b].ru_util() + low.nodes[b].storage_util();
            ua.partial_cmp(&ub).expect("finite utilization")
        })?;
        if low.nodes.len() <= 1 {
            break; // never empty a pool completely
        }
        // Vacate it: move every replica to the best-gain destination within
        // the same pool (any node that can host it and stays feasible).
        let mut node = low.nodes.remove(idx);
        let mut vacated = Vec::new();
        let replica_ids: Vec<u64> = node.replicas.iter().map(|r| r.id).collect();
        let mut ok = true;
        for rid in replica_ids {
            let replica = node.remove_replica(rid).expect("replica present");
            // Destination: lowest storage+ru utilization node not hosting the
            // partition.
            let dst = (0..low.nodes.len())
                .filter(|&i| !low.nodes[i].hosts_partition(replica.partition))
                .min_by(|&a, &b| {
                    let ua = low.nodes[a].ru_util() + low.nodes[a].storage_util();
                    let ub = low.nodes[b].ru_util() + low.nodes[b].storage_util();
                    ua.partial_cmp(&ub).expect("finite utilization")
                });
            match dst {
                Some(d) => {
                    outcome.vacate_migrations.push(Migration {
                        replica_id: rid,
                        from_node: node.id,
                        to_node: low.nodes[d].id,
                        resource: crate::reschedule::Resource::Ru,
                        gain: 0.0,
                    });
                    low.nodes[d].add_replica(replica);
                    vacated.push(rid);
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            // Could not vacate: put the node back and stop.
            low.nodes.push(node);
            break;
        }
        // Reassign the empty node to the high pool.
        outcome.reassigned_nodes.push(node.id);
        debug_assert!(node.replicas.is_empty());
        high.nodes.push(NodeState::new(
            node.id,
            node.ru_capacity,
            node.storage_capacity,
        ));
    }
    if outcome.reassigned_nodes.is_empty() {
        return None;
    }
    // Final intra-pool rebalance of both pools.
    outcome
        .rebalance_migrations
        .extend(rescheduler.rebalance_to_convergence(high, 100));
    outcome
        .rebalance_migrations
        .extend(rescheduler.rebalance_to_convergence(low, 100));
    Some(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::{LoadVector, ReplicaLoad};

    fn replica(id: u64, partition: u64, ru: f64, storage: f64) -> ReplicaLoad {
        ReplicaLoad::from_total(id, 1, partition, LoadVector::flat(ru), 0.7, storage)
    }

    fn pool(n_nodes: u32, replicas_per_node: u64, ru: f64, storage: f64, id0: u32) -> PoolState {
        let mut nodes = Vec::new();
        let mut rid = u64::from(id0) * 10_000;
        for i in 0..n_nodes {
            let mut node = NodeState::new(id0 + i, 100.0, 1000.0);
            for _ in 0..replicas_per_node {
                node.add_replica(replica(rid, rid, ru, storage));
                rid += 1;
            }
            nodes.push(node);
        }
        PoolState::new(nodes)
    }

    #[test]
    fn pressure_orders_pools() {
        let busy = pool(4, 8, 10.0, 100.0, 0);
        let idle = pool(4, 1, 2.0, 10.0, 100);
        assert!(pool_pressure(&busy) > pool_pressure(&idle));
    }

    #[test]
    fn nodes_move_from_low_to_high_pool() {
        let mut high = pool(4, 9, 10.0, 100.0, 0); // ~90% loaded
        let mut low = pool(4, 1, 2.0, 10.0, 100); // nearly idle
        let before_high_nodes = high.nodes.len();
        let before_low_replicas = low.replica_count();
        let out = rebalance_pools(&mut high, &mut low, 2, &Rescheduler::default()).unwrap();
        assert_eq!(out.reassigned_nodes.len(), 2);
        assert_eq!(high.nodes.len(), before_high_nodes + 2);
        assert_eq!(low.nodes.len(), 2);
        // No replica lost in the shuffle.
        assert_eq!(low.replica_count(), before_low_replicas);
        // High pool pressure decreased (more capacity, same load).
        assert!(pool_pressure(&high) < 0.9);
    }

    #[test]
    fn vacated_replicas_preserve_partition_constraint() {
        let mut high = pool(2, 8, 10.0, 100.0, 0);
        let mut low = pool(3, 2, 2.0, 10.0, 100);
        rebalance_pools(&mut high, &mut low, 1, &Rescheduler::default());
        for node in low.nodes.iter().chain(high.nodes.iter()) {
            let mut parts: Vec<u64> = node.replicas.iter().map(|r| r.partition).collect();
            let before = parts.len();
            parts.sort_unstable();
            parts.dedup();
            assert_eq!(
                parts.len(),
                before,
                "partition co-located on node {}",
                node.id
            );
        }
    }

    #[test]
    fn never_empties_the_low_pool() {
        let mut high = pool(2, 8, 10.0, 100.0, 0);
        let mut low = pool(2, 1, 1.0, 5.0, 100);
        let out = rebalance_pools(&mut high, &mut low, 10, &Rescheduler::default());
        assert!(!low.nodes.is_empty());
        if let Some(out) = out {
            assert!(out.reassigned_nodes.len() <= 1);
        }
    }

    #[test]
    fn high_pool_gets_rebalanced_onto_new_nodes() {
        let mut high = pool(3, 10, 10.0, 100.0, 0);
        let mut low = pool(4, 1, 1.0, 5.0, 100);
        let before_std = high.ru_util_std();
        let out = rebalance_pools(&mut high, &mut low, 2, &Rescheduler::default()).unwrap();
        assert!(!out.rebalance_migrations.is_empty());
        // New nodes received load: std over the larger pool must not explode.
        assert!(high.ru_util_std() <= before_std + 0.35);
        let new_node_has_load = high
            .nodes
            .iter()
            .filter(|n| out.reassigned_nodes.contains(&n.id))
            .any(|n| !n.replicas.is_empty());
        assert!(new_node_has_load, "reassigned nodes stayed empty");
    }
}
