//! Intra-pool workload rescheduling — Algorithm 2, plus the replica-count
//! balance phase (paper §5.3).
//!
//! Phase 1 balances each tenant's replica *count* across nodes ("distributing
//! the count of a tenant's replicas across DataNodes as evenly as possible,
//! thus enhancing elasticity and robustness against failures").
//!
//! Phase 2 is Algorithm 2: for each resource (RU, then Storage), divide nodes
//! into S_L / S_M / S_H by utilization against the optimal point; for each
//! non-migrating high-load node, find the replica and low-load destination
//! maximizing the gain
//! `G = max(L(src), L(dst)) − max(L(src−RE), L(dst+RE))`,
//! and migrate when the gain is positive. `CanPlace` enforces that the
//! destination neither takes a second replica of the same partition nor gets
//! pushed into the high-load set.

use crate::load::{NodeState, PoolState, ReplicaLoad};

/// Which resource dimension a migration balanced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// Request units (CPU-ish).
    Ru,
    /// Storage bytes.
    Storage,
}

/// A replica movement decided by the rescheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct Migration {
    /// Replica that moved.
    pub replica_id: u64,
    /// Source node.
    pub from_node: u32,
    /// Destination node.
    pub to_node: u32,
    /// Dimension whose pass produced the move.
    pub resource: Resource,
    /// The gain `G` realized.
    pub gain: f64,
}

/// Rescheduler tuning.
#[derive(Debug, Clone, Copy)]
pub struct ReschedulerConfig {
    /// `θ`: the dead-band below the optimal point separating S_L from S_M
    /// ("manually set threshold, such as 5 %").
    pub theta: f64,
    /// Minimum gain for a migration to be worth its cost.
    pub min_gain: f64,
}

impl Default for ReschedulerConfig {
    fn default() -> Self {
        Self {
            theta: 0.05,
            min_gain: 1e-4,
        }
    }
}

/// The intra-pool rescheduler.
#[derive(Debug, Clone, Default)]
pub struct Rescheduler {
    config: ReschedulerConfig,
}

impl Rescheduler {
    /// A rescheduler with the given tuning.
    pub fn new(config: ReschedulerConfig) -> Self {
        Self { config }
    }

    /// Phase 1: balance per-tenant replica counts. Moves one replica at a
    /// time from the node holding the most replicas of a tenant to the node
    /// holding the fewest (that can accept it), until every tenant's spread
    /// (max − min) is ≤ 1. Returns the migrations performed.
    pub fn balance_replica_counts(&self, pool: &mut PoolState) -> Vec<Migration> {
        let mut out = Vec::new();
        let tenants: Vec<u32> = {
            let mut t: Vec<u32> = pool
                .nodes
                .iter()
                .flat_map(|n| n.replicas.iter().map(|r| r.tenant))
                .collect();
            t.sort_unstable();
            t.dedup();
            t
        };
        for tenant in tenants {
            // Bounded loop: each move strictly reduces the spread.
            for _ in 0..pool.replica_count() {
                let counts: Vec<usize> = pool
                    .nodes
                    .iter()
                    .map(|n| n.tenant_replica_count(tenant))
                    .collect();
                let (max_i, &max_c) = counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &c)| c)
                    .expect("pool has nodes");
                let (min_i, &min_c) = counts
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &c)| c)
                    .expect("pool has nodes");
                if max_c <= min_c + 1 {
                    break;
                }
                // Pick any replica of the tenant on max_i that min_i can host.
                let candidate = pool.nodes[max_i]
                    .replicas
                    .iter()
                    .filter(|r| r.tenant == tenant)
                    .find(|r| !pool.nodes[min_i].hosts_partition(r.partition))
                    .map(|r| r.id);
                let Some(id) = candidate else { break };
                let replica = pool.nodes[max_i]
                    .remove_replica(id)
                    .expect("candidate present");
                let from = pool.nodes[max_i].id;
                let to = pool.nodes[min_i].id;
                pool.nodes[min_i].add_replica(replica);
                out.push(Migration {
                    replica_id: id,
                    from_node: from,
                    to_node: to,
                    resource: Resource::Ru,
                    gain: 0.0,
                });
            }
        }
        out
    }

    /// Phase 2: one round of Algorithm 2 over both resources. At most one
    /// migration is started per source node per round (`IsMigrating` guards),
    /// mirroring the production constraint that migrations are slow.
    pub fn reschedule_round(&self, pool: &mut PoolState) -> Vec<Migration> {
        let mut out = Vec::new();
        let (r, s) = pool.optimal_load();
        for resource in [Resource::Ru, Resource::Storage] {
            let (low, _medium, high) = self.divide(pool, resource, r, s);
            for src_idx in high {
                if pool.nodes[src_idx].is_migrating {
                    continue;
                }
                let mut best_gain = 0.0_f64;
                let mut best: Option<(u64, usize)> = None;
                for re in &pool.nodes[src_idx].replicas {
                    for &dst_idx in &low {
                        if dst_idx == src_idx {
                            continue;
                        }
                        let dst = &pool.nodes[dst_idx];
                        if dst.is_migrating || !self.can_place(dst, re, r, s, resource) {
                            continue;
                        }
                        let g = gain(&pool.nodes[src_idx], dst, re, r, s);
                        if g > best_gain {
                            best_gain = g;
                            best = Some((re.id, dst_idx));
                        }
                    }
                }
                if let Some((replica_id, dst_idx)) = best {
                    if best_gain < self.config.min_gain {
                        continue;
                    }
                    let replica = pool.nodes[src_idx]
                        .remove_replica(replica_id)
                        .expect("chosen replica present");
                    let from = pool.nodes[src_idx].id;
                    let to = pool.nodes[dst_idx].id;
                    pool.nodes[dst_idx].add_replica(replica);
                    pool.nodes[src_idx].is_migrating = true;
                    pool.nodes[dst_idx].is_migrating = true;
                    out.push(Migration {
                        replica_id,
                        from_node: from,
                        to_node: to,
                        resource,
                        gain: best_gain,
                    });
                }
            }
        }
        out
    }

    /// Run rounds until no migration fires or `max_rounds` is hit, modeling
    /// the offline regime where every move started in round N has finished
    /// before round N+1 begins: each in-flight migration is completed
    /// *individually* (its two nodes unblocked) rather than by a wholesale
    /// flag sweep, so the completion semantics match the live engine's
    /// per-migration callbacks. Returns all migrations.
    pub fn rebalance_to_convergence(
        &self,
        pool: &mut PoolState,
        max_rounds: usize,
    ) -> Vec<Migration> {
        let mut all = Vec::new();
        let mut inflight: Vec<Migration> = Vec::new();
        for _ in 0..max_rounds {
            for m in inflight.drain(..) {
                pool.complete_migration(m.from_node, m.to_node);
            }
            let moved = self.reschedule_round(pool);
            if moved.is_empty() {
                break;
            }
            inflight.clone_from(&moved);
            all.extend(moved);
        }
        for m in inflight {
            pool.complete_migration(m.from_node, m.to_node);
        }
        all
    }

    /// `Division({DataNodes}, resource)`: indices of S_L, S_M, S_H.
    fn divide(
        &self,
        pool: &PoolState,
        resource: Resource,
        r: f64,
        s: f64,
    ) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        let optimal = match resource {
            Resource::Ru => r,
            Resource::Storage => s,
        };
        let theta = self.config.theta;
        let mut low = Vec::new();
        let mut medium = Vec::new();
        let mut high = Vec::new();
        for (i, node) in pool.nodes.iter().enumerate() {
            let util = match resource {
                Resource::Ru => node.ru_util(),
                Resource::Storage => node.storage_util(),
            };
            if util <= optimal - theta {
                low.push(i);
            } else if util <= optimal {
                medium.push(i);
            } else {
                high.push(i);
            }
        }
        (low, medium, high)
    }

    /// `DN.CanPlace(RE)`: replica-distribution and overload constraints.
    fn can_place(
        &self,
        dst: &NodeState,
        re: &ReplicaLoad,
        r: f64,
        s: f64,
        resource: Resource,
    ) -> bool {
        if dst.hosts_partition(re.partition) {
            return false; // replicas of one partition must stay on distinct nodes
        }
        // Must not push the destination into the high-load set.
        match resource {
            Resource::Ru => dst.ru_util_with(re) <= r,
            Resource::Storage => dst.storage_util_with(re) <= s,
        }
    }
}

/// `G(RE, Des_DN) = max(L(src), L(dst)) − max(L(src − RE), L(dst + RE))`.
pub fn gain(src: &NodeState, dst: &NodeState, re: &ReplicaLoad, r: f64, s: f64) -> f64 {
    let before = src.loss(r, s).max(dst.loss(r, s));
    let after = src.loss_without(re, r, s).max(dst.loss_with(re, r, s));
    before - after
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::LoadVector;

    fn replica(id: u64, tenant: u32, partition: u64, ru_peak: f64, storage: f64) -> ReplicaLoad {
        ReplicaLoad::from_total(
            id,
            tenant,
            partition,
            LoadVector::flat(ru_peak),
            0.7,
            storage,
        )
    }

    /// A pool with one overloaded node and one idle node.
    fn skewed_pool() -> PoolState {
        let mut hot = NodeState::new(1, 100.0, 1000.0);
        for i in 0..8 {
            hot.add_replica(replica(i, 1, i, 10.0, 100.0));
        }
        let cold = NodeState::new(2, 100.0, 1000.0);
        PoolState::new(vec![hot, cold])
    }

    #[test]
    fn gain_positive_for_balancing_move() {
        let pool = skewed_pool();
        let (r, s) = pool.optimal_load();
        let re = &pool.nodes[0].replicas[0];
        let g = gain(&pool.nodes[0], &pool.nodes[1], re, r, s);
        assert!(g > 0.0, "gain={g}");
    }

    #[test]
    fn gain_negative_for_unbalancing_move() {
        let pool = skewed_pool();
        let (r, s) = pool.optimal_load();
        let re = replica(100, 1, 100, 10.0, 100.0);
        // Moving INTO the hot node from the cold one.
        let g = gain(&pool.nodes[1], &pool.nodes[0], &re, r, s);
        assert!(g <= 0.0, "gain={g}");
    }

    #[test]
    fn round_moves_replicas_from_high_to_low() {
        let mut pool = skewed_pool();
        let before_std = pool.ru_util_std();
        let moves = Rescheduler::default().reschedule_round(&mut pool);
        assert!(!moves.is_empty());
        assert!(moves.iter().all(|m| m.from_node == 1 && m.to_node == 2));
        assert!(pool.ru_util_std() < before_std);
    }

    #[test]
    fn is_migrating_limits_one_move_per_node_per_round() {
        let mut pool = skewed_pool();
        let moves = Rescheduler::default().reschedule_round(&mut pool);
        // Both nodes flagged after the first move → exactly one migration.
        assert_eq!(moves.len(), 1);
        // Next round without completing the move does nothing.
        let more = Rescheduler::default().reschedule_round(&mut pool);
        assert!(more.is_empty());
        // Completing that migration re-enables its nodes.
        pool.complete_migration(moves[0].from_node, moves[0].to_node);
        assert!(!Rescheduler::default()
            .reschedule_round(&mut pool)
            .is_empty());
    }

    #[test]
    fn slow_migration_blocks_a_second_move_from_the_same_node() {
        // A migration that has not completed must keep blocking its source
        // across arbitrarily many rounds — the regression the old wholesale
        // `finish_migrations` sweep hid (every round cleared every flag, so
        // a "slow" move never actually back-pressured the scheduler).
        let mut pool = skewed_pool();
        let first = Rescheduler::default().reschedule_round(&mut pool);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].from_node, 1);
        for round in 0..5 {
            let moves = Rescheduler::default().reschedule_round(&mut pool);
            assert!(
                moves.is_empty(),
                "round {round} migrated off node 1 while its move was still in flight: {moves:?}"
            );
            assert!(pool.nodes[0].is_migrating, "source flag dropped early");
        }
        // Only the engine's per-migration completion unblocks the node.
        pool.complete_migration(first[0].from_node, first[0].to_node);
        assert!(!pool.nodes[0].is_migrating && !pool.nodes[1].is_migrating);
        let next = Rescheduler::default().reschedule_round(&mut pool);
        assert_eq!(next.len(), 1, "completed nodes should migrate again");
        assert_eq!(next[0].from_node, 1);
        // Completing an unrelated pair must not unblock a busy node.
        pool.complete_migration(7, 9);
        assert!(pool.nodes[0].is_migrating);
    }

    #[test]
    fn convergence_balances_utilization() {
        let mut pool = skewed_pool();
        let before = pool.ru_util_std();
        let moves = Rescheduler::default().rebalance_to_convergence(&mut pool, 100);
        let after = pool.ru_util_std();
        assert!(moves.len() >= 3);
        assert!(after < before * 0.35, "std {before} -> {after}");
    }

    #[test]
    fn can_place_rejects_same_partition() {
        let resched = Rescheduler::default();
        let mut dst = NodeState::new(2, 100.0, 1000.0);
        dst.add_replica(replica(50, 1, 7, 1.0, 1.0));
        let re = replica(51, 1, 7, 1.0, 1.0); // same partition 7
        assert!(!resched.can_place(&dst, &re, 1.0, 1.0, Resource::Ru));
        let other = replica(52, 1, 8, 1.0, 1.0);
        assert!(resched.can_place(&dst, &other, 1.0, 1.0, Resource::Ru));
    }

    #[test]
    fn can_place_rejects_overloading_destination() {
        let resched = Rescheduler::default();
        let mut dst = NodeState::new(2, 100.0, 1000.0);
        dst.add_replica(replica(1, 1, 1, 40.0, 10.0));
        // Optimal R = 0.5; adding 20 RU → util 0.6 > R.
        let re = replica(2, 1, 2, 20.0, 10.0);
        assert!(!resched.can_place(&dst, &re, 0.5, 0.5, Resource::Ru));
    }

    #[test]
    fn storage_dimension_also_balances() {
        let mut fat = NodeState::new(1, 1000.0, 1000.0);
        for i in 0..6 {
            fat.add_replica(replica(i, 1, i, 1.0, 150.0)); // storage heavy
        }
        let thin = NodeState::new(2, 1000.0, 1000.0);
        let mut pool = PoolState::new(vec![fat, thin]);
        let before = pool.storage_util_std();
        Rescheduler::default().rebalance_to_convergence(&mut pool, 50);
        assert!(pool.storage_util_std() < before * 0.5);
    }

    #[test]
    fn replica_count_balance_spreads_tenant() {
        let mut n1 = NodeState::new(1, 1000.0, 10_000.0);
        for i in 0..6 {
            n1.add_replica(replica(i, 42, i, 1.0, 1.0));
        }
        let n2 = NodeState::new(2, 1000.0, 10_000.0);
        let n3 = NodeState::new(3, 1000.0, 10_000.0);
        let mut pool = PoolState::new(vec![n1, n2, n3]);
        let moves = Rescheduler::default().balance_replica_counts(&mut pool);
        assert!(!moves.is_empty());
        let counts: Vec<usize> = pool
            .nodes
            .iter()
            .map(|n| n.tenant_replica_count(42))
            .collect();
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 1, "counts={counts:?}");
    }

    #[test]
    fn balanced_pool_needs_no_moves() {
        let mut n1 = NodeState::new(1, 100.0, 1000.0);
        let mut n2 = NodeState::new(2, 100.0, 1000.0);
        n1.add_replica(replica(1, 1, 1, 30.0, 300.0));
        n2.add_replica(replica(2, 1, 2, 30.0, 300.0));
        let mut pool = PoolState::new(vec![n1, n2]);
        assert!(Rescheduler::default()
            .reschedule_round(&mut pool)
            .is_empty());
    }

    #[test]
    fn larger_pool_converges_and_respects_partition_constraint() {
        // 12 nodes; tenant partitions with 2 replicas each must never co-locate.
        let mut nodes: Vec<NodeState> = (0..12)
            .map(|i| NodeState::new(i, 500.0, 10_000.0))
            .collect();
        let mut id = 0u64;
        for p in 0..30u64 {
            for copy in 0..2 {
                // Pile replicas onto the first 3 nodes.
                let n = ((p as usize) + copy) % 3;
                nodes[n].add_replica(replica(id, (p % 5) as u32, p, 20.0, 300.0));
                id += 1;
            }
        }
        let mut pool = PoolState::new(nodes);
        Rescheduler::default().rebalance_to_convergence(&mut pool, 200);
        // Constraint: no node hosts two replicas of one partition.
        for node in &pool.nodes {
            for p in 0..30u64 {
                let c = node.replicas.iter().filter(|r| r.partition == p).count();
                assert!(
                    c <= 1,
                    "node {} hosts {c} replicas of partition {p}",
                    node.id
                );
            }
        }
        assert!(pool.ru_util_std() < 0.2);
    }
}
