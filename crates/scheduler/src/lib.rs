//! # abase-scheduler
//!
//! ABase's workload management (paper §5): the predictive autoscaling policy
//! of Algorithm 1 and the multi-resource rescheduling of Algorithm 2.
//!
//! * [`autoscale`] — the scaling policy: forecast `U_max` for the next 7 days;
//!   scale up when it exceeds 85 % of the tenant quota (to `U_max / 0.65`),
//!   scale down below 65 % with a 7-day cool-off, split partitions whose quota
//!   exceeds the upper bound, and floor partition quotas at `LOWER`.
//! * [`load`] — the load indicators: 24-slot hour-of-day load vectors for
//!   replicas, data nodes, and resource pools; the optimal load point `⟨R,S⟩`;
//!   the L2-norm deviation loss; and the migration gain function.
//! * [`reschedule`] — intra-pool rescheduling: replica-count balancing
//!   (phase 1) and gain-maximizing replica migration between high- and
//!   low-load nodes (phase 2, Algorithm 2 verbatim).
//! * [`interpool`] — the inter-pool extension: vacate low-utilization nodes
//!   from an underloaded pool and reassign them to an overloaded pool.

#![deny(missing_docs)]

pub mod autoscale;
pub mod interpool;
pub mod load;
pub mod reschedule;

pub use autoscale::{AutoscaleConfig, Autoscaler, ScalingDecision};
pub use load::{LoadVector, NodeState, PoolState, ReplicaLoad};
pub use reschedule::{Migration, Rescheduler, ReschedulerConfig};
