//! Load indicators for rescheduling (paper §5.3, items 1–3).
//!
//! Replica load is a 24-slot hour-of-day vector (hourly averages over 7 days,
//! max-aggregated per hour of day). Node and pool loads are element-wise sums
//! whose **maximum slot** is the scalar load. The optimal point `⟨R,S⟩`
//! normalizes pool load by pool capacity; a node's deviation from it is an
//! L2 loss; a migration's gain is the reduction in the max loss of the two
//! nodes involved.

/// A 24-slot hour-of-day load vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadVector(pub [f64; 24]);

impl LoadVector {
    /// The zero vector.
    pub fn zero() -> Self {
        LoadVector([0.0; 24])
    }

    /// A flat vector (constant load — how storage behaves hour to hour).
    pub fn flat(value: f64) -> Self {
        LoadVector([value; 24])
    }

    /// Element-wise addition.
    pub fn add(&mut self, other: &LoadVector) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += b;
        }
    }

    /// Element-wise subtraction.
    pub fn sub(&mut self, other: &LoadVector) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a -= b;
        }
    }

    /// Scale every slot by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for a in self.0.iter_mut() {
            *a *= factor;
        }
    }

    /// `DN^ld = max_i Σ RE^ld_i` — the scalar load of the vector.
    pub fn peak(&self) -> f64 {
        self.0.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean slot value.
    pub fn mean(&self) -> f64 {
        self.0.iter().sum::<f64>() / 24.0
    }
}

/// The load of one replica in both resource dimensions.
///
/// RU is carried **split into read and write shares**: with consistency-aware
/// routing, follower replicas absorb read RU the leader never sees, so the
/// rescheduler's loss function and the autoscaler's `LoadVector` must account
/// reads where they were actually served — the combined vector
/// ([`ReplicaLoad::ru`]) is what Algorithm 2 weighs, the split is what read
/// routing and scaling policies reason about.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaLoad {
    /// Unique replica id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: u32,
    /// Partition the replica belongs to (two replicas of one partition must
    /// not share a node).
    pub partition: u64,
    /// Read-RU load vector (reads served *by this replica* — leader reads on
    /// a leader, routed follower reads on a follower).
    pub read_ru: LoadVector,
    /// Write-RU load vector (every replica of a group applies each write).
    pub write_ru: LoadVector,
    /// Storage footprint in bytes (flat across hours).
    pub storage: f64,
}

impl ReplicaLoad {
    /// A replica load from split read/write RU vectors.
    pub fn split(
        id: u64,
        tenant: u32,
        partition: u64,
        read_ru: LoadVector,
        write_ru: LoadVector,
        storage: f64,
    ) -> Self {
        Self {
            id,
            tenant,
            partition,
            read_ru,
            write_ru,
            storage,
        }
    }

    /// A replica load from a combined RU vector and the read share of it in
    /// `[0, 1]` — for callers that only track totals. The split is an
    /// attribution; the combined vector (what the loss function weighs) is
    /// preserved exactly.
    pub fn from_total(
        id: u64,
        tenant: u32,
        partition: u64,
        ru: LoadVector,
        read_share: f64,
        storage: f64,
    ) -> Self {
        let mut read_ru = ru;
        read_ru.scale(read_share.clamp(0.0, 1.0));
        let mut write_ru = ru;
        write_ru.scale(1.0 - read_share.clamp(0.0, 1.0));
        Self {
            id,
            tenant,
            partition,
            read_ru,
            write_ru,
            storage,
        }
    }

    /// The combined RU vector ("incorporates the weighted factors of read
    /// RU, write RU and the cache hit ratio").
    pub fn ru(&self) -> LoadVector {
        let mut v = self.read_ru;
        v.add(&self.write_ru);
        v
    }
}

/// One data node and its replicas.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// Node id.
    pub id: u32,
    /// RU/s capacity.
    pub ru_capacity: f64,
    /// Storage capacity in bytes.
    pub storage_capacity: f64,
    /// True while a replica migration involving this node is in flight.
    pub is_migrating: bool,
    /// Hosted replicas.
    pub replicas: Vec<ReplicaLoad>,
    read_ru_load: LoadVector,
    write_ru_load: LoadVector,
    storage_load: f64,
}

impl NodeState {
    /// An empty node.
    pub fn new(id: u32, ru_capacity: f64, storage_capacity: f64) -> Self {
        Self {
            id,
            ru_capacity,
            storage_capacity,
            is_migrating: false,
            replicas: Vec::new(),
            read_ru_load: LoadVector::zero(),
            write_ru_load: LoadVector::zero(),
            storage_load: 0.0,
        }
    }

    /// Host a replica.
    pub fn add_replica(&mut self, replica: ReplicaLoad) {
        self.read_ru_load.add(&replica.read_ru);
        self.write_ru_load.add(&replica.write_ru);
        self.storage_load += replica.storage;
        self.replicas.push(replica);
    }

    /// Remove a replica by id.
    pub fn remove_replica(&mut self, id: u64) -> Option<ReplicaLoad> {
        let pos = self.replicas.iter().position(|r| r.id == id)?;
        let replica = self.replicas.remove(pos);
        self.read_ru_load.sub(&replica.read_ru);
        self.write_ru_load.sub(&replica.write_ru);
        self.storage_load -= replica.storage;
        Some(replica)
    }

    /// The node's combined RU load vector (read + write).
    fn ru_load_vector(&self) -> LoadVector {
        let mut v = self.read_ru_load;
        v.add(&self.write_ru_load);
        v
    }

    /// The node's read-RU load vector — what follower-read routing adds to a
    /// node and what a read-aware autoscaler watches.
    pub fn read_ru_vector(&self) -> LoadVector {
        self.read_ru_load
    }

    /// The node's write-RU load vector.
    pub fn write_ru_vector(&self) -> LoadVector {
        self.write_ru_load
    }

    /// True if the node hosts a replica of `partition`.
    pub fn hosts_partition(&self, partition: u64) -> bool {
        self.replicas.iter().any(|r| r.partition == partition)
    }

    /// Replicas of `tenant` hosted here.
    pub fn tenant_replica_count(&self, tenant: u32) -> usize {
        self.replicas.iter().filter(|r| r.tenant == tenant).count()
    }

    /// Peak-hour RU load (read + write).
    pub fn ru_load(&self) -> f64 {
        if self.replicas.is_empty() {
            0.0
        } else {
            self.ru_load_vector().peak()
        }
    }

    /// Storage load in bytes.
    pub fn storage_load(&self) -> f64 {
        self.storage_load
    }

    /// RU utilization in `[0, …)`.
    pub fn ru_util(&self) -> f64 {
        self.ru_load() / self.ru_capacity
    }

    /// Storage utilization in `[0, …)`.
    pub fn storage_util(&self) -> f64 {
        self.storage_load / self.storage_capacity
    }

    /// L2-norm deviation from the optimal point `(r, s)`:
    /// `L(DN) = √((ru_util − R)² + (sto_util − S)²)`.
    pub fn loss(&self, r: f64, s: f64) -> f64 {
        let dr = self.ru_util() - r;
        let ds = self.storage_util() - s;
        (dr * dr + ds * ds).sqrt()
    }

    /// Loss if `replica` were removed.
    pub fn loss_without(&self, replica: &ReplicaLoad, r: f64, s: f64) -> f64 {
        let mut ru = self.ru_load_vector();
        ru.sub(&replica.ru());
        let ru_util = ru.peak().max(0.0) / self.ru_capacity;
        let sto_util = (self.storage_load - replica.storage) / self.storage_capacity;
        let dr = ru_util - r;
        let ds = sto_util - s;
        (dr * dr + ds * ds).sqrt()
    }

    /// Loss if `replica` were added.
    pub fn loss_with(&self, replica: &ReplicaLoad, r: f64, s: f64) -> f64 {
        let mut ru = self.ru_load_vector();
        ru.add(&replica.ru());
        let ru_util = ru.peak() / self.ru_capacity;
        let sto_util = (self.storage_load + replica.storage) / self.storage_capacity;
        let dr = ru_util - r;
        let ds = sto_util - s;
        (dr * dr + ds * ds).sqrt()
    }

    /// RU utilization if `replica` were added.
    pub fn ru_util_with(&self, replica: &ReplicaLoad) -> f64 {
        let mut ru = self.ru_load_vector();
        ru.add(&replica.ru());
        ru.peak() / self.ru_capacity
    }

    /// Storage utilization if `replica` were added.
    pub fn storage_util_with(&self, replica: &ReplicaLoad) -> f64 {
        (self.storage_load + replica.storage) / self.storage_capacity
    }
}

/// A resource pool: a set of data nodes.
#[derive(Debug, Clone, Default)]
pub struct PoolState {
    /// The pool's nodes.
    pub nodes: Vec<NodeState>,
}

impl PoolState {
    /// A pool from nodes.
    pub fn new(nodes: Vec<NodeState>) -> Self {
        Self { nodes }
    }

    /// The optimal load point `⟨R,S⟩ = (RP^ld_ru / RP^cap_ru, RP^ld_sto / RP^cap_sto)`.
    pub fn optimal_load(&self) -> (f64, f64) {
        let mut ru_load = LoadVector::zero();
        let mut sto_load = 0.0;
        let mut ru_cap = 0.0;
        let mut sto_cap = 0.0;
        for node in &self.nodes {
            for replica in &node.replicas {
                ru_load.add(&replica.ru());
                sto_load += replica.storage;
            }
            ru_cap += node.ru_capacity;
            sto_cap += node.storage_capacity;
        }
        let r = if ru_cap > 0.0 {
            ru_load.peak().max(0.0) / ru_cap
        } else {
            0.0
        };
        let s = if sto_cap > 0.0 {
            sto_load / sto_cap
        } else {
            0.0
        };
        (r, s)
    }

    /// Standard deviation of per-node RU utilization.
    pub fn ru_util_std(&self) -> f64 {
        std_dev(self.nodes.iter().map(NodeState::ru_util))
    }

    /// Standard deviation of per-node storage utilization.
    pub fn storage_util_std(&self) -> f64 {
        std_dev(self.nodes.iter().map(NodeState::storage_util))
    }

    /// Max per-node RU utilization.
    pub fn max_ru_util(&self) -> f64 {
        self.nodes
            .iter()
            .map(NodeState::ru_util)
            .fold(0.0, f64::max)
    }

    /// Mean per-node RU utilization.
    pub fn mean_ru_util(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().map(NodeState::ru_util).sum::<f64>() / self.nodes.len() as f64
    }

    /// Mark one migration complete: clear the in-flight flag on exactly the
    /// two nodes it involved. Flags are set per migration by
    /// `Rescheduler::reschedule_round` and cleared per migration here — by
    /// the engine's completion callback in a live cluster, by the modeled
    /// copy-duration expiry in offline simulations — never wholesale per
    /// round: a slow move must keep blocking its nodes across rounds.
    pub fn complete_migration(&mut self, from_node: u32, to_node: u32) {
        for node in &mut self.nodes {
            if node.id == from_node || node.id == to_node {
                node.is_migrating = false;
            }
        }
    }

    /// Total replicas across nodes.
    pub fn replica_count(&self) -> usize {
        self.nodes.iter().map(|n| n.replicas.len()).sum()
    }
}

fn std_dev(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.len() < 2 {
        return 0.0;
    }
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    (v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replica(id: u64, tenant: u32, partition: u64, ru_peak: f64, storage: f64) -> ReplicaLoad {
        let mut ru = [0.0; 24];
        ru[12] = ru_peak; // peak at noon
        ru[0] = ru_peak / 2.0;
        ReplicaLoad::from_total(id, tenant, partition, LoadVector(ru), 0.7, storage)
    }

    #[test]
    fn load_vector_ops() {
        let mut a = LoadVector::flat(1.0);
        a.add(&LoadVector::flat(2.0));
        assert_eq!(a.peak(), 3.0);
        assert_eq!(a.mean(), 3.0);
        a.sub(&LoadVector::flat(1.0));
        assert_eq!(a.peak(), 2.0);
        a.scale(0.5);
        assert_eq!(a.peak(), 1.0);
    }

    #[test]
    fn replica_load_split_preserves_the_total() {
        let re = replica(1, 1, 1, 40.0, 10.0);
        // from_total(0.7): reads take 70% of every slot, writes the rest.
        assert!((re.read_ru.peak() - 28.0).abs() < 1e-12);
        assert!((re.write_ru.peak() - 12.0).abs() < 1e-12);
        assert!((re.ru().peak() - 40.0).abs() < 1e-12);
        // A follower that takes routed reads but no client writes.
        let follower =
            ReplicaLoad::split(2, 1, 2, LoadVector::flat(30.0), LoadVector::flat(5.0), 10.0);
        assert_eq!(follower.ru().peak(), 35.0);
        let mut n = NodeState::new(1, 100.0, 100.0);
        n.add_replica(follower);
        assert_eq!(n.read_ru_vector().peak(), 30.0);
        assert_eq!(n.write_ru_vector().peak(), 5.0);
        assert_eq!(n.ru_load(), 35.0);
    }

    #[test]
    fn node_accounting_add_remove() {
        let mut n = NodeState::new(1, 100.0, 1000.0);
        n.add_replica(replica(1, 7, 70, 40.0, 500.0));
        n.add_replica(replica(2, 8, 80, 20.0, 100.0));
        assert_eq!(n.ru_load(), 60.0);
        assert_eq!(n.storage_load(), 600.0);
        assert!((n.ru_util() - 0.6).abs() < 1e-12);
        assert!(n.hosts_partition(70));
        let r = n.remove_replica(1).unwrap();
        assert_eq!(r.tenant, 7);
        assert_eq!(n.ru_load(), 20.0);
        assert!(!n.hosts_partition(70));
        assert!(n.remove_replica(99).is_none());
    }

    #[test]
    fn loss_is_distance_from_optimal() {
        let mut n = NodeState::new(1, 100.0, 100.0);
        n.add_replica(replica(1, 1, 1, 80.0, 30.0));
        // util = (0.8, 0.3); optimal (0.5, 0.5) → loss = sqrt(0.09+0.04).
        assert!((n.loss(0.5, 0.5) - 0.130f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn hypothetical_losses_match_actual_moves() {
        let mut src = NodeState::new(1, 100.0, 100.0);
        let mut dst = NodeState::new(2, 100.0, 100.0);
        let re = replica(1, 1, 1, 40.0, 20.0);
        src.add_replica(re.clone());
        let (r, s) = (0.2, 0.1);
        let predicted_src = src.loss_without(&re, r, s);
        let predicted_dst = dst.loss_with(&re, r, s);
        // Actually move it.
        let moved = src.remove_replica(1).unwrap();
        dst.add_replica(moved);
        assert!((src.loss(r, s) - predicted_src).abs() < 1e-12);
        assert!((dst.loss(r, s) - predicted_dst).abs() < 1e-12);
    }

    #[test]
    fn optimal_load_normalizes_by_capacity() {
        let mut n1 = NodeState::new(1, 100.0, 1000.0);
        let mut n2 = NodeState::new(2, 300.0, 1000.0);
        n1.add_replica(replica(1, 1, 1, 100.0, 500.0));
        n2.add_replica(replica(2, 1, 2, 100.0, 500.0));
        let pool = PoolState::new(vec![n1, n2]);
        let (r, s) = pool.optimal_load();
        // Pool RU peak = 200 over capacity 400 → 0.5; storage 1000/2000 → 0.5.
        assert!((r - 0.5).abs() < 1e-12);
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pool_std_reflects_imbalance() {
        let mut hot = NodeState::new(1, 100.0, 100.0);
        hot.add_replica(replica(1, 1, 1, 90.0, 10.0));
        let cold = NodeState::new(2, 100.0, 100.0);
        let pool = PoolState::new(vec![hot, cold]);
        assert!(pool.ru_util_std() > 0.4);
        assert!((pool.max_ru_util() - 0.9).abs() < 1e-12);
        assert!((pool.mean_ru_util() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn empty_node_has_zero_load() {
        let n = NodeState::new(1, 100.0, 100.0);
        assert_eq!(n.ru_load(), 0.0);
        assert_eq!(n.ru_util(), 0.0);
    }
}
