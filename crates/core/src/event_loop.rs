//! The event-driven front end: epoll accept loop + worker pool.
//!
//! A [`RespServer`](crate::server::RespServer) in its default model serves
//! every client connection from a **small, fixed pool of event-loop
//! workers**: the accept loop shards fresh sockets round-robin across
//! workers, each worker drives its connections' state machines
//! ([`Conn`](crate::conn::Conn)) off one [`Poller`], and an idle connection
//! costs one registered fd — not an OS thread and its stack. 10k mostly-idle
//! clients are served by `workers + 1` threads.
//!
//! Blocking paths leave the loop instead of stalling it: a replicated write
//! or fenced `WAIT` moves its connection to a short-lived offload thread for
//! the rest of the batch (commands stay in wire order — the connection is
//! off the poller while offloaded), and `PSYNC` hands the socket to the
//! replica-stream path permanently. `serve_replica_stream` and follow-mode
//! pumps keep their dedicated threads: they are few and throughput-bound.
//!
//! Shutdown is deterministic: [`ShutdownHandle::shutdown`] flips the flag
//! and writes every poller's eventfd waker, so the accept loop and all
//! workers return promptly even if no connection ever arrives again (the
//! old accept loop only noticed "after the next connection attempt").

use crate::conn::{Conn, ConnGuard, Step};
use crate::metrics;
use crate::server::{serve_replica_connection, ConnCtx};
use abase_proto::Command;
use abase_util::lockrank::{rank, RankedMutex};
use abase_util::poller::{Events, Interest, Poller, Waker};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Front-end serving model and guardrails.
#[derive(Debug, Clone)]
pub struct FrontEndConfig {
    /// Event-loop worker count (clamped to 1..=16). Ignored by the
    /// thread-per-connection baseline.
    pub workers: usize,
    /// Connection cap: accepts beyond it are refused with
    /// `-ERR max number of clients reached` (Redis semantics).
    pub max_clients: usize,
    /// Close connections idle longer than this (`None` disables the
    /// reaper). Driven by the event loop's timer wheel; granularity is
    /// `timeout / 32`, floored at 1 ms.
    pub idle_timeout: Option<Duration>,
    /// Serve with the legacy one-OS-thread-per-connection model instead of
    /// the event loop — kept as the measurable baseline for the
    /// connection-scaling bench.
    pub thread_per_conn: bool,
}

impl Default for FrontEndConfig {
    fn default() -> Self {
        FrontEndConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .clamp(2, 8),
            max_clients: 10_000,
            idle_timeout: None,
            thread_per_conn: false,
        }
    }
}

/// Interned per-worker metric labels (bounded cardinality: worker counts are
/// clamped to 16).
const WORKER_LABELS: [&str; 16] = [
    "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15",
];

pub(crate) fn worker_label(i: usize) -> &'static str {
    WORKER_LABELS.get(i).copied().unwrap_or("overflow")
}

/// Shared shutdown signal: a flag plus the eventfd wakers of every poller
/// that must notice it.
#[derive(Debug)]
pub(crate) struct Shutdown {
    flag: AtomicBool,
    wakers: RankedMutex<Vec<Arc<Waker>>>,
}

impl Default for Shutdown {
    fn default() -> Self {
        Shutdown {
            flag: AtomicBool::new(false),
            wakers: RankedMutex::new(rank::EVENT_WAKERS, Vec::new()),
        }
    }
}

impl Shutdown {
    pub(crate) fn is_set(&self) -> bool {
        // ORDER: Acquire pairs with the Release store in `trigger`; a worker
        // that observes the flag also observes everything the shutdown
        // caller wrote before triggering.
        self.flag.load(Ordering::Acquire)
    }

    fn subscribe(&self, waker: Arc<Waker>) {
        self.wakers.lock().push(waker);
    }

    pub(crate) fn trigger(&self) {
        // ORDER: Release pairs with the Acquire load in `is_set`.
        self.flag.store(true, Ordering::Release);
        for waker in self.wakers.lock().iter() {
            waker.wake();
        }
    }
}

/// Stops a running [`RespServer`](crate::server::RespServer) deterministically:
/// the accept loop and every event-loop worker are woken through their
/// pollers' eventfds and joined — no "after the next connection attempt"
/// window.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    pub(crate) inner: Arc<Shutdown>,
}

impl ShutdownHandle {
    /// Signal shutdown. `RespServer::run` returns once the accept loop and
    /// workers have exited (open connections are dropped).
    pub fn shutdown(&self) {
        self.inner.trigger();
    }

    /// Whether shutdown has been signalled.
    pub fn is_shutdown(&self) -> bool {
        self.inner.is_set()
    }
}

/// One worker's cross-thread mailbox: the accept loop and offload threads
/// push connections here and wake the worker's poller.
pub(crate) struct WorkerShared {
    waker: Arc<Waker>,
    inject: RankedMutex<Vec<Conn>>,
}

impl WorkerShared {
    fn new() -> std::io::Result<Self> {
        Ok(WorkerShared {
            waker: Arc::new(Waker::new()?),
            inject: RankedMutex::new(rank::EVENT_INJECT, Vec::new()),
        })
    }

    fn send(&self, conn: Conn) {
        self.inject.lock().push(conn);
        self.waker.wake();
    }
}

const TOKEN_LISTENER: u64 = u64::MAX - 1;
const TOKEN_WAKER: u64 = u64::MAX;

/// Run the front end to completion (shutdown): the calling thread becomes
/// the accept loop, workers get their own threads.
pub(crate) fn run_front_end(
    listener: TcpListener,
    ctx: Arc<ConnCtx>,
    config: FrontEndConfig,
    shutdown: Arc<Shutdown>,
) -> std::io::Result<()> {
    if config.thread_per_conn {
        return accept_loop(listener, ctx, config, shutdown, Vec::new());
    }
    let n_workers = config.workers.clamp(1, 16);
    let mut workers = Vec::with_capacity(n_workers);
    for _ in 0..n_workers {
        let shared = Arc::new(WorkerShared::new()?);
        shutdown.subscribe(Arc::clone(&shared.waker));
        workers.push(shared);
    }
    let mut handles = Vec::with_capacity(n_workers);
    for (idx, shared) in workers.iter().enumerate() {
        let shared = Arc::clone(shared);
        let ctx = Arc::clone(&ctx);
        let shutdown = Arc::clone(&shutdown);
        let all = workers.clone();
        let idle = config.idle_timeout;
        handles.push(
            std::thread::Builder::new()
                .name(format!("abase-io-{idx}"))
                .spawn(move || worker_loop(idx, shared, ctx, shutdown, idle, all))
                // INVARIANT: spawn fails only on thread-resource exhaustion at
                // startup; the server cannot run without its worker pool.
                .expect("spawn event-loop worker"),
        );
    }
    let result = accept_loop(listener, ctx, config, Arc::clone(&shutdown), workers);
    // The accept loop exits only on shutdown or a fatal poll error; either
    // way the workers must come down with it.
    shutdown.trigger();
    for handle in handles {
        let _ = handle.join();
    }
    result
}

/// Accept connections until shutdown. With event-loop workers, sockets are
/// sharded round-robin; in the baseline model each socket gets its own
/// serving thread. Either way the max-clients cap and deterministic
/// (waker-driven) shutdown apply.
fn accept_loop(
    listener: TcpListener,
    ctx: Arc<ConnCtx>,
    config: FrontEndConfig,
    shutdown: Arc<Shutdown>,
    workers: Vec<Arc<WorkerShared>>,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    let waker = Arc::new(Waker::new()?);
    shutdown.subscribe(Arc::clone(&waker));
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
    poller.register(waker.raw_fd(), TOKEN_WAKER, Interest::READABLE)?;
    let mut events = Events::with_capacity(64);
    let mut next_worker = 0usize;
    while !shutdown.is_set() {
        poller.poll(&mut events, Some(Duration::from_millis(400)))?;
        if shutdown.is_set() {
            break;
        }
        let mut accept_ready = false;
        for ev in events.iter() {
            match ev.token {
                TOKEN_WAKER => waker.drain(),
                TOKEN_LISTENER => accept_ready = true,
                _ => {}
            }
        }
        if !accept_ready {
            continue;
        }
        loop {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // EMFILE/ENFILE etc: back off instead of spinning on a
                // level-triggered listener that stays "readable".
                Err(_) => {
                    #[allow(clippy::disallowed_methods)]
                    std::thread::sleep(Duration::from_millis(5));
                    break;
                }
            };
            // Request/reply traffic is small-frame; Nagle + delayed-ACK
            // would add tens of ms per exchange.
            stream.set_nodelay(true).ok();
            if ctx.stats.open.load(Ordering::Relaxed) >= config.max_clients as i64 {
                refuse_over_capacity(stream, &ctx);
                continue;
            }
            if config.thread_per_conn {
                let guard = ConnGuard::open(Arc::clone(&ctx.stats), "accept");
                let ctx = Arc::clone(&ctx);
                let _ = std::thread::Builder::new()
                    .name("abase-conn".into())
                    .spawn(move || serve_blocking(stream, ctx, guard));
            } else {
                let idx = next_worker;
                next_worker = (next_worker + 1) % workers.len();
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let guard = ConnGuard::open(Arc::clone(&ctx.stats), worker_label(idx));
                workers[idx].send(Conn::new(stream, idx, guard));
            }
        }
    }
    Ok(())
}

/// Refuse a connection over the max-clients cap, Redis-style.
fn refuse_over_capacity(mut stream: TcpStream, ctx: &ConnCtx) {
    ctx.stats.evicted.fetch_add(1, Ordering::Relaxed);
    metrics::CONN_EVICTED.inc("accept");
    let _ = stream.write_all(b"-ERR max number of clients reached\r\n");
}

/// One event-loop worker: drives its shard of connections off a single
/// poller until shutdown.
fn worker_loop(
    idx: usize,
    shared: Arc<WorkerShared>,
    ctx: Arc<ConnCtx>,
    shutdown: Arc<Shutdown>,
    idle_timeout: Option<Duration>,
    workers: Vec<Arc<WorkerShared>>,
) {
    let label = worker_label(idx);
    let poller = match Poller::new() {
        Ok(p) => p,
        Err(_) => return,
    };
    if poller
        .register(shared.waker.raw_fd(), TOKEN_WAKER, Interest::READABLE)
        .is_err()
    {
        return;
    }
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut wheel = idle_timeout.map(TimerWheel::new);
    let mut events = Events::with_capacity(1024);
    loop {
        let timeout = wheel
            .as_ref()
            .map(|w| w.poll_timeout())
            .unwrap_or(Duration::from_millis(400));
        if poller.poll(&mut events, Some(timeout)).is_err() {
            break;
        }
        if shutdown.is_set() {
            break;
        }
        let mut woke = false;
        // epoll reports at most one event per fd per wait, so every token in
        // the batch is distinct and `remove` cannot race a duplicate.
        let batch: Vec<_> = events.iter().collect();
        for ev in batch {
            if ev.token == TOKEN_WAKER {
                woke = true;
                continue;
            }
            let Some(mut conn) = conns.remove(&ev.token) else {
                continue;
            };
            let step = conn.on_event(ev.readable, ev.writable, &ctx);
            settle(step, conn, &poller, &mut conns, &mut wheel, &ctx, &workers);
        }
        if woke {
            shared.waker.drain();
            let fresh: Vec<Conn> = std::mem::take(&mut *shared.inject.lock());
            for mut conn in fresh {
                // A reinjected connection may already hold buffered work and
                // unread socket bytes: drive it once before (re-)registering
                // so nothing waits for a readiness edge that already passed.
                let step = conn.on_event(true, true, &ctx);
                settle(step, conn, &poller, &mut conns, &mut wheel, &ctx, &workers);
            }
        }
        if let Some(wheel) = wheel.as_mut() {
            reap_idle(wheel, &mut conns, &poller, &ctx, label);
        }
    }
    // Shutdown: deregister and drop every connection (guards decrement the
    // open-connection accounting).
    for (_, conn) in conns.drain() {
        let _ = poller.deregister(conn.stream.as_raw_fd());
    }
}

/// Apply a state-machine [`Step`]: keep the connection registered with the
/// interest it now wants, close it, or move it off the loop.
fn settle(
    step: Step,
    mut conn: Conn,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    wheel: &mut Option<TimerWheel>,
    ctx: &Arc<ConnCtx>,
    workers: &[Arc<WorkerShared>],
) {
    let fd = conn.stream.as_raw_fd();
    let token = fd as u64;
    match step {
        Step::Continue => {
            let want = (conn.wants_read(), conn.wants_write());
            let interest = match want {
                (true, false) => Interest::READABLE,
                (false, true) => Interest::WRITABLE,
                _ => Interest::BOTH,
            };
            // Fresh/reinjected connections need ADD; ones just pulled out of
            // the map are still registered and need MOD only on change.
            let failed = if conn.registered {
                conn.installed_interest != want && poller.modify(fd, token, interest).is_err()
            } else {
                poller.register(fd, token, interest).is_err()
            };
            if failed {
                // Unservable without a registration; drop it.
                return;
            }
            conn.registered = true;
            conn.installed_interest = want;
            if let Some(wheel) = wheel.as_mut() {
                wheel.schedule(token);
            }
            conns.insert(token, conn);
        }
        Step::Close => {
            if conn.registered {
                let _ = poller.deregister(fd);
            }
        }
        Step::Offload | Step::Psync => {
            if conn.registered {
                let _ = poller.deregister(fd);
                conn.registered = false;
            }
            let ctx = Arc::clone(ctx);
            let home = Arc::clone(&workers[conn.worker]);
            let _ = std::thread::Builder::new()
                .name("abase-offload".into())
                .spawn(move || offload_batch(conn, ctx, home));
        }
    }
}

/// Finish a batch whose next command may block, off the event loop: execute
/// the remaining parsed frames in order with a blocking socket, then hand
/// the connection back to its worker. `PSYNC` upgrades the connection into
/// a replica stream and never returns.
fn offload_batch(mut conn: Conn, ctx: Arc<ConnCtx>, home: Arc<WorkerShared>) {
    if conn.stream.set_nonblocking(false).is_err() {
        return;
    }
    if conn.flush_blocking().is_err() {
        return;
    }
    while let Some(value) = conn.pop_pending() {
        let command = Command::from_resp(&value);
        if let (Ok(Command::PSync { position }), Some(repl)) =
            (&command, ctx.replication.as_deref())
        {
            let position = *position;
            let replica_id = conn.state.replica_id;
            let leftover = conn.take_leftover();
            let Conn { stream, guard, .. } = conn;
            let _ = serve_replica_connection(stream, leftover, position, replica_id, repl);
            drop(guard);
            return;
        }
        let reply = conn.execute(&value, command, &ctx);
        conn.push_reply(&reply);
        if conn.flush_blocking().is_err() {
            return;
        }
    }
    if conn.stream.set_nonblocking(true).is_err() {
        return;
    }
    home.send(conn);
}

/// The legacy thread-per-connection serving loop, retained as the
/// connection-scaling baseline: blocking reads, the same state machine and
/// batch semantics, blocking flushes.
fn serve_blocking(stream: TcpStream, ctx: Arc<ConnCtx>, guard: ConnGuard) {
    let mut conn = Conn::new(stream, 0, guard);
    let mut chunk = [0u8; 16 * 1024];
    loop {
        let n = match conn.stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        conn.inbuf.extend_from_slice(&chunk[..n]);
        match conn.process_blocking(&ctx) {
            Step::Continue => {}
            Step::Close | Step::Offload => return,
            Step::Psync => {
                let position = conn.psync_position();
                let replica_id = conn.state.replica_id;
                let leftover = conn.take_leftover();
                let Conn { stream, guard, .. } = conn;
                if let Some(repl) = ctx.replication.as_deref() {
                    let _ = serve_replica_connection(stream, leftover, position, replica_id, repl);
                }
                drop(guard);
                return;
            }
        }
    }
}

/// Reap connections idle past the timeout. Lazy timer wheel: tokens are
/// re-scheduled on their slot's expiry if they were active since.
fn reap_idle(
    wheel: &mut TimerWheel,
    conns: &mut HashMap<u64, Conn>,
    poller: &Poller,
    ctx: &ConnCtx,
    label: &'static str,
) {
    let now = Instant::now();
    let due = wheel.advance(now);
    for token in due {
        let Some(conn) = conns.get(&token) else {
            continue; // closed since it was scheduled
        };
        if now.duration_since(conn.last_active) >= wheel.timeout {
            let Some(conn) = conns.remove(&token) else {
                continue;
            };
            let _ = poller.deregister(conn.stream.as_raw_fd());
            ctx.stats.evicted.fetch_add(1, Ordering::Relaxed);
            metrics::CONN_EVICTED.inc(label);
        } else {
            wheel.schedule(token);
        }
    }
}

/// A coarse hashed timer wheel driving the idle reaper: 64 slots, tick =
/// `timeout / 32` (floored at 1 ms). Insertions are O(1); expiry checks are
/// lazy (a still-active connection is just pushed one timeout further).
pub(crate) struct TimerWheel {
    timeout: Duration,
    tick: Duration,
    slots: Vec<Vec<u64>>,
    cursor: usize,
    last_advance: Instant,
}

impl TimerWheel {
    const SLOTS: usize = 64;

    pub(crate) fn new(timeout: Duration) -> Self {
        let tick = (timeout / 32).max(Duration::from_millis(1));
        TimerWheel {
            timeout,
            tick,
            slots: (0..Self::SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            last_advance: Instant::now(),
        }
    }

    /// Schedule `token` to be checked one timeout from now.
    pub(crate) fn schedule(&mut self, token: u64) {
        let ticks = ((self.timeout.as_micros() / self.tick.as_micros().max(1)) as usize + 1)
            .min(Self::SLOTS - 1);
        let slot = (self.cursor + ticks) % Self::SLOTS;
        self.slots[slot].push(token);
    }

    /// How long a poll may sleep before the next tick is due.
    pub(crate) fn poll_timeout(&self) -> Duration {
        let since = self.last_advance.elapsed();
        if since >= self.tick {
            Duration::from_millis(1)
        } else {
            self.tick - since
        }
    }

    /// Advance the wheel to `now`, returning every token whose slot came due.
    pub(crate) fn advance(&mut self, now: Instant) -> Vec<u64> {
        let mut due = Vec::new();
        while now.duration_since(self.last_advance) >= self.tick {
            self.last_advance += self.tick;
            self.cursor = (self.cursor + 1) % Self::SLOTS;
            due.append(&mut self.slots[self.cursor]);
        }
        due
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_wheel_fires_after_a_full_timeout() {
        let mut wheel = TimerWheel::new(Duration::from_millis(64));
        wheel.schedule(7);
        // Immediately: nothing due.
        assert!(wheel.advance(Instant::now()).is_empty());
        // After 2x the timeout every scheduled token has come due.
        let later = Instant::now() + Duration::from_millis(128);
        assert_eq!(wheel.advance(later), vec![7]);
    }

    #[test]
    fn shutdown_handle_is_idempotent() {
        let shutdown = Arc::new(Shutdown::default());
        let handle = ShutdownHandle {
            inner: Arc::clone(&shutdown),
        };
        assert!(!handle.is_shutdown());
        handle.shutdown();
        handle.shutdown();
        assert!(handle.is_shutdown());
    }
}
